//! Cross-crate integration tests: the full protocol stack (quorum rules +
//! simulator + replica nodes + harness checker) exercised through the
//! facade crate, including randomized fault schedules with safety
//! invariants checked at every step.

// Test-side bookkeeping; hash maps never feed engine effects.
#![allow(clippy::disallowed_types)]

use dyncoterie::harness::{
    check_run, run_scenario, FaultConfig, FaultPlan, Scenario, Workload, WorkloadConfig,
};
use dyncoterie::protocol::{
    ClientRequest, PartialWrite, ProtocolConfig, ProtocolEvent, ReplicaNode,
};
use dyncoterie::quorum::{GridCoterie, MajorityCoterie, NodeId, TreeCoterie, View};
use dyncoterie::simnet::{NodeStatus, Partition, Sim, SimConfig, SimDuration, SimTime};
use std::sync::Arc;

/// Epoch safety: nodes sharing an epoch number must share the epoch list,
/// and every node is a member of its own epoch list (§4.4's preliminary
/// note, which the correctness proof relies on).
fn assert_epoch_safety(sim: &Sim<ReplicaNode>) {
    let n = sim.len();
    for a in 0..n as u32 {
        let node_a = sim.node(NodeId(a));
        assert!(
            node_a.durable.elist.contains(&NodeId(a)) || node_a.durable.enumber == 0,
            "node {a} not in its own epoch list"
        );
        for b in (a + 1)..n as u32 {
            let node_b = sim.node(NodeId(b));
            if node_a.durable.enumber == node_b.durable.enumber {
                assert_eq!(
                    node_a.durable.elist, node_b.durable.elist,
                    "nodes {a} and {b} share epoch #{} but disagree on members",
                    node_a.durable.enumber
                );
            }
        }
    }
}

/// The paper's Lemma 1: "At all times, only nodes with the maximum epoch
/// number can form a quorum over their epoch." For every epoch number `e`
/// present in the system, take the nodes currently holding `e`; only the
/// maximum `e` may have a write quorum over its epoch list among them.
/// (Node up/down status is irrelevant to the lemma — it is a statement
/// about the recorded states.)
fn assert_unique_live_epoch(sim: &Sim<ReplicaNode>) {
    let rule = GridCoterie::new();
    let n = sim.len();
    let mut by_epoch: std::collections::BTreeMap<u64, (Vec<NodeId>, Vec<NodeId>)> =
        std::collections::BTreeMap::new();
    for id in (0..n as u32).map(NodeId) {
        let node = sim.node(id);
        let entry = by_epoch
            .entry(node.durable.enumber)
            .or_insert_with(|| (node.durable.elist.clone(), Vec::new()));
        entry.1.push(id);
    }
    let max_e = *by_epoch.keys().last().unwrap();
    for (&e, (elist, holders)) in &by_epoch {
        if e == max_e {
            continue;
        }
        let view = View::new(elist.iter().copied());
        let holder_set: dyncoterie::quorum::NodeSet = holders.iter().copied().collect();
        assert!(
            !dyncoterie::quorum::CoterieRule::is_write_quorum(&rule, &view, holder_set),
            "stale epoch #{e} can still form a write quorum: holders {holders:?} of {elist:?}"
        );
    }
}

fn grid_scenario(seed: u64, lambda: f64, secs: u64) -> Scenario {
    let n = 9;
    let protocol = ProtocolConfig::new(Arc::new(GridCoterie::new()), n)
        .check_period(SimDuration::from_secs(2));
    Scenario {
        protocol,
        sim: SimConfig {
            seed,
            ..Default::default()
        },
        workload: Workload::generate(
            &WorkloadConfig {
                ops_per_sec: 25.0,
                duration: SimDuration::from_secs(secs),
                seed: seed ^ 0xABCD,
                ..Default::default()
            },
            n,
        ),
        faults: FaultPlan::generate(
            &FaultConfig {
                lambda_per_sec: lambda,
                mu_per_sec: 0.5,
                duration: SimDuration::from_secs(secs),
                seed: seed ^ 0x5EED,
                ..Default::default()
            },
            n,
        ),
        drain: SimDuration::from_secs(15),
    }
}

#[test]
fn randomized_fault_schedules_stay_serializable() {
    for seed in [1u64, 2, 3, 4, 5] {
        let result = run_scenario(&grid_scenario(seed, 0.04, 25));
        assert!(
            result.check.consistent(),
            "seed {seed}: {:?}",
            result.check.violations
        );
        assert!(result.writes_ok > 0, "seed {seed} committed nothing");
    }
}

#[test]
fn epoch_safety_holds_under_churn() {
    let n = 9;
    let protocol = ProtocolConfig::new(Arc::new(GridCoterie::new()), n)
        .check_period(SimDuration::from_secs(1));
    let mut sim = Sim::new(
        n,
        SimConfig {
            seed: 77,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, protocol.clone()),
    );
    let faults = FaultPlan::generate(
        &FaultConfig {
            lambda_per_sec: 0.08,
            mu_per_sec: 0.6,
            duration: SimDuration::from_secs(40),
            seed: 99,
            ..Default::default()
        },
        n,
    );
    for (at, f) in &faults.events {
        match f {
            dyncoterie::harness::FaultEvent::Crash(node) => sim.schedule_crash(*at, *node),
            dyncoterie::harness::FaultEvent::Recover(node) => sim.schedule_recover(*at, *node),
            dyncoterie::harness::FaultEvent::Partition(p) => sim.schedule_partition(*at, p.clone()),
            // Storage faults target journaling hosts; this simnet test
            // runs bare engines (mirrors scenario.rs).
            dyncoterie::harness::FaultEvent::StorageFault { .. } => {}
        }
    }
    for i in 0..80u64 {
        sim.schedule_external(
            SimTime(i * 500_000),
            NodeId((i % n as u64) as u32),
            ClientRequest::Write {
                id: i,
                write: PartialWrite::new([bytes_of(i)]),
            },
        );
    }
    // Step through the run, re-checking invariants every virtual second.
    for _ in 0..55 {
        sim.run_for(SimDuration::from_secs(1));
        assert_epoch_safety(&sim);
        assert_unique_live_epoch(&sim);
    }
    let events = sim.take_outputs();
    let issued: std::collections::HashMap<u64, dyncoterie::harness::IssuedOp> = (0..80u64)
        .map(|i| {
            (
                i,
                dyncoterie::harness::IssuedOp {
                    id: i,
                    at: SimTime(i * 500_000),
                    coordinator: NodeId((i % n as u64) as u32),
                    write: Some(PartialWrite::new([bytes_of(i)])),
                },
            )
        })
        .collect();
    let report = check_run(&issued, &events, protocol.n_pages);
    assert!(report.consistent(), "{:?}", report.violations);
}

fn bytes_of(i: u64) -> (u16, bytes::Bytes) {
    (0, bytes::Bytes::copy_from_slice(&i.to_le_bytes()))
}

#[test]
fn partition_heal_with_dueling_epoch_coordinators() {
    // Both sides of a healed partition may try to install new epochs at
    // once; epoch numbers and the write-quorum-of-the-old-epoch rule must
    // keep exactly one lineage.
    let n = 5;
    let protocol = ProtocolConfig::new(Arc::new(MajorityCoterie::new()), n)
        .check_period(SimDuration::from_secs(1));
    let mut sim = Sim::new(
        n,
        SimConfig {
            seed: 1234,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, protocol.clone()),
    );
    // Partition {3,4} away, let the majority shrink its epoch.
    sim.schedule_partition(
        SimTime(500_000),
        Partition::split(n, &[NodeId(3), NodeId(4)]),
    );
    sim.run_for(SimDuration::from_secs(8));
    assert_eq!(sim.node(NodeId(0)).durable.elist.len(), 3);
    // The minority must still be on the old epoch.
    assert_eq!(sim.node(NodeId(3)).durable.elist.len(), 5);
    assert_epoch_safety(&sim);
    // Heal; multiple epoch ticks race.
    sim.set_partition_now(Partition::connected(n));
    sim.run_for(SimDuration::from_secs(15));
    assert_epoch_safety(&sim);
    for id in 0..n as u32 {
        assert_eq!(
            sim.node(NodeId(id)).durable.elist.len(),
            5,
            "node {id} missed the re-expansion"
        );
    }
    // And the system still works.
    sim.schedule_external(
        sim.now(),
        NodeId(4),
        ClientRequest::Write {
            id: 9,
            write: PartialWrite::new([(1, bytes::Bytes::from_static(b"post-heal"))]),
        },
    );
    sim.run_for(SimDuration::from_secs(2));
    assert!(sim
        .take_outputs()
        .iter()
        .any(|(_, _, e)| matches!(e, ProtocolEvent::WriteOk { id: 9, .. })));
}

#[test]
fn tree_coterie_runs_the_full_protocol() {
    // The dynamic protocol is generic over the coterie rule: hierarchical
    // quorum consensus plugs straight in.
    let n = 9;
    let protocol = ProtocolConfig::new(Arc::new(TreeCoterie::new()), n)
        .check_period(SimDuration::from_secs(2));
    let mut sim = Sim::new(
        n,
        SimConfig {
            seed: 5,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, protocol.clone()),
    );
    for i in 0..10u64 {
        // Coordinators rotate over the nodes that stay up (node 8 dies).
        sim.schedule_external(
            SimTime(i * 200_000),
            NodeId((i % 8) as u32),
            ClientRequest::Write {
                id: i,
                write: PartialWrite::new([(0, bytes::Bytes::copy_from_slice(&i.to_le_bytes()))]),
            },
        );
    }
    sim.crash_now(NodeId(8));
    sim.run_for(SimDuration::from_secs(15));
    let oks = sim
        .take_outputs()
        .iter()
        .filter(|(_, _, e)| matches!(e, ProtocolEvent::WriteOk { .. }))
        .count();
    assert_eq!(oks, 10);
    assert_eq!(sim.status(NodeId(8)), NodeStatus::Down);
    assert_eq!(sim.node(NodeId(0)).durable.elist.len(), 8);
}

#[test]
fn analytic_availability_predicts_protocol_behaviour() {
    // Tie the markov crate to the protocol crate: under heavy sequential
    // failure accumulation the protocol stays writable exactly while the
    // Figure 3 model says it should (epoch >= 3 for the grid rule,
    // given failures spaced wider than the check period).
    let model = dyncoterie::markov::DynamicModel::grid(9, 1.0, 19.0);
    let chain = model.chain();
    // The chain's minimum available epoch is 3.
    let min_epoch = chain
        .states()
        .iter()
        .filter_map(|s| match s {
            dyncoterie::markov::EpochState::Available { up } => Some(*up),
            _ => None,
        })
        .min()
        .unwrap();
    assert_eq!(min_epoch, 3);

    // Protocol: after 6 well-spaced failures the 3-node epoch still
    // commits writes (shown in crates/core tests); the 7th failure blocks
    // the object and brings it to the chain's Blocked row.
    let n = 9;
    let protocol = ProtocolConfig::new(Arc::new(GridCoterie::new()), n)
        .check_period(SimDuration::from_secs(1));
    let mut sim = Sim::new(
        n,
        SimConfig {
            seed: 31,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, protocol.clone()),
    );
    for victim in [8u32, 7, 6, 5, 4, 3] {
        sim.crash_now(NodeId(victim));
        sim.run_for(SimDuration::from_secs(6));
    }
    assert_eq!(sim.node(NodeId(0)).durable.elist.len(), 3);
    // One more failure: blocked (any single failure of a 3-epoch whose
    // survivors lack a write quorum blocks; node 1 is the singleton-column
    // member of the {0,1,2} grid, killing IT always blocks).
    sim.crash_now(NodeId(1));
    sim.run_for(SimDuration::from_secs(6));
    sim.take_outputs();
    sim.schedule_external(
        sim.now(),
        NodeId(0),
        ClientRequest::Write {
            id: 1,
            write: PartialWrite::new([(0, bytes::Bytes::from_static(b"x"))]),
        },
    );
    sim.run_for(SimDuration::from_secs(3));
    let events = sim.take_outputs();
    assert!(
        events
            .iter()
            .any(|(_, _, e)| matches!(e, ProtocolEvent::Failed { id: 1, .. })),
        "write should fail with the epoch blocked: {events:?}"
    );
}
