#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in one command.
# Usage: scripts/tier1.sh   (run from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

# The repo's own packages (vendored crates under vendor/ are kept verbatim
# and excluded from the formatting gate).
PACKAGES=(dyncoterie coterie-base coterie-quorum coterie-simnet coterie-core
  coterie-markov coterie-harness coterie-bench coterie-lint)
FMT_ARGS=()
for p in "${PACKAGES[@]}"; do FMT_ARGS+=(-p "$p"); done

echo "==> cargo fmt --check"
cargo fmt "${FMT_ARGS[@]}" -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo bench --no-run"
cargo bench --no-run --workspace

echo "==> coterie-lint --deny (determinism, surface, lock, arith, baseline)"
# All rule families: D1-D3 token rules plus the flow-aware P1 surface
# matrix, P2 lock discipline, P3 codec arithmetic, and the P4 ratcheted
# allow baseline (crates/lint/baseline.json). The JSON report is left in
# target/ so PRs can diff per-rule finding and allow counts.
cargo run --release -p coterie-lint -- --deny --report target/lint-report.json
# The explain text doubles as the rules' documentation; smoke it so a
# renamed rule can't silently orphan its docs.
cargo run --release -p coterie-lint -- --explain surface >/dev/null

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> example smoke runs"
cargo run --release --example quickstart
cargo run --release --example failover

echo "==> throughput smoke (closed-loop load driver, bounded)"
# Both coterie rules with batching+pipelining+group-commit enabled on the
# sim host; asserts committed progress and zero invariant violations.
cargo run --release -p coterie-bench --bin bench_throughput -- --smoke

echo "==> nemesis smoke (bounded storage-fault soak)"
# Fixed seeds, short schedules: 6 grid + 6 majority runs of crashes,
# partitions, torn writes, and journal corruption; exits non-zero on any
# epoch-safety, coherence, or 1SR violation. Dirty runs dump their flight
# recorder as causally-merged JSONL + timeline under target/.
cargo run --release -p coterie-harness --bin nemesis -- 6 42 1500

echo "==> trace determinism smoke"
# Same-seed runs must produce byte-identical trace JSONL (in-process and
# across a self-exec process boundary), and attaching a sink must not
# change a single journal/digest/output byte.
cargo test -q -p coterie-core --test determinism --test trace_determinism

echo "==> tracing-overhead gate (write-heavy sim cells vs checked-in baseline)"
# Re-runs the write-heavy deterministic sim cells with tracing disabled
# (the production default: no-op sink) and fails if throughput regresses
# more than 5% against BENCH_protocol_throughput.json. Sim cells run in
# simulated time, so on unchanged code this reproduces the artifact
# numbers exactly; the tolerance absorbs intentional protocol changes.
cargo run --release -p coterie-bench --bin bench_throughput -- --gate

echo "tier-1: all green"
