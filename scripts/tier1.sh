#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in one command.
# Usage: scripts/tier1.sh   (run from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo bench --no-run"
cargo bench --no-run --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "tier-1: all green"
