//! Minimal offline stand-in for `criterion`.
//!
//! Benchmarks register through the usual `criterion_group!` /
//! `criterion_main!` macros and are timed with `std::time::Instant`:
//! each benchmark is calibrated to a target sample duration, then timed
//! over `sample_size` samples, and the per-iteration mean is printed.
//! Setting `CRITERION_DUMP_JSON=<path>` appends one JSON line per result
//! to `<path>` so scripts can collect machine-readable numbers.

pub use std::hint::black_box;

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// One completed measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark path (`group/function/parameter`).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: String::new(),
        }
    }
}

/// Runs the timed routine for one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill the sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 12 }
    }
}

/// Target wall-clock time for one calibrated sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(2);

fn measure(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: grow the iteration count until one sample is long enough
    // for Instant's resolution to be negligible.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= SAMPLE_TARGET || iters >= 1 << 30 {
            break;
        }
        // Aim directly for the target based on the observed rate.
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        let want = if per_iter > 0.0 {
            (SAMPLE_TARGET.as_secs_f64() / per_iter * 1.2) as u64
        } else {
            iters * 8
        };
        iters = want.clamp(iters + 1, iters * 8);
    }
    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("{name:<55} time: [{mean_ns:>12.1} ns/iter]");
    RESULTS.lock().expect("results lock").push(BenchResult {
        name: name.to_string(),
        mean_ns,
    });
}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        measure(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 12,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.into().render());
        measure(&name, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into().render());
        measure(&name, self.sample_size, &mut f);
        self
    }

    /// Finishes the group (reporting happens eagerly; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Appends accumulated results as JSON lines to `$CRITERION_DUMP_JSON`,
/// when set. Called by `criterion_main!` after all groups run.
pub fn dump_results() {
    let Ok(path) = std::env::var("CRITERION_DUMP_JSON") else {
        return;
    };
    use std::io::Write;
    let results = RESULTS.lock().expect("results lock");
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open CRITERION_DUMP_JSON path");
    for r in results.iter() {
        writeln!(
            file,
            "{{\"name\": \"{}\", \"mean_ns\": {:.1}}}",
            r.name, r.mean_ns
        )
        .expect("write bench result");
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)*
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)*
            $crate::dump_results();
        }
    };
}
