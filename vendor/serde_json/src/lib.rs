//! Minimal offline stand-in for `serde_json`: renders the serde stand-in's
//! [`serde::Value`] tree as JSON text (compact or pretty, two-space
//! indent, matching upstream's layout).

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error. The value-tree model cannot actually fail, but the
/// signature mirrors upstream so call sites keep their `Result` handling.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Renders `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.iter(), indent, depth, '[', ']', |o, it, d| {
            write_value(o, it, indent, d)
        }),
        Value::Object(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            '{',
            '}',
            |o, (k, it), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, it, indent, d);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // JSON numbers need a decimal point or exponent to read back as
        // floats; Rust's `{}` prints e.g. `1` for 1.0_f64.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // Upstream serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let v = Value::Object(vec![
            ("n".to_string(), Value::UInt(5)),
            ("x".to_string(), Value::Float(1.0)),
            ("s".to_string(), Value::Str("a\"b".to_string())),
            (
                "arr".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn serialize_value(&self) -> Value {
                self.0.clone()
            }
        }
        let pretty = to_string_pretty(&Raw(v.clone())).unwrap();
        assert!(pretty.contains("\"n\": 5"));
        assert!(pretty.contains("\"x\": 1.0"));
        assert!(pretty.contains("\"s\": \"a\\\"b\""));
        let compact = to_string(&Raw(v)).unwrap();
        assert_eq!(
            compact,
            "{\"n\":5,\"x\":1.0,\"s\":\"a\\\"b\",\"arr\":[null,true]}"
        );
    }
}
