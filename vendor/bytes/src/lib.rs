//! Minimal offline stand-in for the `bytes` crate, covering the surface
//! this workspace uses: an immutable, cheaply-cloneable byte buffer.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable contiguous slice of memory (`Arc<[u8]>` backed).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Copies the given slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}
