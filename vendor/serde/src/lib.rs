//! Minimal offline stand-in for `serde`: a value-tree `Serialize` trait
//! plus `#[derive(Serialize)]`/`#[derive(Deserialize)]` macros. Only the
//! serialization direction is implemented — the workspace uses serde
//! exclusively to export experiment records as JSON.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the stand-in's data model; rendered to JSON by
/// the `serde_json` stand-in).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u128),
    /// Signed integer.
    Int(i128),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Key/value map in field order.
    Object(Vec<(String, Value)>),
}

/// Types that can be rendered to a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn serialize_value(&self) -> Value;
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, u128, usize);
impl_serialize_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

/// Marker trait for deserializable types. The stand-in never reads data
/// back, so the derive only asserts the intent.
pub trait Deserialize {}
