//! Minimal offline stand-in for `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! `proptest!` macro with `pat in strategy` arguments and an optional
//! `#![proptest_config(...)]` header, integer-range strategies,
//! `any::<T>()`, `prop_map`, `collection::btree_set`, and the
//! `prop_assert*`/`prop_assume!` macros. Cases are generated from a
//! deterministic RNG seeded from the test name, so failures are
//! reproducible; shrinking is not implemented — the assert message
//! carries the failing inputs instead.

use rand::rngs::StdRng;
use rand::Rng;

pub mod collection;
pub mod test_runner;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; it does not count as a
    /// failure.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configures the number of generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u16, u32, u64, usize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Everything the property tests normally import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests. Each test function takes `pattern in strategy`
/// arguments; the runner generates `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::deterministic(stringify!($name));
                let mut ran: u32 = 0;
                let mut attempts: u32 = 0;
                while ran < config.cases && attempts < config.cases.saturating_mul(8) {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), runner.rng());)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property failed at case {}: {}", ran, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Rejects the current case (does not count as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
