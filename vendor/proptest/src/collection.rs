//! Collection strategies for the proptest stand-in.

use crate::{Strategy, TestRng};
use rand::Rng;
use std::collections::BTreeSet;

/// An inclusive size range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for B-tree sets of values drawn from `element`.
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.gen_range(self.size.lo..=self.size.hi);
        let mut out = BTreeSet::new();
        // Duplicates shrink the set; bound the attempts so a small element
        // domain cannot loop forever.
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(25) + 25 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// Generates `BTreeSet`s whose size falls in `size`, with elements drawn
/// from `element`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
