//! Deterministic case runner for the proptest stand-in.

use crate::TestRng;
use rand::SeedableRng;

/// Generates cases for one property test.
#[derive(Debug)]
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    /// Builds a runner whose RNG is seeded from `name` (FNV-1a), so every
    /// run of the same test sees the same case sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            rng: TestRng::seed_from_u64(seed),
        }
    }

    /// The case RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}
