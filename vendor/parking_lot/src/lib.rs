//! Minimal offline stand-in for `parking_lot`, implementing the
//! poison-free `Mutex`/`Condvar` surface this workspace uses on top of
//! `std::sync`. Guards can be handed to [`Condvar::wait`] by mutable
//! reference (parking_lot style) rather than by value (std style).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Instant;

/// A mutex that never poisons: a panicked holder simply releases the lock.
#[derive(Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, returning the guard directly.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(lock_ignore_poison(&self.inner)),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

fn lock_ignore_poison<T>(m: &sync::Mutex<T>) -> sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(sync::PoisonError::into_inner)
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` so [`Condvar`] can take it,
/// block on the std condvar, and put the reacquired guard back — giving
/// parking_lot's `wait(&mut guard)` signature.
pub struct MutexGuard<'a, T> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// Result of a timed wait: reports whether the wait timed out.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`]s by mutable reference.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.guard = Some(reacquired);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        let inner = guard.guard.take().expect("guard present");
        let (reacquired, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(reacquired);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_wait_until() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
        assert_eq!(*g, 2);
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
