//! Minimal offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API this workspace uses —
//! `StdRng::seed_from_u64`, `gen`, `gen_range`, `fill` — backed by a
//! deterministic xoshiro256++ generator seeded through splitmix64. The
//! streams differ from upstream rand's, which is fine: every consumer in
//! the workspace treats the RNG as an arbitrary deterministic source.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's native stream.
pub trait FromRandom: Sized {
    /// Draws one value.
    fn from_random<G: RngCore + ?Sized>(g: &mut G) -> Self;
}

impl FromRandom for u64 {
    fn from_random<G: RngCore + ?Sized>(g: &mut G) -> Self {
        g.next_u64()
    }
}

impl FromRandom for u32 {
    fn from_random<G: RngCore + ?Sized>(g: &mut G) -> Self {
        (g.next_u64() >> 32) as u32
    }
}

impl FromRandom for bool {
    fn from_random<G: RngCore + ?Sized>(g: &mut G) -> Self {
        g.next_u64() & 1 == 1
    }
}

impl FromRandom for f64 {
    fn from_random<G: RngCore + ?Sized>(g: &mut G) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled to produce a uniform value.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (g.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + ((g.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u16, u32, u64, usize);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of the inferred type.
    fn gen<T: FromRandom>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as xoshiro recommends.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        for _ in 0..1000 {
            let x: f64 = a.gen();
            assert!((0.0..1.0).contains(&x));
            let k = a.gen_range(3usize..10);
            assert!((3..10).contains(&k));
            let k = a.gen_range(5u64..=5);
            assert_eq!(k, 5);
        }
    }

    #[test]
    fn fill_covers_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
