//! Minimal offline stand-in for the `crossbeam` crate: only the unbounded
//! MPSC channel surface this workspace uses, backed by `std::sync::mpsc`.

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub type Sender<T> = mpsc::Sender<T>;

    /// Receiving half of an unbounded channel.
    pub type Receiver<T> = mpsc::Receiver<T>;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        mpsc::channel()
    }
}
