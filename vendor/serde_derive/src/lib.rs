//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde stand-in. Parses struct definitions directly from the
//! token stream (no syn/quote) — named-field structs and tuple structs,
//! with `#[serde(skip)]` support. Enums and generics are not needed by
//! this workspace and are rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructDef {
    name: String,
    body: Body,
}

enum Body {
    /// Named fields in declaration order, minus skipped ones.
    Named(Vec<String>),
    /// Number of fields in a tuple struct.
    Tuple(usize),
    /// A unit struct.
    Unit,
}

/// Derives the stand-in `serde::Serialize` for a struct.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let body = match &def.body {
        Body::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_string(), \
                     ::serde::Serialize::serialize_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(fields)"
            )
        }
        Body::Tuple(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}",
        def.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the stand-in `serde::Deserialize` marker for a struct.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    format!("impl ::serde::Deserialize for {} {{}}", def.name)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn parse_struct(input: TokenStream) -> StructDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                panic!("the serde stand-in derive supports structs only");
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                let TokenTree::Ident(name) = &tokens[i + 1] else {
                    panic!("expected struct name");
                };
                for t in &tokens[i + 2..] {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            panic!("the serde stand-in derive does not support generics");
                        }
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            return StructDef {
                                name: name.to_string(),
                                body: Body::Named(named_fields(g.stream())),
                            };
                        }
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                            return StructDef {
                                name: name.to_string(),
                                body: Body::Tuple(count_tuple_fields(g.stream())),
                            };
                        }
                        _ => {}
                    }
                }
                return StructDef {
                    name: name.to_string(),
                    body: Body::Unit,
                };
            }
            _ => {}
        }
        i += 1;
    }
    panic!("derive input is not a struct");
}

/// Extracts non-skipped field names from a named-field body. A field is an
/// identifier directly followed by `:`; its type is skipped through the
/// next comma at zero `<...>` depth.
fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut skip = false;
    let mut toks = stream.into_iter().peekable();
    while let Some(t) = toks.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    let attr = g.stream().to_string();
                    if attr.starts_with("serde") && attr.contains("skip") {
                        skip = true;
                    }
                    toks.next();
                }
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "pub" {
                    continue;
                }
                let is_field =
                    matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ':');
                if !is_field {
                    continue;
                }
                toks.next(); // the ':'
                if !skip {
                    fields.push(word);
                }
                skip = false;
                let mut angle = 0i64;
                for tt in toks.by_ref() {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    fields
}

/// Counts tuple-struct fields: top-level commas at zero `<...>` depth.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle = 0i64;
    let mut count = 0usize;
    let mut saw_any = false;
    let mut trailing_comma = false;
    for t in stream {
        saw_any = true;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                trailing_comma = false;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    match (saw_any, trailing_comma) {
        (false, _) => 0,
        (true, true) => count,
        (true, false) => count + 1,
    }
}
