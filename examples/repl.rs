//! An interactive shell driving a live replicated object.
//!
//! Runs nine replicas on real OS threads and lets you poke at them:
//!
//! ```text
//! > write 0 hello-world        # write page 0 via a random coordinator
//! > read                       # quorum read
//! > crash 4                    # kill node 4
//! > recover 4
//! > status                     # per-replica version/stale/epoch view
//! > quit
//! ```
//!
//! Run with: `cargo run --release --example repl`

// Interactive shell on the real-thread host: wall-clock reads are the point.
#![allow(clippy::disallowed_methods)]

use bytes::Bytes;
use dyncoterie::protocol::{
    ClientRequest, PartialWrite, ProtocolConfig, ProtocolEvent, ReplicaNode,
};
use dyncoterie::quorum::{GridCoterie, NodeId};
use dyncoterie::simnet::{SimDuration, ThreadedRuntime};
use std::io::{BufRead, Write as _};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 9;

fn main() {
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), N)
        .check_period(SimDuration::from_millis(500));
    let rt = ThreadedRuntime::spawn(N, 0xC11, Duration::from_millis(20), move |id| {
        ReplicaNode::new(id, config.clone())
    });
    println!(
        "dyncoterie repl: {N} replicas (dynamic grid) on {N} threads.\n\
         commands: write <page> <text> | read | crash <id> | recover <id> | quit"
    );

    let stdin = std::io::stdin();
    let mut next_id: u64 = 1;
    let mut coordinator: u32 = 0;
    loop {
        print!("> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        // Drain protocol chatter (epoch installs etc.) before acting.
        for (node, ev) in rt.drain_outputs() {
            report(node, &ev);
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["quit"] | ["exit"] => break,
            ["write", page, rest @ ..] => {
                let Ok(page) = page.parse::<u16>() else {
                    println!("usage: write <page> <text>");
                    continue;
                };
                let text = rest.join(" ");
                let id = next_id;
                next_id += 1;
                coordinator = (coordinator + 1) % N as u32;
                rt.inject(
                    NodeId(coordinator),
                    ClientRequest::Write {
                        id,
                        write: PartialWrite::new([(page, Bytes::from(text))]),
                    },
                );
                wait_for(&rt, id);
            }
            ["read"] => {
                let id = next_id;
                next_id += 1;
                coordinator = (coordinator + 1) % N as u32;
                rt.inject(NodeId(coordinator), ClientRequest::Read { id });
                wait_for(&rt, id);
            }
            ["crash", node] => match node.parse::<u32>() {
                Ok(v) if (v as usize) < N => {
                    rt.crash(NodeId(v));
                    println!("crashed n{v}");
                }
                _ => println!("usage: crash <0..{}>", N - 1),
            },
            ["recover", node] => match node.parse::<u32>() {
                Ok(v) if (v as usize) < N => {
                    rt.recover(NodeId(v));
                    println!("recovered n{v}");
                }
                _ => println!("usage: recover <0..{}>", N - 1),
            },
            [] => {}
            _ => {
                println!("commands: write <page> <text> | read | crash <id> | recover <id> | quit")
            }
        }
    }
    println!("shutting down ...");
    let nodes = rt.shutdown();
    for node in &nodes {
        println!(
            "  n{}: v{} epoch#{} ({} members){}",
            node.me,
            node.durable.version,
            node.durable.enumber,
            node.durable.elist.len(),
            if node.durable.stale { " STALE" } else { "" }
        );
    }
}

fn wait_for(rt: &ThreadedRuntime<ReplicaNode>, want: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while std::time::Instant::now() < deadline {
        let Some((node, ev)) = rt.recv_output(Duration::from_millis(100)) else {
            continue;
        };
        let done = matches!(
            &ev,
            ProtocolEvent::WriteOk { id, .. }
            | ProtocolEvent::ReadOk { id, .. }
            | ProtocolEvent::Failed { id, .. } if *id == want
        );
        report(node, &ev);
        if done {
            return;
        }
    }
    println!("  (timed out waiting for op {want})");
}

fn report(node: NodeId, ev: &ProtocolEvent) {
    match ev {
        ProtocolEvent::WriteOk { id, version, replicas_touched, marked_stale } => println!(
            "  ok: write #{id} -> v{version} via {node:?} ({replicas_touched} replicas, {marked_stale} marked stale)"
        ),
        ProtocolEvent::ReadOk { id, version, pages, .. } => {
            println!("  ok: read #{id} -> v{version} via {node:?}");
            for (i, p) in pages.iter().enumerate() {
                if !p.is_empty() {
                    println!("      page {i}: {:?}", String::from_utf8_lossy(p));
                }
            }
        }
        ProtocolEvent::Failed { id, reason } => println!("  FAILED: op #{id}: {reason:?}"),
        ProtocolEvent::EpochInstalled { enumber, members } => println!(
            "  [epoch] {node:?} installed epoch #{enumber} with {} members",
            members.len()
        ),
        ProtocolEvent::Propagated { target, version } => {
            println!("  [propagation] {node:?} caught {target:?} up to v{version}")
        }
        ProtocolEvent::SyncReconciliation { targets } => {
            println!("  [reconciliation] {targets} targets (write-all-current mode)")
        }
        ProtocolEvent::Rejoined { dversion, enumber } => println!(
            "  [rejoin] {node:?} rejoined epoch #{enumber} stale, awaiting repair to v{dversion}"
        ),
    }
}
