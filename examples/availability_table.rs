//! Regenerates the paper's Table 1 from the library API and sweeps the
//! node-up probability to show where the dynamic protocol's advantage
//! comes from.
//!
//! Run with: `cargo run --release --example availability_table`

use dyncoterie::markov::DynamicModel;
use dyncoterie::quorum::availability::best_static_grid;

fn main() {
    println!("Table 1 (p = 0.95, mu/lambda = 19):\n");
    println!(
        "{:>4} {:>10} {:>16} {:>16} {:>10}",
        "N", "best dims", "static unavail", "dynamic unavail", "ratio"
    );
    for n in [9usize, 12, 15, 16, 20, 24, 30] {
        let (shape, avail) = best_static_grid(n, 0.95);
        let static_u = 1.0 - avail;
        let dynamic_u = DynamicModel::grid(n, 1.0, 19.0).unavailability().unwrap();
        println!(
            "{n:>4} {:>10} {static_u:>16.3e} {dynamic_u:>16.3e} {:>10.1e}",
            format!("{}x{}", shape.m, shape.n),
            static_u / dynamic_u
        );
    }

    println!("\nsweep over node availability p (N = 9):\n");
    println!(
        "{:>6} {:>16} {:>16}",
        "p", "static unavail", "dynamic unavail"
    );
    for p in [0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99] {
        let (_, avail) = best_static_grid(9, p);
        let dynamic_u = DynamicModel::grid(9, 0.0, 0.0)
            .with_p(p)
            .unavailability()
            .unwrap();
        println!("{p:>6.2} {:>16.3e} {dynamic_u:>16.3e}", 1.0 - avail);
    }
    println!(
        "\nThe dynamic protocol wins big at high p because unavailability \
         requires a *burst* of failures\nfaster than epoch checking, rather \
         than any quorum's worth of accumulated failures."
    );
}
