//! Quickstart: a 9-replica object under the dynamic grid protocol.
//!
//! Builds a simulated cluster, writes a value, reads it back from another
//! node, kills a replica, lets the epoch-checking protocol adapt, and
//! shows that writes keep working.
//!
//! Run with: `cargo run --example quickstart`

use bytes::Bytes;
use dyncoterie::protocol::{
    ClientRequest, PartialWrite, ProtocolConfig, ProtocolEvent, ReplicaNode,
};
use dyncoterie::quorum::{GridCoterie, NodeId};
use dyncoterie::simnet::{Sim, SimConfig, SimDuration, SimTime};
use std::sync::Arc;

fn main() {
    // 1. Nine replicas arranged (logically) in a 3x3 grid; epochs are
    //    re-checked every 2 simulated seconds.
    let n = 9;
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), n)
        .check_period(SimDuration::from_secs(2));
    let mut sim = Sim::new(n, SimConfig::default(), |id| {
        ReplicaNode::new(id, config.clone())
    });

    // 2. A client at node 0 writes page 0.
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        ClientRequest::Write {
            id: 1,
            write: PartialWrite::new([(0, Bytes::from_static(b"hello, coterie"))]),
        },
    );
    sim.run_for(SimDuration::from_millis(200));

    // 3. A client at node 5 reads it back.
    sim.schedule_external(sim.now(), NodeId(5), ClientRequest::Read { id: 2 });
    sim.run_for(SimDuration::from_millis(200));

    for (t, node, event) in sim.take_outputs() {
        match event {
            ProtocolEvent::WriteOk {
                id,
                version,
                replicas_touched,
                marked_stale,
            } => {
                println!("[{t}] write #{id} committed at version {version} (touched {replicas_touched} replicas, marked {marked_stale} stale) via {node:?}")
            }
            ProtocolEvent::ReadOk {
                id, version, pages, ..
            } => println!(
                "[{t}] read #{id} -> version {version}, page 0 = {:?}",
                String::from_utf8_lossy(&pages[0])
            ),
            other => println!("[{t}] {node:?}: {other:?}"),
        }
    }

    // 4. Kill a replica; epoch checking notices and shrinks the epoch so
    //    future quorums avoid the dead node.
    println!("\ncrashing node 8 ...");
    sim.crash_now(NodeId(8));
    sim.run_for(SimDuration::from_secs(8));
    for (t, node, event) in sim.take_outputs() {
        if let ProtocolEvent::EpochInstalled { enumber, members } = event {
            println!(
                "[{t}] {node:?} installed epoch #{enumber} with {} members",
                members.len()
            );
        }
    }

    // 5. Writes still succeed — the static grid protocol could be stuck if
    //    the failure had landed badly; the dynamic protocol adapts.
    sim.schedule_external(
        sim.now(),
        NodeId(3),
        ClientRequest::Write {
            id: 3,
            write: PartialWrite::new([(1, Bytes::from_static(b"still writable"))]),
        },
    );
    sim.run_for(SimDuration::from_millis(500));
    for (t, _, event) in sim.take_outputs() {
        if let ProtocolEvent::WriteOk { id, version, .. } = event {
            println!("[{t}] write #{id} committed at version {version} after the failure");
        }
    }
    println!(
        "\nepoch at node 0: {:?} (epoch #{})",
        sim.node(NodeId(0)).durable.elist,
        sim.node(NodeId(0)).durable.enumber
    );
}
