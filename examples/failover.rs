//! Failure accumulation and partition tolerance: the paper's headline
//! fault-tolerance scenario.
//!
//! The static grid protocol dies once any read or write quorum's worth of
//! replicas is down. The dynamic protocol re-forms its epoch after every
//! detected failure, staying writable all the way down to three nodes —
//! and a partitioned minority can never form a conflicting epoch.
//!
//! Run with: `cargo run --example failover`

use bytes::Bytes;
use dyncoterie::protocol::{
    ClientRequest, PartialWrite, ProtocolConfig, ProtocolEvent, ReplicaNode,
};
use dyncoterie::quorum::{GridCoterie, NodeId};
use dyncoterie::simnet::{Partition, Sim, SimConfig, SimDuration, SimTime};
use std::sync::Arc;

fn write(sim: &mut Sim<ReplicaNode>, id: u64, node: u32) -> bool {
    let at = sim.now();
    sim.schedule_external(
        at,
        NodeId(node),
        ClientRequest::Write {
            id,
            write: PartialWrite::new([(0, Bytes::from(format!("write-{id}")))]),
        },
    );
    sim.run_for(SimDuration::from_secs(2));
    sim.take_outputs()
        .iter()
        .any(|(_, _, e)| matches!(e, ProtocolEvent::WriteOk { id: got, .. } if *got == id))
}

fn main() {
    let n = 9;
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), n)
        .check_period(SimDuration::from_secs(2));
    let mut sim = Sim::new(n, SimConfig::default(), |id| {
        ReplicaNode::new(id, config.clone())
    });
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        ClientRequest::Write {
            id: 0,
            write: PartialWrite::new([(0, Bytes::from_static(b"genesis"))]),
        },
    );
    sim.run_for(SimDuration::from_secs(1));
    sim.take_outputs();

    // Gradually kill six of nine nodes; after each failure the epoch
    // shrinks and a write from node 0 still succeeds.
    println!("killing nodes one at a time; epoch adapts between failures:");
    for (i, victim) in [8u32, 7, 6, 5, 4, 3].iter().enumerate() {
        sim.crash_now(NodeId(*victim));
        sim.run_for(SimDuration::from_secs(10)); // epoch check adapts
        let ok = write(&mut sim, 10 + i as u64, 0);
        let epoch = sim.node(NodeId(0)).durable.elist.len();
        println!(
            "  after {} failures: epoch size {epoch}, write {}",
            i + 1,
            if ok { "COMMITTED" } else { "FAILED" }
        );
    }

    // Partition the three survivors: {0} vs {1, 2}. Neither side holds a
    // write quorum of the 3-node epoch forever... but {1, 2} does (the 2x2
    // grid's short column rule), while the singleton {0} cannot write.
    println!("\npartitioning the survivors: {{0}} | {{1, 2}}");
    sim.set_partition_now(Partition::split(n, &[NodeId(0)]));
    sim.run_for(SimDuration::from_secs(10));
    sim.take_outputs();
    let minority_ok = write(&mut sim, 100, 0);
    let majority_ok = write(&mut sim, 101, 1);
    println!(
        "  write at isolated node 0: {}",
        if minority_ok {
            "COMMITTED (!)"
        } else {
            "failed, as it must"
        }
    );
    println!(
        "  write at connected node 1: {}",
        if majority_ok { "COMMITTED" } else { "failed" }
    );
    assert!(!minority_ok, "safety: the singleton side must not commit");

    // Heal and recover everyone: the epoch re-expands and all replicas
    // converge.
    println!("\nhealing the partition and recovering all nodes ...");
    sim.set_partition_now(Partition::connected(n));
    for v in [3u32, 4, 5, 6, 7, 8] {
        sim.recover_now(NodeId(v));
    }
    sim.run_for(SimDuration::from_secs(40));
    sim.take_outputs();
    let epoch = sim.node(NodeId(0)).durable.elist.len();
    let versions: Vec<u64> = (0..n as u32)
        .map(|i| sim.node(NodeId(i)).durable.version)
        .collect();
    println!("  epoch size back to {epoch}; replica versions: {versions:?}");
}
