//! The dynamic grid protocol on real OS threads.
//!
//! The same `ReplicaNode` byte-for-byte that runs on the deterministic
//! simulator here runs on nine OS threads with crossbeam channels and
//! wall-clock timers — writes commit in real milliseconds, a crashed node
//! is voted out of the epoch by the periodic epoch check, and writes keep
//! flowing.
//!
//! Run with: `cargo run --release --example live_threads`

// Demo on the real-thread host: wall-clock reads are the point.
#![allow(clippy::disallowed_methods)]

use bytes::Bytes;
use dyncoterie::protocol::{
    ClientRequest, PartialWrite, ProtocolConfig, ProtocolEvent, ReplicaNode,
};
use dyncoterie::quorum::{GridCoterie, NodeId};
use dyncoterie::simnet::{SimDuration, ThreadedRuntime};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let n = 9;
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), n)
        .check_period(SimDuration::from_millis(400));
    let rt = ThreadedRuntime::spawn(n, 7, Duration::from_millis(20), move |id| {
        ReplicaNode::new(id, config.clone())
    });

    println!("nine replicas live on nine threads; writing...");
    let started = Instant::now();
    for i in 0..10u64 {
        rt.inject(
            NodeId((i % 9) as u32),
            ClientRequest::Write {
                id: i,
                write: PartialWrite::new([(0, Bytes::from(format!("live-{i}")))]),
            },
        );
        // Wait for the commit so versions stay ordered in this demo.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if let Some((node, ProtocolEvent::WriteOk { id, version, .. })) =
                rt.recv_output(Duration::from_millis(100))
            {
                if id == i {
                    println!(
                        "  [{:>7.3?}] write #{id} -> v{version} (coordinator {node:?})",
                        started.elapsed()
                    );
                    break;
                }
            }
        }
    }

    println!("\ncrashing node 8; the epoch check (400 ms period) will adapt:");
    rt.crash(NodeId(8));
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if let Some((node, ProtocolEvent::EpochInstalled { enumber, members })) =
            rt.recv_output(Duration::from_millis(100))
        {
            println!(
                "  [{:>7.3?}] {node:?} installed epoch #{enumber} ({} members)",
                started.elapsed(),
                members.len()
            );
            if members.len() == 8 {
                break;
            }
        }
    }

    rt.inject(
        NodeId(0),
        ClientRequest::Write {
            id: 100,
            write: PartialWrite::new([(1, Bytes::from_static(b"after the crash"))]),
        },
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if let Some((
            _,
            ProtocolEvent::WriteOk {
                id: 100, version, ..
            },
        )) = rt.recv_output(Duration::from_millis(100))
        {
            println!(
                "  [{:>7.3?}] post-crash write committed at v{version}",
                started.elapsed()
            );
            break;
        }
    }

    let nodes = rt.shutdown();
    let versions: Vec<u64> = nodes.iter().map(|nd| nd.durable.version).collect();
    println!("\nfinal replica versions: {versions:?}");
}
