//! Partial writes and stale marking: a file-system-like workload.
//!
//! Models the paper's motivating scenario (§1/§3): the object is a set of
//! pages ("a file"), each write updates only a few pages, and different
//! coordinators use different write quorums. Replicas left behind by a
//! quorum get *marked stale* instead of synchronously reconciled, and the
//! asynchronous propagation protocol catches them up from the write log.
//!
//! Run with: `cargo run --example partial_writes`

use bytes::Bytes;
use dyncoterie::protocol::{
    ClientRequest, PartialWrite, ProtocolConfig, ProtocolEvent, ReplicaNode,
};
use dyncoterie::quorum::{GridCoterie, NodeId};
use dyncoterie::simnet::{Sim, SimConfig, SimDuration, SimTime};
use std::sync::Arc;

fn main() {
    let n = 9;
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), n).pages(8);
    let mut sim = Sim::new(n, SimConfig::default(), |id| {
        ReplicaNode::new(id, config.clone())
    });

    // Twelve partial writes from rotating coordinators, each touching a
    // different page — like appends to different blocks of a file.
    for i in 0..12u64 {
        sim.schedule_external(
            SimTime(i * 300_000),
            NodeId((i % n as u64) as u32),
            ClientRequest::Write {
                id: i,
                write: PartialWrite::new([(
                    (i % 8) as u16,
                    Bytes::from(format!("block-{i}-data")),
                )]),
            },
        );
    }
    sim.run_for(SimDuration::from_secs(10));

    let mut marked_total = 0usize;
    let mut propagations = 0usize;
    for (t, node, event) in sim.take_outputs() {
        match event {
            ProtocolEvent::WriteOk {
                id,
                version,
                replicas_touched,
                marked_stale,
            } => {
                marked_total += marked_stale;
                println!(
                    "[{t}] write #{id} -> v{version}: quorum of {replicas_touched}, {marked_stale} marked stale"
                );
            }
            ProtocolEvent::Propagated { target, version } => {
                propagations += 1;
                println!(
                    "[{t}] {node:?} propagated missing updates to {target:?} (now v{version})"
                );
            }
            _ => {}
        }
    }
    println!(
        "\n{marked_total} stale marks, {propagations} asynchronous propagations, \
         zero synchronous reconciliations."
    );

    // Every replica that was marked stale has been caught up in the
    // background; read the final state.
    sim.schedule_external(sim.now(), NodeId(4), ClientRequest::Read { id: 100 });
    sim.run_for(SimDuration::from_millis(200));
    for (_, _, event) in sim.take_outputs() {
        if let ProtocolEvent::ReadOk { version, pages, .. } = event {
            println!("\nfinal read: version {version}");
            for (i, page) in pages.iter().enumerate() {
                if !page.is_empty() {
                    println!("  page {i}: {:?}", String::from_utf8_lossy(page));
                }
            }
        }
    }
    let stale_left = (0..n as u32)
        .filter(|&i| sim.node(NodeId(i)).durable.stale)
        .count();
    println!("replicas still stale: {stale_left}");
}
