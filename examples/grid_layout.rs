//! Grid construction (the paper's Figures 1 and 2): `DefineGrid`, the
//! row-major placement with bottom-right holes, quorum membership, and how
//! the layout changes as the epoch shrinks.
//!
//! Run with: `cargo run --example grid_layout [N]`

use dyncoterie::quorum::{CoterieRule, GridCoterie, GridShape, NodeId, NodeSet, QuorumKind, View};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    let rule = GridCoterie::new();

    // The paper's Figure 1 (N = 14 by default).
    let view = View::first_n(n);
    println!("{}", rule.render(&view));
    let shape = GridShape::define(n);
    println!(
        "read quorum size {}, write quorum size {}\n",
        shape.read_quorum_size(),
        shape.write_quorum_size()
    );

    // Show a picked write quorum for a few different coordinators — the
    // quorum function spreads load.
    for seed in 0..3u64 {
        let quorum = rule
            .pick_quorum(&view, view.set(), seed, QuorumKind::Write)
            .unwrap();
        println!("write quorum (seed {seed}): {:?}", quorum.to_vec());
    }

    // The paper's worked example for N = 14: {1, 6, 3, 7, 11, 4} (1-based).
    if n == 14 {
        let example = NodeSet::from_iter([0u32, 5, 2, 6, 10, 3].map(NodeId));
        println!(
            "\npaper's example quorum {{1, 6, 3, 7, 11, 4}}: is_write_quorum = {}",
            rule.is_write_quorum(&view, example)
        );
    }

    // Figure 2: the N = 3 grid, and how a shrunken epoch re-derives its
    // grid over survivors with arbitrary names.
    println!("\n--- epoch shrinkage ---");
    for members in [vec![0u32, 1, 2, 5, 7], vec![0, 2, 7], vec![2, 7]] {
        let epoch = View::new(members.iter().copied().map(NodeId));
        println!("{}", rule.render(&epoch));
    }
}
