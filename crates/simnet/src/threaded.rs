//! A real-thread runtime for [`Application`] nodes.
//!
//! The discrete-event [`Sim`](crate::Sim) is the measurement substrate; this
//! module hosts the *same unmodified node programs* on OS threads with
//! crossbeam channels and wall-clock timers, demonstrating that the protocol
//! implementation is not simulator-bound. Message delivery, the
//! `RPC.CallFailed` bounce for down nodes, timers with cancellation, crash
//! (volatile-state wipe) and recovery all behave like the simulator's —
//! except that time is real and scheduling is whatever the OS provides, so
//! runs are *not* reproducible (use the simulator for experiments).

// This runtime is the *real* host: wall clocks and OS bookkeeping are its
// whole point (see the module docs — runs are intentionally irreproducible).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use crate::app::{Application, Ctx, Effect, TimerId};
use crate::time::{SimDuration, SimTime};
use coterie_quorum::NodeId;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Inputs delivered to a node thread.
enum Input<A: Application> {
    Msg { from: NodeId, msg: A::Msg },
    CallFailed { to: NodeId, msg: A::Msg },
    Timer { boot: u64, timer: A::Timer },
    External(A::External),
    Crash,
    Recover,
    Stop,
}

/// A timer queue entry (min-heap by deadline).
struct Pending<A: Application> {
    at: Instant,
    node: NodeId,
    boot: u64,
    id: TimerId,
    timer: A::Timer,
}

impl<A: Application> PartialEq for Pending<A> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<A: Application> Eq for Pending<A> {}
impl<A: Application> PartialOrd for Pending<A> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<A: Application> Ord for Pending<A> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap.
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

struct TimerService<A: Application> {
    heap: Mutex<BinaryHeap<Pending<A>>>,
    /// Canceled timers, keyed by `(node, id)`: unlike the simulator, timer
    /// ids here are allocated per node thread, so the bare id is not unique
    /// across nodes.
    canceled: Mutex<HashSet<(NodeId, TimerId)>>,
    wake: Condvar,
    stopping: AtomicBool,
}

/// Shared state between node threads and the runtime handle.
struct Shared<A: Application> {
    inboxes: Vec<Sender<Input<A>>>,
    up: Vec<AtomicBool>,
    timers: TimerService<A>,
    fail_notice: Duration,
    started: Instant,
}

impl<A: Application> Shared<A> {
    fn send_input(&self, to: NodeId, input: Input<A>) {
        if let Some(tx) = self.inboxes.get(to.index()) {
            let _ = tx.send(input);
        }
    }
}

/// The real-thread runtime. Create with [`ThreadedRuntime::spawn`], interact
/// through the handle, and call [`shutdown`](ThreadedRuntime::shutdown) (or
/// drop) to join all threads.
pub struct ThreadedRuntime<A: Application + Send + 'static>
where
    A::Msg: Send,
    A::Timer: Send,
    A::External: Send,
    A::Output: Send,
{
    shared: Arc<Shared<A>>,
    outputs: Receiver<(NodeId, A::Output)>,
    node_handles: Vec<JoinHandle<A>>,
    timer_handle: Option<JoinHandle<()>>,
}

impl<A: Application + Send + 'static> ThreadedRuntime<A>
where
    A::Msg: Send,
    A::Timer: Send,
    A::External: Send,
    A::Output: Send,
{
    /// Spawns `n` nodes built by `make_node`, each on its own thread, plus a
    /// timer thread. `fail_notice` is the delay before a sender learns a
    /// message to a down node could not be delivered.
    pub fn spawn(
        n: usize,
        seed: u64,
        fail_notice: Duration,
        mut make_node: impl FnMut(NodeId) -> A,
    ) -> Self {
        let (out_tx, out_rx) = unbounded();
        let mut inbox_txs = Vec::with_capacity(n);
        let mut inbox_rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Input<A>>();
            inbox_txs.push(tx);
            inbox_rxs.push(rx);
        }
        let shared = Arc::new(Shared {
            inboxes: inbox_txs,
            up: (0..n).map(|_| AtomicBool::new(true)).collect(),
            timers: TimerService {
                heap: Mutex::new(BinaryHeap::new()),
                canceled: Mutex::new(HashSet::new()),
                wake: Condvar::new(),
                stopping: AtomicBool::new(false),
            },
            fail_notice,
            started: Instant::now(),
        });

        // Timer thread: sleeps until the earliest deadline, then routes the
        // timer back to its node's inbox.
        let timer_shared = shared.clone();
        let timer_handle = std::thread::spawn(move || loop {
            let mut heap = timer_shared.timers.heap.lock();
            if timer_shared.timers.stopping.load(Ordering::Acquire) {
                return;
            }
            let now = Instant::now();
            match heap.peek().map(|p| p.at) {
                Some(at) if at <= now => {
                    // lint:allow(panic): peek returned Some under the same lock
                    let p = heap.pop().expect("peeked");
                    drop(heap);
                    let canceled = timer_shared.timers.canceled.lock().remove(&(p.node, p.id));
                    if !canceled {
                        timer_shared.send_input(
                            p.node,
                            Input::Timer {
                                boot: p.boot,
                                timer: p.timer,
                            },
                        );
                    }
                }
                Some(at) => {
                    timer_shared.timers.wake.wait_until(&mut heap, at);
                }
                None => {
                    timer_shared.timers.wake.wait(&mut heap);
                }
            }
        });

        // Node threads.
        let mut node_handles = Vec::with_capacity(n);
        for (i, rx) in inbox_rxs.into_iter().enumerate() {
            let me = NodeId(i as u32);
            let mut app = make_node(me);
            let shared = shared.clone();
            let out_tx = out_tx.clone();
            let handle = std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37));
                let mut next_timer_id: u64 = 1;
                let mut boot: u64 = 0;
                let mut effects: Vec<Effect<A>> = Vec::new();
                // Boot.
                run_callback(
                    &shared,
                    &out_tx,
                    me,
                    boot,
                    &mut rng,
                    &mut next_timer_id,
                    &mut effects,
                    |app, ctx| app.on_start(ctx),
                    &mut app,
                );
                loop {
                    let input = match rx.try_recv() {
                        Ok(input) => input,
                        Err(TryRecvError::Disconnected) => break,
                        Err(TryRecvError::Empty) => {
                            // Inbox drained and about to block: give the
                            // app its idle hook (group-commit hosts flush
                            // here instead of waiting out the deadline).
                            if shared.up[me.index()].load(Ordering::Acquire) {
                                run_callback(
                                    &shared,
                                    &out_tx,
                                    me,
                                    boot,
                                    &mut rng,
                                    &mut next_timer_id,
                                    &mut effects,
                                    |app, ctx| app.on_idle(ctx),
                                    &mut app,
                                );
                            }
                            match rx.recv() {
                                Ok(input) => input,
                                Err(_) => break,
                            }
                        }
                    };
                    let up = shared.up[me.index()].load(Ordering::Acquire);
                    match input {
                        Input::Stop => break,
                        Input::Crash => {
                            if up {
                                shared.up[me.index()].store(false, Ordering::Release);
                                boot += 1;
                                app.on_crash();
                            }
                        }
                        Input::Recover => {
                            if !up {
                                shared.up[me.index()].store(true, Ordering::Release);
                                run_callback(
                                    &shared,
                                    &out_tx,
                                    me,
                                    boot,
                                    &mut rng,
                                    &mut next_timer_id,
                                    &mut effects,
                                    |app, ctx| app.on_start(ctx),
                                    &mut app,
                                );
                            }
                        }
                        Input::Msg { from, msg } => {
                            if up {
                                run_callback(
                                    &shared,
                                    &out_tx,
                                    me,
                                    boot,
                                    &mut rng,
                                    &mut next_timer_id,
                                    &mut effects,
                                    |app, ctx| app.on_message(ctx, from, msg),
                                    &mut app,
                                );
                            } else {
                                // The host bounces on behalf of the dead
                                // node after the RPC notice delay.
                                let shared2 = shared.clone();
                                schedule_bounce(&shared2, from, me, msg);
                            }
                        }
                        Input::CallFailed { to, msg } => {
                            if up {
                                run_callback(
                                    &shared,
                                    &out_tx,
                                    me,
                                    boot,
                                    &mut rng,
                                    &mut next_timer_id,
                                    &mut effects,
                                    |app, ctx| app.on_call_failed(ctx, to, msg),
                                    &mut app,
                                );
                            }
                        }
                        Input::Timer { boot: tb, timer } => {
                            if up && tb == boot {
                                run_callback(
                                    &shared,
                                    &out_tx,
                                    me,
                                    boot,
                                    &mut rng,
                                    &mut next_timer_id,
                                    &mut effects,
                                    |app, ctx| app.on_timer(ctx, timer),
                                    &mut app,
                                );
                            }
                        }
                        Input::External(ext) => {
                            if up {
                                run_callback(
                                    &shared,
                                    &out_tx,
                                    me,
                                    boot,
                                    &mut rng,
                                    &mut next_timer_id,
                                    &mut effects,
                                    |app, ctx| app.on_external(ctx, ext),
                                    &mut app,
                                );
                            }
                        }
                    }
                }
                app
            });
            node_handles.push(handle);
        }

        ThreadedRuntime {
            shared,
            outputs: out_rx,
            node_handles,
            timer_handle: Some(timer_handle),
        }
    }

    /// Injects an external operation at `node`.
    pub fn inject(&self, node: NodeId, ext: A::External) {
        self.shared.send_input(node, Input::External(ext));
    }

    /// Crashes `node` (volatile state wiped, messages bounce).
    pub fn crash(&self, node: NodeId) {
        self.shared.send_input(node, Input::Crash);
    }

    /// Recovers `node`.
    pub fn recover(&self, node: NodeId) {
        self.shared.send_input(node, Input::Recover);
    }

    /// Receives the next output, waiting up to `timeout`.
    pub fn recv_output(&self, timeout: Duration) -> Option<(NodeId, A::Output)> {
        self.outputs.recv_timeout(timeout).ok()
    }

    /// Drains all currently available outputs.
    pub fn drain_outputs(&self) -> Vec<(NodeId, A::Output)> {
        self.outputs.try_iter().collect()
    }

    /// Stops every node and joins all threads, returning the final node
    /// states in id order.
    pub fn shutdown(mut self) -> Vec<A> {
        for tx in &self.shared.inboxes {
            let _ = tx.send(Input::Stop);
        }
        let apps: Vec<A> = self
            .node_handles
            .drain(..)
            // lint:allow(panic): join only fails if the node thread panicked; re-raise
            .map(|h| h.join().expect("node thread panicked"))
            .collect();
        self.shared.timers.stopping.store(true, Ordering::Release);
        self.shared.timers.wake.notify_all();
        if let Some(h) = self.timer_handle.take() {
            let _ = h.join();
        }
        apps
    }
}

/// Schedules a `CallFailed` bounce back to `sender` after the notice delay.
fn schedule_bounce<A: Application + 'static>(
    shared: &Arc<Shared<A>>,
    sender: NodeId,
    to: NodeId,
    msg: A::Msg,
) where
    A::Msg: Send,
    A::Timer: Send,
    A::External: Send,
{
    // Reuse the timer heap with a synthetic timer id of 0 is not possible
    // (payload type differs), so bounce on a helper thread-free path: a
    // small sleep on the timer heap would need A::Timer. Instead, spawn the
    // bounce through the channel after sleeping on a detached thread would
    // cost a thread per bounce; in practice the notice delay is tens of
    // milliseconds and bounces are rare, so a detached thread is acceptable
    // and keeps the design simple.
    let shared = shared.clone();
    let delay = shared.fail_notice;
    std::thread::spawn(move || {
        std::thread::sleep(delay);
        shared.send_input(sender, Input::CallFailed { to, msg });
    });
}

/// Runs one application callback, then applies its effects: sends become
/// channel deliveries (or bounces), timers go to the timer service, outputs
/// go to the output channel.
#[allow(clippy::too_many_arguments)]
fn run_callback<A: Application + 'static>(
    shared: &Arc<Shared<A>>,
    out_tx: &Sender<(NodeId, A::Output)>,
    me: NodeId,
    boot: u64,
    rng: &mut StdRng,
    next_timer_id: &mut u64,
    effects: &mut Vec<Effect<A>>,
    f: impl FnOnce(&mut A, &mut Ctx<'_, A>),
    app: &mut A,
) where
    A::Msg: Send,
    A::Timer: Send,
    A::External: Send,
{
    let now = SimTime(shared.started.elapsed().as_micros() as u64);
    {
        let mut ctx = Ctx {
            me,
            now,
            rng,
            effects,
            next_timer_id,
        };
        f(app, &mut ctx);
    }
    for effect in effects.drain(..) {
        match effect {
            Effect::Send { to, msg } => {
                if to.index() < shared.inboxes.len() {
                    shared.send_input(to, Input::Msg { from: me, msg });
                } else {
                    schedule_bounce(shared, me, to, msg);
                }
            }
            Effect::SetTimer { id, delay, timer } => {
                let at = Instant::now() + to_std(delay);
                shared.timers.heap.lock().push(Pending {
                    at,
                    node: me,
                    boot,
                    id,
                    timer,
                });
                shared.timers.wake.notify_all();
            }
            Effect::CancelTimer { id } => {
                shared.timers.canceled.lock().insert((me, id));
            }
            Effect::Output(out) => {
                let _ = out_tx.send((me, out));
            }
        }
    }
}

fn to_std(d: SimDuration) -> Duration {
    Duration::from_micros(d.micros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Application;

    /// Minimal ping-counting app.
    struct Counter {
        pings: u64,
        durable: u64,
    }

    #[derive(Clone, Debug)]
    enum M {
        Ping,
        Pong,
    }

    impl Application for Counter {
        type Msg = M;
        type Timer = ();
        type External = NodeId; // "ping this node"
        type Output = u64;

        fn on_start(&mut self, _ctx: &mut Ctx<'_, Self>) {}
        fn on_crash(&mut self) {
            self.pings = 0; // volatile
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: M) {
            match msg {
                M::Ping => ctx.send(from, M::Pong),
                M::Pong => {
                    self.pings += 1;
                    self.durable += 1;
                    ctx.output(self.pings);
                }
            }
        }
        fn on_call_failed(&mut self, ctx: &mut Ctx<'_, Self>, _to: NodeId, _msg: M) {
            ctx.output(u64::MAX); // bounce marker
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self>, _t: ()) {}
        fn on_external(&mut self, ctx: &mut Ctx<'_, Self>, target: NodeId) {
            ctx.send(target, M::Ping);
        }
    }

    #[test]
    fn round_trips_over_real_threads() {
        let rt = ThreadedRuntime::spawn(2, 1, Duration::from_millis(20), |_| Counter {
            pings: 0,
            durable: 0,
        });
        for _ in 0..5 {
            rt.inject(NodeId(0), NodeId(1));
        }
        let mut seen = 0;
        while seen < 5 {
            let (node, count) = rt
                .recv_output(Duration::from_secs(5))
                .expect("pong within 5s");
            assert_eq!(node, NodeId(0));
            assert!(count <= 5);
            seen += 1;
        }
        let apps = rt.shutdown();
        assert_eq!(apps[0].durable, 5);
    }

    #[test]
    fn down_nodes_bounce_call_failed() {
        let rt = ThreadedRuntime::spawn(2, 2, Duration::from_millis(10), |_| Counter {
            pings: 0,
            durable: 0,
        });
        rt.crash(NodeId(1));
        std::thread::sleep(Duration::from_millis(50));
        rt.inject(NodeId(0), NodeId(1));
        let (node, marker) = rt
            .recv_output(Duration::from_secs(5))
            .expect("bounce within 5s");
        assert_eq!(node, NodeId(0));
        assert_eq!(marker, u64::MAX);
        rt.shutdown();
    }

    #[test]
    fn crash_wipes_volatile_and_recover_restarts() {
        let rt = ThreadedRuntime::spawn(2, 3, Duration::from_millis(10), |_| Counter {
            pings: 0,
            durable: 0,
        });
        rt.inject(NodeId(0), NodeId(1));
        assert!(rt.recv_output(Duration::from_secs(5)).is_some());
        rt.crash(NodeId(0));
        rt.recover(NodeId(0));
        rt.inject(NodeId(0), NodeId(1));
        let (_, count) = rt.recv_output(Duration::from_secs(5)).expect("pong");
        assert_eq!(count, 1, "volatile counter must restart at zero");
        let apps = rt.shutdown();
        assert_eq!(apps[0].durable, 2, "durable counter survives the crash");
    }
}
