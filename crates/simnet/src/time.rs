//! Virtual time for the discrete-event simulator.
//!
//! The types themselves live in [`coterie_base`] so that the sans-I/O
//! protocol engine can speak about time without depending on this
//! simulator; this module re-exports them under their historical paths.

pub use coterie_base::{SimDuration, SimTime};
