//! The discrete-event simulator core.

// Substrate-side bookkeeping (canceled-timer set): membership-only, never
// iterated, so hash order cannot leak into the simulation.
#![allow(clippy::disallowed_types)]

use crate::app::{Application, Ctx, Effect, TimerId};
use crate::network::{NetConfig, NetCounters, Partition};
use crate::time::{SimDuration, SimTime};
use coterie_quorum::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Network model parameters.
    pub net: NetConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC07E_81E5,
            net: NetConfig::default(),
        }
    }
}

/// What happened to a node (used in traces and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeStatus {
    /// Node is running.
    Up,
    /// Node has crashed and not yet recovered.
    Down,
}

enum EventKind<A: Application> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: A::Msg,
    },
    CallFailed {
        sender: NodeId,
        to: NodeId,
        msg: A::Msg,
    },
    Timer {
        node: NodeId,
        boot: u64,
        id: TimerId,
        timer: A::Timer,
    },
    External {
        node: NodeId,
        ext: A::External,
    },
    Crash {
        node: NodeId,
    },
    Recover {
        node: NodeId,
    },
    SetPartition {
        partition: Partition,
    },
}

struct Event<A: Application> {
    time: SimTime,
    seq: u64,
    kind: EventKind<A>,
}

impl<A: Application> PartialEq for Event<A> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<A: Application> Eq for Event<A> {}
impl<A: Application> PartialOrd for Event<A> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<A: Application> Ord for Event<A> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct NodeSlot<A: Application> {
    app: A,
    up: bool,
    /// Incremented on every crash; timer events from an earlier boot are
    /// dropped when popped.
    boot: u64,
}

/// The deterministic discrete-event simulator.
///
/// Hosts `N` [`Application`] nodes, a latency/partition network with
/// `RPC.CallFailed` semantics, and a fault-injection API. All randomness
/// flows from the seed in [`SimConfig`], so runs are reproducible.
pub struct Sim<A: Application> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Event<A>>,
    nodes: Vec<NodeSlot<A>>,
    partition: Partition,
    config: SimConfig,
    rng: StdRng,
    next_timer_id: u64,
    /// Canceled timers, keyed by `(node, id)`: sans-I/O applications
    /// allocate timer ids per node, so the bare id is not globally unique.
    canceled_timers: HashSet<(NodeId, TimerId)>,
    outputs: Vec<(SimTime, NodeId, A::Output)>,
    counters: NetCounters,
    effects_buf: Vec<Effect<A>>,
}

impl<A: Application> Sim<A> {
    /// Creates a simulator with `n` nodes built by `make_node`, and runs
    /// every node's `on_start` at time zero.
    pub fn new(n: usize, config: SimConfig, mut make_node: impl FnMut(NodeId) -> A) -> Self {
        config.net.validate();
        let rng = StdRng::seed_from_u64(config.seed);
        let mut sim = Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            nodes: (0..n)
                .map(|i| NodeSlot {
                    app: make_node(NodeId(i as u32)),
                    up: true,
                    boot: 0,
                })
                .collect(),
            partition: Partition::connected(n),
            config,
            rng,
            next_timer_id: 1,
            canceled_timers: HashSet::new(),
            outputs: Vec::new(),
            counters: NetCounters::new(n),
            effects_buf: Vec::new(),
        };
        for i in 0..n {
            sim.start_node(NodeId(i as u32));
        }
        sim
    }

    /// Number of hosted nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the simulator hosts no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to a node's application (for assertions and metrics).
    pub fn node(&self, id: NodeId) -> &A {
        &self.nodes[id.index()].app
    }

    /// Mutable access to a node's application. Intended for test setup;
    /// protocol interaction should go through messages and externals.
    pub fn node_mut(&mut self, id: NodeId) -> &mut A {
        &mut self.nodes[id.index()].app
    }

    /// Whether `id` is currently up.
    pub fn status(&self, id: NodeId) -> NodeStatus {
        if self.nodes[id.index()].up {
            NodeStatus::Up
        } else {
            NodeStatus::Down
        }
    }

    /// The set of currently-up nodes.
    pub fn up_nodes(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .map(NodeId)
            .filter(|&n| self.nodes[n.index()].up)
            .collect()
    }

    /// Network traffic counters.
    pub fn counters(&self) -> &NetCounters {
        &self.counters
    }

    /// Current partition state.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Drains outputs emitted since the last call.
    pub fn take_outputs(&mut self) -> Vec<(SimTime, NodeId, A::Output)> {
        std::mem::take(&mut self.outputs)
    }

    // ---- fault & workload injection -------------------------------------

    /// Schedules a crash of `node` at absolute time `at` (>= now).
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        self.push(at, EventKind::Crash { node });
    }

    /// Schedules a recovery of `node` at absolute time `at`.
    pub fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        self.push(at, EventKind::Recover { node });
    }

    /// Schedules a partition change at absolute time `at`.
    pub fn schedule_partition(&mut self, at: SimTime, partition: Partition) {
        assert_eq!(partition.len(), self.nodes.len(), "partition size mismatch");
        self.push(at, EventKind::SetPartition { partition });
    }

    /// Schedules an external operation at `node` at absolute time `at`.
    pub fn schedule_external(&mut self, at: SimTime, node: NodeId, ext: A::External) {
        self.push(at, EventKind::External { node, ext });
    }

    /// Crashes `node` right now (processed before any later event).
    pub fn crash_now(&mut self, node: NodeId) {
        self.apply_crash(node);
    }

    /// Recovers `node` right now.
    pub fn recover_now(&mut self, node: NodeId) {
        self.apply_recover(node);
    }

    /// Replaces the partition right now.
    pub fn set_partition_now(&mut self, partition: Partition) {
        assert_eq!(partition.len(), self.nodes.len(), "partition size mismatch");
        self.partition = partition;
    }

    // ---- execution -------------------------------------------------------

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        match ev.kind {
            EventKind::Deliver { from, to, msg } => {
                // Reachability is evaluated at delivery time: a message in
                // flight when its target crashes or partitions away bounces
                // back as CallFailed.
                if self.nodes[to.index()].up && self.partition.can_reach(from, to) {
                    self.counters.delivered += 1;
                    self.counters.received_by[to.index()] += 1;
                    self.dispatch(to, |app, ctx| app.on_message(ctx, from, msg));
                } else {
                    let at = self.now + self.config.net.fail_notice_delay;
                    self.push(
                        at,
                        EventKind::CallFailed {
                            sender: from,
                            to,
                            msg,
                        },
                    );
                }
            }
            EventKind::CallFailed { sender, to, msg } => {
                self.counters.failed += 1;
                if self.nodes[sender.index()].up {
                    self.dispatch(sender, |app, ctx| app.on_call_failed(ctx, to, msg));
                }
            }
            EventKind::Timer {
                node,
                boot,
                id,
                timer,
            } => {
                if self.canceled_timers.remove(&(node, id)) {
                    return true;
                }
                let slot = &self.nodes[node.index()];
                if slot.up && slot.boot == boot {
                    self.dispatch(node, |app, ctx| app.on_timer(ctx, timer));
                }
            }
            EventKind::External { node, ext } => {
                if self.nodes[node.index()].up {
                    self.dispatch(node, |app, ctx| app.on_external(ctx, ext));
                }
                // Externals at a down node are dropped: the client's
                // connection attempt fails and the harness observes the
                // absence of a response.
            }
            EventKind::Crash { node } => self.apply_crash(node),
            EventKind::Recover { node } => self.apply_recover(node),
            EventKind::SetPartition { partition } => self.partition = partition,
        }
        true
    }

    /// Runs until the queue is drained or virtual time would pass `until`.
    /// Events at exactly `until` are processed.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(ev) = self.queue.peek() {
            if ev.time > until {
                break;
            }
            self.step();
        }
        if self.now < until {
            self.now = until;
        }
    }

    /// Runs for a span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) {
        let until = self.now + d;
        self.run_until(until);
    }

    /// Runs until the event queue is empty (beware of self-rearming timers).
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    /// Runs at most `max_events` events.
    pub fn run_events(&mut self, max_events: u64) {
        for _ in 0..max_events {
            if !self.step() {
                break;
            }
        }
    }

    // ---- internals -------------------------------------------------------

    fn push(&mut self, time: SimTime, kind: EventKind<A>) {
        assert!(time >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Event { time, seq, kind });
    }

    fn start_node(&mut self, node: NodeId) {
        self.dispatch(node, |app, ctx| app.on_start(ctx));
    }

    fn apply_crash(&mut self, node: NodeId) {
        let slot = &mut self.nodes[node.index()];
        if !slot.up {
            return;
        }
        slot.up = false;
        slot.boot += 1; // invalidates all pending timers for this node
        slot.app.on_crash();
    }

    fn apply_recover(&mut self, node: NodeId) {
        let slot = &mut self.nodes[node.index()];
        if slot.up {
            return;
        }
        slot.up = true;
        self.start_node(node);
    }

    fn dispatch(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut Ctx<'_, A>)) {
        debug_assert!(self.nodes[node.index()].up);
        let mut effects = std::mem::take(&mut self.effects_buf);
        {
            let mut ctx = Ctx {
                me: node,
                now: self.now,
                rng: &mut self.rng,
                effects: &mut effects,
                next_timer_id: &mut self.next_timer_id,
            };
            f(&mut self.nodes[node.index()].app, &mut ctx);
        }
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => self.net_send(node, to, msg),
                Effect::SetTimer { id, delay, timer } => {
                    let boot = self.nodes[node.index()].boot;
                    let at = self.now + delay;
                    self.push(
                        at,
                        EventKind::Timer {
                            node,
                            boot,
                            id,
                            timer,
                        },
                    );
                }
                Effect::CancelTimer { id } => {
                    self.canceled_timers.insert((node, id));
                }
                Effect::Output(out) => self.outputs.push((self.now, node, out)),
            }
        }
        self.effects_buf = effects;
    }

    fn net_send(&mut self, from: NodeId, to: NodeId, msg: A::Msg) {
        self.counters.sent += 1;
        self.counters.sent_by[from.index()] += 1;
        if to.index() >= self.nodes.len() {
            // Unknown target: immediate CallFailed after the notice delay.
            let at = self.now + self.config.net.fail_notice_delay;
            self.push(
                at,
                EventKind::CallFailed {
                    sender: from,
                    to,
                    msg,
                },
            );
            return;
        }
        let latency = if from == to {
            self.config.net.self_latency
        } else if self.partition.can_reach(from, to) && self.nodes[to.index()].up {
            SimDuration(
                self.rng
                    .gen_range(self.config.net.latency_min.0..=self.config.net.latency_max.0),
            )
        } else {
            // Known-unreachable at send time: the RPC layer reports failure
            // after its timeout.
            // Debugging aid: `--features coterie-simnet/trace-dead-sends`
            // logs the first sends to unreachable nodes, which makes
            // CallFailed feedback loops easy to spot.
            #[cfg(feature = "trace-dead-sends")]
            {
                use std::sync::atomic::{AtomicU64, Ordering};
                static LOGGED: AtomicU64 = AtomicU64::new(0);
                if LOGGED.fetch_add(1, Ordering::Relaxed) < 200 {
                    eprintln!("DEAD {:?} {from:?} -> {to:?}: {msg:?}", self.now);
                }
            }
            let at = self.now + self.config.net.fail_notice_delay;
            self.push(
                at,
                EventKind::CallFailed {
                    sender: from,
                    to,
                    msg,
                },
            );
            return;
        };
        let at = self.now + latency;
        self.push(at, EventKind::Deliver { from, to, msg });
    }
}
