//! # coterie-simnet
//!
//! A deterministic discrete-event simulator for fail-stop distributed
//! systems, providing the substrate the paper assumes in §3:
//!
//! * RPC-style communication "in which the notification `RPC.CallFailed` is
//!   returned to the sender if the message cannot be delivered";
//! * fail-stop nodes (crash, no Byzantine behaviour) with durable state
//!   surviving crashes and volatile state wiped;
//! * network partitions;
//! * timers, and a seeded RNG so every run is reproducible.
//!
//! Nodes implement the [`Application`] trait; the harness schedules client
//! operations, crashes, recoveries and partition changes on the [`Sim`].
//!
//! ```
//! use coterie_simnet::{Application, Ctx, Sim, SimConfig, SimDuration};
//! use coterie_quorum::NodeId;
//!
//! struct Echo;
//! impl Application for Echo {
//!     type Msg = String;
//!     type Timer = ();
//!     type External = String;
//!     type Output = String;
//!     fn on_start(&mut self, _ctx: &mut Ctx<'_, Self>) {}
//!     fn on_crash(&mut self) {}
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: String) {
//!         if msg.starts_with("ping") {
//!             ctx.send(from, format!("pong from {}", ctx.me()));
//!         } else {
//!             ctx.output(msg);
//!         }
//!     }
//!     fn on_call_failed(&mut self, _: &mut Ctx<'_, Self>, _: NodeId, _: String) {}
//!     fn on_timer(&mut self, _: &mut Ctx<'_, Self>, _: ()) {}
//!     fn on_external(&mut self, ctx: &mut Ctx<'_, Self>, target: String) {
//!         let to = NodeId(target.parse().unwrap());
//!         ctx.send(to, "ping".into());
//!     }
//! }
//!
//! let mut sim = Sim::new(2, SimConfig::default(), |_| Echo);
//! sim.schedule_external(coterie_simnet::SimTime::ZERO, NodeId(0), "1".into());
//! sim.run_for(SimDuration::from_secs(1));
//! assert_eq!(sim.take_outputs().len(), 1);
//! ```

pub mod app;
pub mod network;
pub mod sim;
pub mod threaded;
pub mod time;

pub use app::{Application, Ctx, TimerId};
pub use network::{NetConfig, NetCounters, Partition};
pub use sim::{NodeStatus, Sim, SimConfig};
pub use threaded::ThreadedRuntime;
pub use time::{SimDuration, SimTime};

// Re-export the node identifier type for convenience.
pub use coterie_quorum::NodeId;
