//! The application interface: event-driven nodes hosted by the simulator.

use crate::time::{SimDuration, SimTime};
use coterie_quorum::NodeId;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;

pub use coterie_base::TimerId;

/// A node program hosted by the simulator.
///
/// The model matches the paper's §3: fail-stop nodes communicating through
/// RPC-style messages, where "the notification RPC.CallFailed is returned to
/// the sender if the message cannot be delivered".
///
/// State discipline: anything that must survive a crash (the replica's
/// version number, epoch list, stale flag, the prepared-transaction log, …)
/// must be kept in fields that [`on_crash`](Application::on_crash) preserves;
/// everything else (locks, in-flight coordinator state, timers) is volatile
/// and must be reset there. Pending timers are dropped by the host on crash.
pub trait Application: Sized {
    /// Messages exchanged between nodes.
    type Msg: Clone + fmt::Debug;
    /// Timer payloads delivered back to the node that set them.
    type Timer: Clone + fmt::Debug;
    /// Operations injected from outside the system (client requests,
    /// management commands).
    type External: fmt::Debug;
    /// Observable outputs collected by the simulator (client responses,
    /// protocol events of interest to the harness).
    type Output: fmt::Debug;

    /// Called when the node first boots and after every recovery.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>);

    /// Called when the node crashes: reset volatile state, keep durable
    /// state. The host guarantees no other callback runs while down.
    fn on_crash(&mut self);

    /// A message from `from` arrived.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: Self::Msg);

    /// A message previously sent to `to` could not be delivered; `msg` is
    /// the undeliverable message (the paper's `RPC.CallFailed`).
    fn on_call_failed(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, msg: Self::Msg);

    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Self::Timer);

    /// An external operation was injected at this node.
    fn on_external(&mut self, ctx: &mut Ctx<'_, Self>, ext: Self::External);

    /// The host observed an empty inbox: every queued input has been
    /// processed and the node is about to block. Only hosts that can see
    /// their inbox call this (the threaded runtime does; the
    /// discrete-event simulator, which knows the future, does not).
    /// Group-commit hosts use it to flush coalescing buffers immediately
    /// instead of paying the flush-deadline latency. Default: no-op.
    fn on_idle(&mut self, _ctx: &mut Ctx<'_, Self>) {}
}

/// Side effects a handler may request; applied by the simulator after the
/// handler returns (keeps handlers free of re-entrancy).
pub(crate) enum Effect<A: Application> {
    Send {
        to: NodeId,
        msg: A::Msg,
    },
    SetTimer {
        id: TimerId,
        delay: SimDuration,
        timer: A::Timer,
    },
    CancelTimer {
        id: TimerId,
    },
    Output(A::Output),
}

/// The per-callback context handed to [`Application`] handlers.
pub struct Ctx<'a, A: Application> {
    pub(crate) me: NodeId,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut StdRng,
    pub(crate) effects: &'a mut Vec<Effect<A>>,
    pub(crate) next_timer_id: &'a mut u64,
}

impl<'a, A: Application> Ctx<'a, A> {
    /// This node's id.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends `msg` to `to`. Delivery (or a `CallFailed` bounce) happens
    /// after the network latency; self-sends are permitted and also go
    /// through the queue, so handlers never re-enter.
    pub fn send(&mut self, to: NodeId, msg: A::Msg) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Sends `msg` to every node in `targets`.
    pub fn multicast<I: IntoIterator<Item = NodeId>>(&mut self, targets: I, msg: A::Msg)
    where
        A::Msg: Clone,
    {
        for to in targets {
            self.send(to, msg.clone());
        }
    }

    /// Arms a timer that fires after `delay` unless canceled or the node
    /// crashes first. Returns an id usable with [`cancel_timer`](Ctx::cancel_timer).
    pub fn set_timer(&mut self, delay: SimDuration, timer: A::Timer) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.effects.push(Effect::SetTimer { id, delay, timer });
        id
    }

    /// Arms a timer under a caller-chosen id. Hosts use this to replay
    /// timer effects from sans-I/O engines that allocate their own ids;
    /// the id must be unique among this node's live timers (cancellation
    /// is keyed by `(node, id)`).
    pub fn set_timer_with_id(&mut self, id: TimerId, delay: SimDuration, timer: A::Timer) {
        self.effects.push(Effect::SetTimer { id, delay, timer });
    }

    /// Cancels a pending timer. Canceling an already-fired or unknown timer
    /// is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer { id });
    }

    /// Emits an observable output collected by the simulator.
    pub fn output(&mut self, out: A::Output) {
        self.effects.push(Effect::Output(out));
    }

    /// Draws a uniform `u64` from the simulation's deterministic RNG.
    pub fn rand_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Draws a uniform value in `[0, n)`; `n` must be positive.
    pub fn rand_below(&mut self, n: u64) -> u64 {
        self.rng.gen_range(0..n)
    }

    /// Draws a uniform duration in `[lo, hi]`.
    pub fn rand_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration(self.rng.gen_range(lo.0..=hi.0))
    }
}
