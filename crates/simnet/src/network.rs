//! Network model: per-message latency, reachability (partitions), and the
//! RPC failure-notification delay.

use crate::time::SimDuration;
use coterie_quorum::NodeId;

/// Network configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Minimum one-way message latency.
    pub latency_min: SimDuration,
    /// Maximum one-way message latency (uniformly distributed).
    pub latency_max: SimDuration,
    /// How long after the send a `CallFailed` notification reaches the
    /// sender when the target is down or unreachable (models the RPC
    /// timeout of the paper's `RPC.CallFailed`).
    pub fail_notice_delay: SimDuration,
    /// Latency for a node sending to itself (loopback).
    pub self_latency: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency_min: SimDuration::from_micros(500),
            latency_max: SimDuration::from_micros(2_000),
            fail_notice_delay: SimDuration::from_millis(20),
            self_latency: SimDuration::from_micros(10),
        }
    }
}

impl NetConfig {
    /// Validates internal consistency; panics on nonsense configurations.
    pub fn validate(&self) {
        assert!(
            self.latency_min <= self.latency_max,
            "latency_min must not exceed latency_max"
        );
        assert!(
            self.fail_notice_delay >= self.latency_max,
            "fail_notice_delay should be at least the max latency so that \
             CallFailed never outruns a successful delivery"
        );
    }
}

/// Partition state: each node carries a group label; nodes communicate iff
/// their labels match. The default (all zero) is a fully connected network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    groups: Vec<u32>,
}

impl Partition {
    /// Fully connected network over `n` nodes.
    pub fn connected(n: usize) -> Self {
        Partition { groups: vec![0; n] }
    }

    /// Builds a partition from explicit group labels.
    pub fn from_groups(groups: Vec<u32>) -> Self {
        Partition { groups }
    }

    /// Splits the network so that the nodes of `island` form one component
    /// and everyone else another.
    pub fn split(n: usize, island: &[NodeId]) -> Self {
        let mut groups = vec![0u32; n];
        for node in island {
            groups[node.index()] = 1;
        }
        Partition { groups }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Whether `a` can currently reach `b`.
    pub fn can_reach(&self, a: NodeId, b: NodeId) -> bool {
        self.groups
            .get(a.index())
            .zip(self.groups.get(b.index()))
            .is_some_and(|(ga, gb)| ga == gb)
    }

    /// The group label of `node`.
    pub fn group_of(&self, node: NodeId) -> u32 {
        self.groups[node.index()]
    }
}

/// Message accounting kept by the simulator, exposed for traffic metrics.
#[derive(Clone, Debug, Default)]
pub struct NetCounters {
    /// Total messages handed to the network.
    pub sent: u64,
    /// Messages delivered to their target.
    pub delivered: u64,
    /// Messages bounced as `CallFailed`.
    pub failed: u64,
    /// Per-node sent counts.
    pub sent_by: Vec<u64>,
    /// Per-node received counts.
    pub received_by: Vec<u64>,
}

impl NetCounters {
    pub(crate) fn new(n: usize) -> Self {
        NetCounters {
            sent_by: vec![0; n],
            received_by: vec![0; n],
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        NetConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "latency_min")]
    fn inverted_latency_rejected() {
        NetConfig {
            latency_min: SimDuration::from_millis(5),
            latency_max: SimDuration::from_millis(1),
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn partition_reachability() {
        let p = Partition::connected(4);
        assert!(p.can_reach(NodeId(0), NodeId(3)));
        let p = Partition::split(4, &[NodeId(1), NodeId(2)]);
        assert!(p.can_reach(NodeId(1), NodeId(2)));
        assert!(p.can_reach(NodeId(0), NodeId(3)));
        assert!(!p.can_reach(NodeId(0), NodeId(1)));
        assert!(p.can_reach(NodeId(2), NodeId(2)));
        assert_eq!(p.group_of(NodeId(1)), 1);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn out_of_range_nodes_unreachable() {
        let p = Partition::connected(2);
        assert!(!p.can_reach(NodeId(0), NodeId(9)));
    }
}
