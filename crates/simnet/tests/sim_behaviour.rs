//! Behavioural tests of the simulator: delivery, CallFailed semantics,
//! crash/recovery, timers, partitions, and determinism.

use coterie_quorum::NodeId;
use coterie_simnet::{
    Application, Ctx, NodeStatus, Partition, Sim, SimConfig, SimDuration, SimTime, TimerId,
};

/// A test node that records everything that happens to it.
#[derive(Default)]
struct Probe {
    // durable
    generation: u32,
    // volatile
    received: Vec<(NodeId, u32)>,
    failures: Vec<NodeId>,
    timer_fired: Vec<u32>,
    started: u32,
    pending_timer: Option<TimerId>,
}

#[derive(Debug)]
enum Cmd {
    Send { to: NodeId, tag: u32 },
    Arm { tag: u32, delay_ms: u64 },
    ArmThenCancel { tag: u32, delay_ms: u64 },
}

impl Application for Probe {
    type Msg = u32;
    type Timer = u32;
    type External = Cmd;
    type Output = (&'static str, u32);

    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self>) {
        self.started += 1;
    }

    fn on_crash(&mut self) {
        // Durable state survives, volatile resets.
        self.generation += 1;
        self.received.clear();
        self.failures.clear();
        self.timer_fired.clear();
        self.pending_timer = None;
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: u32) {
        self.received.push((from, msg));
        ctx.output(("recv", msg));
    }

    fn on_call_failed(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, msg: u32) {
        self.failures.push(to);
        ctx.output(("fail", msg));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: u32) {
        self.timer_fired.push(timer);
        ctx.output(("timer", timer));
    }

    fn on_external(&mut self, ctx: &mut Ctx<'_, Self>, ext: Cmd) {
        match ext {
            Cmd::Send { to, tag } => ctx.send(to, tag),
            Cmd::Arm { tag, delay_ms } => {
                self.pending_timer = Some(ctx.set_timer(SimDuration::from_millis(delay_ms), tag));
            }
            Cmd::ArmThenCancel { tag, delay_ms } => {
                let id = ctx.set_timer(SimDuration::from_millis(delay_ms), tag);
                ctx.cancel_timer(id);
            }
        }
    }
}

fn new_sim(n: usize) -> Sim<Probe> {
    Sim::new(n, SimConfig::default(), |_| Probe::default())
}

#[test]
fn messages_are_delivered_with_latency() {
    let mut sim = new_sim(2);
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        Cmd::Send {
            to: NodeId(1),
            tag: 7,
        },
    );
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(sim.node(NodeId(1)).received, vec![(NodeId(0), 7)]);
    let outs = sim.take_outputs();
    assert_eq!(outs.len(), 1);
    let (t, node, out) = &outs[0];
    assert!(*t > SimTime::ZERO, "delivery must take nonzero time");
    assert_eq!(*node, NodeId(1));
    assert_eq!(*out, ("recv", 7));
    assert_eq!(sim.counters().sent, 1);
    assert_eq!(sim.counters().delivered, 1);
    assert_eq!(sim.counters().failed, 0);
}

#[test]
fn send_to_down_node_bounces_as_call_failed() {
    let mut sim = new_sim(2);
    sim.crash_now(NodeId(1));
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        Cmd::Send {
            to: NodeId(1),
            tag: 9,
        },
    );
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(sim.node(NodeId(0)).failures, vec![NodeId(1)]);
    assert_eq!(sim.counters().failed, 1);
    assert_eq!(sim.counters().delivered, 0);
}

#[test]
fn crash_during_flight_bounces_message() {
    let mut sim = new_sim(2);
    // Crash node 1 a moment after the send, before the ~0.5-2 ms delivery.
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        Cmd::Send {
            to: NodeId(1),
            tag: 3,
        },
    );
    sim.schedule_crash(SimTime(1), NodeId(1));
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(sim.node(NodeId(0)).failures, vec![NodeId(1)]);
    assert_eq!(sim.node(NodeId(1)).received, vec![]);
}

#[test]
fn crash_wipes_volatile_keeps_durable_and_recovery_restarts() {
    let mut sim = new_sim(2);
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        Cmd::Send {
            to: NodeId(1),
            tag: 1,
        },
    );
    sim.run_for(SimDuration::from_millis(100));
    assert_eq!(sim.node(NodeId(1)).received.len(), 1);
    assert_eq!(sim.node(NodeId(1)).started, 1);

    sim.crash_now(NodeId(1));
    assert_eq!(sim.status(NodeId(1)), NodeStatus::Down);
    assert_eq!(sim.node(NodeId(1)).generation, 1); // durable increment
    assert!(sim.node(NodeId(1)).received.is_empty()); // volatile wiped

    sim.recover_now(NodeId(1));
    assert_eq!(sim.status(NodeId(1)), NodeStatus::Up);
    assert_eq!(sim.node(NodeId(1)).started, 2); // on_start re-ran
    assert_eq!(sim.node(NodeId(1)).generation, 1);
}

#[test]
fn double_crash_and_double_recover_are_idempotent() {
    let mut sim = new_sim(1);
    sim.crash_now(NodeId(0));
    sim.crash_now(NodeId(0));
    assert_eq!(sim.node(NodeId(0)).generation, 1);
    sim.recover_now(NodeId(0));
    sim.recover_now(NodeId(0));
    assert_eq!(sim.node(NodeId(0)).started, 2);
}

#[test]
fn timers_fire_in_order_and_cancel_works() {
    let mut sim = new_sim(1);
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        Cmd::Arm {
            tag: 2,
            delay_ms: 20,
        },
    );
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        Cmd::Arm {
            tag: 1,
            delay_ms: 10,
        },
    );
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        Cmd::ArmThenCancel {
            tag: 99,
            delay_ms: 5,
        },
    );
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(sim.node(NodeId(0)).timer_fired, vec![1, 2]);
}

#[test]
fn timers_do_not_survive_crash() {
    let mut sim = new_sim(1);
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        Cmd::Arm {
            tag: 5,
            delay_ms: 50,
        },
    );
    sim.schedule_crash(SimTime(10_000), NodeId(0));
    sim.schedule_recover(SimTime(20_000), NodeId(0));
    sim.run_for(SimDuration::from_secs(1));
    assert!(
        sim.node(NodeId(0)).timer_fired.is_empty(),
        "timer armed before the crash must not fire after recovery"
    );
}

#[test]
fn partitions_block_and_heal() {
    let mut sim = new_sim(4);
    sim.set_partition_now(Partition::split(4, &[NodeId(2), NodeId(3)]));
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        Cmd::Send {
            to: NodeId(2),
            tag: 1,
        },
    );
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        Cmd::Send {
            to: NodeId(1),
            tag: 2,
        },
    );
    sim.run_for(SimDuration::from_millis(100));
    assert_eq!(sim.node(NodeId(0)).failures, vec![NodeId(2)]);
    assert_eq!(sim.node(NodeId(1)).received, vec![(NodeId(0), 2)]);

    // Heal and retry.
    sim.set_partition_now(Partition::connected(4));
    let t = sim.now();
    sim.schedule_external(
        t,
        NodeId(0),
        Cmd::Send {
            to: NodeId(2),
            tag: 3,
        },
    );
    sim.run_for(SimDuration::from_millis(100));
    assert_eq!(sim.node(NodeId(2)).received, vec![(NodeId(0), 3)]);
}

#[test]
fn self_send_works() {
    let mut sim = new_sim(1);
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        Cmd::Send {
            to: NodeId(0),
            tag: 4,
        },
    );
    sim.run_for(SimDuration::from_millis(10));
    assert_eq!(sim.node(NodeId(0)).received, vec![(NodeId(0), 4)]);
}

#[test]
fn externals_at_down_nodes_are_dropped() {
    let mut sim = new_sim(2);
    sim.crash_now(NodeId(0));
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(0),
        Cmd::Send {
            to: NodeId(1),
            tag: 8,
        },
    );
    sim.run_for(SimDuration::from_secs(1));
    assert_eq!(sim.counters().sent, 0);
    assert!(sim.node(NodeId(1)).received.is_empty());
}

#[test]
fn identical_seeds_give_identical_runs() {
    let run = |seed: u64| {
        let mut sim = Sim::new(
            3,
            SimConfig {
                seed,
                ..Default::default()
            },
            |_| Probe::default(),
        );
        for i in 0..50u64 {
            let at = SimTime(i * 1_000);
            sim.schedule_external(
                at,
                NodeId((i % 3) as u32),
                Cmd::Send {
                    to: NodeId(((i + 1) % 3) as u32),
                    tag: i as u32,
                },
            );
        }
        sim.schedule_crash(SimTime(20_000), NodeId(1));
        sim.schedule_recover(SimTime(35_000), NodeId(1));
        sim.run_for(SimDuration::from_secs(2));
        sim.take_outputs()
            .into_iter()
            .map(|(t, n, o)| (t.micros(), n.0, o))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42), run(43), "different seeds should reorder latencies");
}

#[test]
fn run_until_advances_clock_even_when_idle() {
    let mut sim = new_sim(1);
    sim.run_until(SimTime(500_000));
    assert_eq!(sim.now(), SimTime(500_000));
}

#[test]
fn counters_track_per_node_traffic() {
    let mut sim = new_sim(3);
    for i in 0..5 {
        sim.schedule_external(
            SimTime(i * 100),
            NodeId(0),
            Cmd::Send {
                to: NodeId(1),
                tag: i as u32,
            },
        );
    }
    sim.schedule_external(
        SimTime::ZERO,
        NodeId(2),
        Cmd::Send {
            to: NodeId(1),
            tag: 9,
        },
    );
    sim.run_for(SimDuration::from_secs(1));
    let c = sim.counters();
    assert_eq!(c.sent_by[0], 5);
    assert_eq!(c.sent_by[2], 1);
    assert_eq!(c.received_by[1], 6);
    assert_eq!(c.sent, 6);
}
