//! A lightweight item-level parser on top of [`crate::lexer`].
//!
//! The multi-pass rules (protocol-surface coverage, lock discipline) need
//! more shape than adjacent-token patterns: which `enum`s a file defines,
//! which `match` expressions it contains and what their arm *patterns*
//! cover, and where function bodies begin and end. This module recovers
//! exactly that much structure — no expressions, no types, no name
//! resolution — from the token stream. It is deliberately forgiving:
//! malformed input degrades to "no items found", never to a panic, because
//! the lint also runs over fixture files that are not valid Rust.

use crate::lexer::{TokKind, Token};

/// An `enum` definition: name and variants with their positions.
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// Declaration line (of the name token).
    pub line: u32,
    /// Token index of the `enum` keyword (for skip-mask checks).
    pub tok: usize,
    /// The variants, in declaration order.
    pub variants: Vec<Variant>,
}

/// One enum variant.
#[derive(Clone, Debug)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// 1-based line of the variant name.
    pub line: u32,
    /// 1-based column of the variant name.
    pub col: u32,
}

/// One arm of a `match` expression.
#[derive(Clone, Debug)]
pub struct Arm {
    /// Token range (half-open, indices into the lexed stream) of the arm's
    /// pattern, excluding any `if` guard.
    pub pat: (usize, usize),
    /// Line of the first pattern token.
    pub line: u32,
    /// Column of the first pattern token.
    pub col: u32,
    /// True if the pattern is exactly the single token `_`.
    pub wildcard: bool,
}

/// One `match` expression.
#[derive(Clone, Debug)]
pub struct MatchExpr {
    /// Line of the `match` keyword.
    pub line: u32,
    /// Column of the `match` keyword.
    pub col: u32,
    /// Token index of the `match` keyword (for skip-mask checks).
    pub tok: usize,
    /// The arms, in source order.
    pub arms: Vec<Arm>,
}

/// One `fn` item (or nested fn; closures are not items).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Line of the name token.
    pub line: u32,
    /// Token index of the `fn` keyword (for skip-mask checks).
    pub tok: usize,
    /// Token range (half-open) of the body, inside the braces.
    pub body: (usize, usize),
}

/// Everything the item-level parser recovers from one file.
#[derive(Clone, Debug, Default)]
pub struct Parsed {
    /// `enum` definitions.
    pub enums: Vec<EnumDef>,
    /// `match` expressions (including nested ones).
    pub matches: Vec<MatchExpr>,
    /// `fn` items with bodies.
    pub fns: Vec<FnItem>,
    /// `pattern_mask[i]` is true when token `i` sits in *pattern position*:
    /// a match-arm pattern (guard excluded) or the pattern of a
    /// `let` / `if let` / `while let` binding. Rules use this to tell
    /// `Msg::Vote { .. }` the pattern from `Msg::Vote { .. }` the
    /// constructor.
    pub pattern_mask: Vec<bool>,
}

/// True if `toks[i]` and `toks[i + 1]` are the adjacent two-character
/// operator `a` `b` (same line, touching columns) — distinguishes `=>` from
/// `> =`, `+=` from `+ =`, and so on.
fn adjacent_pair(toks: &[Token], i: usize, a: char, b: char) -> bool {
    let (Some(x), Some(y)) = (toks.get(i), toks.get(i + 1)) else {
        return false;
    };
    x.is_punct(a) && y.is_punct(b) && x.line == y.line && y.col == x.col + 1
}

/// Bracket-depth bookkeeping over `(`, `[`, `{`.
fn depth_delta(t: &Token) -> i64 {
    if t.kind != TokKind::Punct {
        return 0;
    }
    match t.text.as_bytes().first() {
        Some(b'(') | Some(b'[') | Some(b'{') => 1,
        Some(b')') | Some(b']') | Some(b'}') => -1,
        _ => 0,
    }
}

/// Parses the token stream into items. Never panics on malformed input.
pub fn parse(toks: &[Token]) -> Parsed {
    let mut out = Parsed {
        pattern_mask: vec![false; toks.len()],
        ..Parsed::default()
    };
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "enum" => {
                    if let Some((def, end)) = parse_enum(toks, i) {
                        out.enums.push(def);
                        i = end;
                        continue;
                    }
                }
                "match" => {
                    if let Some(m) = parse_match(toks, i) {
                        for arm in &m.arms {
                            for s in &mut out.pattern_mask[arm.pat.0..arm.pat.1] {
                                *s = true;
                            }
                        }
                        out.matches.push(m);
                        // Do NOT skip ahead: nested matches inside arm
                        // bodies are parsed by the same loop.
                    }
                }
                "fn" => {
                    if let Some(f) = parse_fn(toks, i) {
                        out.fns.push(f);
                    }
                }
                "let" => {
                    // `let PAT = expr;` / `if let PAT = expr` /
                    // `let PAT else`: mark the pattern segment.
                    if let Some(end) = let_pattern_end(toks, i) {
                        for s in &mut out.pattern_mask[i + 1..end] {
                            *s = true;
                        }
                    }
                }
                "matches" => {
                    // `matches!(expr, PAT)` / `matches!(expr, PAT if g)`:
                    // the second argument is a pattern, not an expression.
                    if let Some((start, end)) = matches_pattern_range(toks, i) {
                        for s in &mut out.pattern_mask[start..end] {
                            *s = true;
                        }
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    out
}

/// From the `enum` keyword at `i`, parses the definition. Returns the def
/// and the index just past the closing brace.
fn parse_enum(toks: &[Token], i: usize) -> Option<(EnumDef, usize)> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Scan to the body `{` at depth 0 (skipping generics and where-clauses;
    // `<` / `>` are not bracket-depth, so only (), [], {} count).
    let mut j = i + 2;
    let mut depth = 0i64;
    let open = loop {
        let t = toks.get(j)?;
        if depth == 0 && t.is_punct('{') {
            break j;
        }
        if depth == 0 && t.is_punct(';') {
            return None; // `enum Foo;` is not valid, but stay graceful
        }
        depth += depth_delta(t);
        j += 1;
    };
    // Variants: at depth 1 inside the braces, each comma-separated group's
    // first identifier (skipping `#[...]` attributes) is the variant name.
    let mut variants = Vec::new();
    let mut j = open + 1;
    let mut depth = 1i64;
    let mut expect_name = true;
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        if depth == 1 {
            if t.is_punct('#') && toks.get(j + 1).is_some_and(|n| n.is_punct('[')) {
                // Skip the attribute.
                let mut k = j + 1;
                let mut d = 0i64;
                while k < toks.len() {
                    d += depth_delta(&toks[k]);
                    if d == 0 {
                        break;
                    }
                    k += 1;
                }
                j = k + 1;
                continue;
            }
            if t.is_punct(',') {
                expect_name = true;
            } else if expect_name && t.kind == TokKind::Ident {
                variants.push(Variant {
                    name: t.text.clone(),
                    line: t.line,
                    col: t.col,
                });
                expect_name = false;
            }
        }
        depth += depth_delta(t);
        j += 1;
    }
    Some((
        EnumDef {
            name: name_tok.text.clone(),
            line: name_tok.line,
            tok: i,
            variants,
        },
        j,
    ))
}

/// From the `match` keyword at `i`, parses the expression's arms.
fn parse_match(toks: &[Token], i: usize) -> Option<MatchExpr> {
    // The scrutinee runs to the first `{` at depth 0 (struct literals are
    // not legal in match scrutinees without parens, so this is the body).
    let mut j = i + 1;
    let mut depth = 0i64;
    let open = loop {
        let t = toks.get(j)?;
        if depth == 0 && (t.is_punct(';') || t.is_punct('}')) {
            return None; // `match` used as an identifier-ish fragment
        }
        if depth == 0 && t.is_punct('{') {
            break j;
        }
        depth += depth_delta(t);
        j += 1;
    };
    let mut arms = Vec::new();
    let mut j = open + 1;
    loop {
        // Skip separators.
        while toks.get(j).is_some_and(|t| t.is_punct(',')) {
            j += 1;
        }
        let t = toks.get(j)?;
        if t.is_punct('}') {
            break; // end of match body
        }
        // Pattern: runs to `=>` at depth 0; an `if` guard at depth 0 ends
        // the pattern early (guards are expressions, not patterns).
        let pat_start = j;
        let mut pat_end = None;
        let mut depth = 0i64;
        let arrow = loop {
            let t = toks.get(j)?;
            if depth == 0 {
                if adjacent_pair(toks, j, '=', '>') {
                    break j;
                }
                if pat_end.is_none() && t.is_ident("if") {
                    pat_end = Some(j);
                }
            }
            depth += depth_delta(t);
            if depth < 0 {
                return None; // ran off the match body: malformed
            }
            j += 1;
        };
        let pat_end = pat_end.unwrap_or(arrow);
        let first = &toks[pat_start];
        arms.push(Arm {
            pat: (pat_start, pat_end),
            line: first.line,
            col: first.col,
            // `_` lexes as an identifier (ident-start character).
            wildcard: pat_end == pat_start + 1 && first.text == "_",
        });
        // Body: a braced block, or an expression running to `,` at depth 0
        // (or the match's closing `}`).
        j = arrow + 2; // past `=>`
        let t = toks.get(j)?;
        if t.is_punct('{') {
            let mut d = 0i64;
            while let Some(t) = toks.get(j) {
                d += depth_delta(t);
                j += 1;
                if d == 0 {
                    break;
                }
            }
        } else {
            let mut d = 0i64;
            while let Some(t) = toks.get(j) {
                if d == 0 && t.is_punct(',') {
                    break;
                }
                if d == 0 && t.is_punct('}') {
                    break;
                }
                d += depth_delta(t);
                if d < 0 {
                    break;
                }
                j += 1;
            }
        }
    }
    Some(MatchExpr {
        line: toks[i].line,
        col: toks[i].col,
        tok: i,
        arms,
    })
}

/// From the `fn` keyword at `i`, parses the item header and body range.
/// Returns `None` for bodyless declarations (trait methods, extern).
fn parse_fn(toks: &[Token], i: usize) -> Option<FnItem> {
    let name_tok = toks.get(i + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Scan to the body `{` at depth 0; a `;` first means no body. The
    // return type may contain braces only inside brackets (e.g.
    // `-> [u8; N]`), which depth-counting already handles.
    let mut j = i + 2;
    let mut depth = 0i64;
    let open = loop {
        let t = toks.get(j)?;
        if depth == 0 && t.is_punct(';') {
            return None;
        }
        if depth == 0 && t.is_punct('{') {
            break j;
        }
        depth += depth_delta(t);
        if depth < 0 {
            return None;
        }
        j += 1;
    };
    // Body: to the matching `}`.
    let mut d = 0i64;
    let mut j = open;
    while let Some(t) = toks.get(j) {
        d += depth_delta(t);
        j += 1;
        if d == 0 {
            break;
        }
    }
    Some(FnItem {
        name: name_tok.text.clone(),
        line: name_tok.line,
        tok: i,
        body: (open + 1, j.saturating_sub(1)),
    })
}

/// For the `matches` identifier at `i`, if it opens a `matches!(..)`
/// invocation, returns the token range of the pattern argument (after the
/// first top-level comma, excluding any `if` guard, up to the closing
/// paren).
fn matches_pattern_range(toks: &[Token], i: usize) -> Option<(usize, usize)> {
    if !toks.get(i + 1)?.is_punct('!') || !toks.get(i + 2)?.is_punct('(') {
        return None;
    }
    let mut j = i + 3;
    let mut depth = 1i64;
    let mut start = None;
    let mut guard = None;
    while let Some(t) = toks.get(j) {
        depth += depth_delta(t);
        if depth == 0 {
            let s = start?;
            return Some((s, guard.unwrap_or(j)));
        }
        if depth == 1 {
            if start.is_none() && t.is_punct(',') {
                start = Some(j + 1);
            } else if start.is_some() && guard.is_none() && t.is_ident("if") {
                guard = Some(j);
            }
        }
        j += 1;
    }
    None
}

/// For the `let` keyword at `i`, returns the token index ending the
/// pattern segment: the `=` of the initializer, the `else` of a
/// `let-else`, a `:` type ascription, or the terminating `;`.
fn let_pattern_end(toks: &[Token], i: usize) -> Option<usize> {
    let mut j = i + 1;
    let mut depth = 0i64;
    loop {
        let t = toks.get(j)?;
        if depth == 0 {
            // `=` that is not `==` and not preceded-joined by an operator
            // (`>=`, `+=`, ... cannot appear before a let initializer's
            // `=`, but stay strict anyway).
            if t.is_punct('=') && !adjacent_pair(toks, j, '=', '=') {
                let joined_prev = j > 0 && {
                    let p = &toks[j - 1];
                    p.kind == TokKind::Punct && p.line == t.line && p.col + 1 == t.col
                };
                if !joined_prev {
                    return Some(j);
                }
            }
            if t.is_punct(':') {
                // `::` inside a path pattern (`E::P(x)`) is part of the
                // pattern; a lone `:` is type ascription and ends it.
                if toks.get(j + 1).is_some_and(|n| n.is_punct(':')) {
                    j += 2;
                    continue;
                }
                return Some(j);
            }
            if t.is_punct(';') || t.is_ident("else") {
                return Some(j);
            }
        }
        depth += depth_delta(t);
        if depth < 0 {
            return Some(j);
        }
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_enum_variants_with_payloads() {
        let src = "pub enum Msg {\n    WriteReq { op: u32 },\n    Release,\n    Vote(bool),\n}\n";
        let p = parse(&lex(src).tokens);
        assert_eq!(p.enums.len(), 1);
        let e = &p.enums[0];
        assert_eq!(e.name, "Msg");
        let names: Vec<_> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["WriteReq", "Release", "Vote"]);
        assert_eq!(e.variants[1].line, 3);
    }

    #[test]
    fn enum_attributes_are_not_variants() {
        let src = "enum E {\n    #[doc = \"x\"]\n    A,\n    B { x: u8 },\n}\n";
        let p = parse(&lex(src).tokens);
        let names: Vec<_> = p.enums[0]
            .variants
            .iter()
            .map(|v| v.name.as_str())
            .collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn match_arms_and_wildcard() {
        let src = "fn f(m: M) {\n    match m {\n        M::A { x } => use_it(x),\n        M::B | M::C => {}\n        _ => {}\n    }\n}\n";
        let p = parse(&lex(src).tokens);
        assert_eq!(p.matches.len(), 1);
        let m = &p.matches[0];
        assert_eq!(m.arms.len(), 3);
        assert!(!m.arms[0].wildcard);
        assert!(m.arms[2].wildcard);
        assert_eq!(m.arms[2].line, 5);
    }

    #[test]
    fn guard_is_not_part_of_the_pattern() {
        let src = "fn f() { match x { Some(c) if c.has(M::A) => 1, _ => 2 }; }";
        let p = parse(&lex(src).tokens);
        let toks = lex(src).tokens;
        let m = &p.matches[0];
        let (s, e) = m.arms[0].pat;
        let pat_text: Vec<_> = toks[s..e].iter().map(|t| t.text.as_str()).collect();
        assert!(pat_text.contains(&"Some"));
        assert!(!pat_text.contains(&"has"), "guard leaked into pattern");
    }

    #[test]
    fn pattern_mask_separates_pattern_from_construction() {
        let src = "fn f(m: M) -> M {\n    match m {\n        M::A => M::B,\n    }\n}\n";
        let toks = lex(src).tokens;
        let p = parse(&toks);
        let a = toks.iter().position(|t| t.is_ident("A")).unwrap();
        let b = toks.iter().position(|t| t.is_ident("B")).unwrap();
        assert!(p.pattern_mask[a], "arm pattern not masked");
        assert!(!p.pattern_mask[b], "arm body wrongly masked");
    }

    #[test]
    fn let_and_if_let_patterns_are_masked() {
        let src = "fn f(e: E) {\n    if let E::P(d) = e { drop(d) }\n    let E::Q { x } = make() else { return };\n    let y = E::R;\n}\n";
        let toks = lex(src).tokens;
        let p = parse(&toks);
        let pat_p = toks.iter().position(|t| t.is_ident("P")).unwrap();
        let pat_q = toks.iter().position(|t| t.is_ident("Q")).unwrap();
        let con_r = toks.iter().position(|t| t.is_ident("R")).unwrap();
        assert!(p.pattern_mask[pat_p]);
        assert!(p.pattern_mask[pat_q]);
        assert!(!p.pattern_mask[con_r], "initializer wrongly masked");
    }

    #[test]
    fn matches_macro_argument_is_a_pattern() {
        let src = "fn f(e: E) -> bool { matches!(e, E::P(_) if ok(E::Q)) }";
        let toks = lex(src).tokens;
        let p = parse(&toks);
        let pat_p = toks.iter().position(|t| t.is_ident("P")).unwrap();
        let grd_q = toks.iter().position(|t| t.is_ident("Q")).unwrap();
        assert!(p.pattern_mask[pat_p], "matches! pattern not masked");
        assert!(!p.pattern_mask[grd_q], "matches! guard wrongly masked");
    }

    #[test]
    fn fn_items_have_body_ranges() {
        let src = "impl S {\n    fn alpha(&self) -> u8 { 1 }\n    fn beta();\n}\nfn gamma() { inner() }\n";
        let p = parse(&lex(src).tokens);
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "gamma"]);
    }

    #[test]
    fn nested_matches_are_both_found() {
        let src = "fn f() { match a { A::X => match b { B::Y => 1, _ => 2 }, _ => 3 }; }";
        let p = parse(&lex(src).tokens);
        assert_eq!(p.matches.len(), 2);
    }

    #[test]
    fn malformed_input_does_not_panic() {
        for src in ["enum", "match {", "fn", "match x { A =>", "let"] {
            let _ = parse(&lex(src).tokens);
        }
    }
}
