//! The allow budget: a checked-in ceiling on `lint:allow` directives.
//!
//! Every *used* `lint:allow(rule)` in policed code counts against the
//! per-rule ceiling in `crates/lint/allow-budget.txt`. Exceeding the
//! ceiling is a finding — so new suppressions force an explicit,
//! reviewable budget bump, and the numbers are expected to only shrink
//! over time (ratchet discipline).

use crate::diag::Finding;

/// Parses the budget file: `rule <space> max` lines, `#` comments.
pub fn parse_budget(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(max)) = (parts.next(), parts.next()) else {
            continue;
        };
        if let Ok(max) = max.parse::<u32>() {
            out.push((rule.to_string(), max));
        }
    }
    out
}

/// Checks used-allow totals against the budget; over-budget rules become
/// findings anchored at the budget file itself.
pub fn check_budget(
    budget: &[(String, u32)],
    used: &[(String, u32)],
    budget_file: &str,
) -> Vec<Finding> {
    let mut totals: Vec<(String, u32)> = Vec::new();
    for (rule, _line) in used {
        match totals.iter_mut().find(|(r, _)| r == rule) {
            Some((_, n)) => *n += 1,
            None => totals.push((rule.clone(), 1)),
        }
    }
    totals.sort();
    let mut findings = Vec::new();
    for (rule, n) in &totals {
        let max = budget
            .iter()
            .find(|(r, _)| r == rule)
            .map(|(_, m)| *m)
            .unwrap_or(0);
        if *n > max {
            findings.push(Finding {
                file: budget_file.to_string(),
                line: 1,
                col: 1,
                rule: "allow-hygiene".into(),
                message: format!(
                    "allow budget exceeded for `{rule}`: {n} used, {max} budgeted; \
                     fix the sites or raise the ceiling in an explicit, reviewed bump"
                ),
                snippet: String::new(),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_lines_and_comments() {
        let b = parse_budget("# ceiling\npanic 12\ndeterminism 0 # none\n\n");
        assert_eq!(
            b,
            vec![("panic".to_string(), 12), ("determinism".to_string(), 0)]
        );
    }

    #[test]
    fn over_budget_is_a_finding() {
        let budget = vec![("panic".to_string(), 1)];
        let used = vec![("panic".to_string(), 3), ("panic".to_string(), 9)];
        let f = check_budget(&budget, &used, "crates/lint/allow-budget.txt");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("2 used, 1 budgeted"));
    }

    #[test]
    fn within_budget_is_clean() {
        let budget = vec![("panic".to_string(), 2)];
        let used = vec![("panic".to_string(), 3)];
        assert!(check_budget(&budget, &used, "b").is_empty());
    }

    #[test]
    fn unbudgeted_rule_defaults_to_zero() {
        let used = vec![("determinism".to_string(), 7)];
        let f = check_budget(&[], &used, "b");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("0 budgeted"));
    }
}
