//! The ratcheted allow baseline: a checked-in, per-rule-family ceiling on
//! `lint:allow` directives.
//!
//! Every *used* `lint:allow(rule)` in policed code counts against the
//! per-rule number in `crates/lint/baseline.json`. The ratchet is
//! **exact and shrink-only**: exceeding the baseline is a finding (new
//! suppressions force an explicit, reviewable bump), and *undershooting*
//! it is also a finding (when sites are fixed, the recorded baseline must
//! shrink with them — `--write-baseline` regenerates it). The baseline can
//! therefore never silently drift upward and never hide headroom.
//!
//! The file is JSON so `--format json` consumers can diff a scan against
//! it, but it is parsed by a ~40-line scanner (std-only policy: no serde).

use crate::diag::Finding;

/// Parses `baseline.json`: returns `(rule, allows)` pairs from the
/// `"rules"` object. The scanner only relies on the shape
/// `"rules": { "<name>": { "allows": <n> }, ... }` and ignores everything
/// else (comments keys, whitespace, trailing commas).
pub fn parse_baseline(text: &str) -> Vec<(String, u32)> {
    let Some(start) = text.find("\"rules\"") else {
        return Vec::new();
    };
    let rest = &text[start + "\"rules\"".len()..];
    let bytes = rest.as_bytes();
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut started = false;
    let mut strings: Vec<String> = Vec::new(); // last two strings seen
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                depth += 1;
                started = true;
                i += 1;
            }
            b'}' => {
                depth -= 1;
                i += 1;
                if started && depth <= 0 {
                    break;
                }
            }
            b'"' => {
                let s = i + 1;
                let mut e = s;
                while e < bytes.len() && bytes[e] != b'"' {
                    e += 1;
                }
                strings.push(rest[s..e].to_string());
                if strings.len() > 2 {
                    strings.remove(0);
                }
                i = e + 1;
            }
            b'0'..=b'9' => {
                let s = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if let [name, key] = strings.as_slice() {
                    if key == "allows" {
                        if let Ok(n) = rest[s..i].parse::<u32>() {
                            out.push((name.clone(), n));
                        }
                    }
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Serializes `(rule, allows)` pairs back into the baseline file format
/// (sorted by rule so regeneration is deterministic).
pub fn render_baseline(rules: &[(String, u32)]) -> String {
    let mut rules: Vec<_> = rules.to_vec();
    rules.sort();
    let mut out = String::from(
        "{\n  \"comment\": \"shrink-only lint:allow ceilings per rule family; \
         regenerate with `coterie-lint --write-baseline` after fixing sites\",\n  \"rules\": {\n",
    );
    for (i, (rule, n)) in rules.iter().enumerate() {
        let sep = if i + 1 == rules.len() { "" } else { "," };
        out.push_str(&format!("    \"{rule}\": {{ \"allows\": {n} }}{sep}\n"));
    }
    out.push_str("  }\n}\n");
    out
}

/// Tallies used allows per rule (input pairs are `(rule, line)`).
pub fn tally(used: &[(String, u32)]) -> Vec<(String, u32)> {
    let mut totals: Vec<(String, u32)> = Vec::new();
    for (rule, _line) in used {
        match totals.iter_mut().find(|(r, _)| r == rule) {
            Some((_, n)) => *n += 1,
            None => totals.push((rule.clone(), 1)),
        }
    }
    totals.sort();
    totals
}

/// Checks used-allow totals against the baseline. Returns the merged
/// `(rule, budgeted, used)` rows (for the JSON report) and the ratchet
/// findings, anchored at the baseline file itself: a finding when a rule
/// exceeds its budget *and* when it undershoots it (shrink-only ratchet).
pub fn check_baseline(
    baseline: &[(String, u32)],
    used: &[(String, u32)],
    baseline_file: &str,
) -> (Vec<(String, u32, u32)>, Vec<Finding>) {
    let totals = tally(used);
    let mut rules: Vec<String> = baseline
        .iter()
        .map(|(r, _)| r.clone())
        .chain(totals.iter().map(|(r, _)| r.clone()))
        .collect();
    rules.sort();
    rules.dedup();

    let mut rows = Vec::new();
    let mut findings = Vec::new();
    for rule in rules {
        let max = baseline
            .iter()
            .find(|(r, _)| *r == rule)
            .map(|(_, m)| *m)
            .unwrap_or(0);
        let n = totals
            .iter()
            .find(|(r, _)| *r == rule)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        rows.push((rule.clone(), max, n));
        if n > max {
            findings.push(Finding {
                file: baseline_file.to_string(),
                line: 1,
                col: 1,
                rule: "allow-hygiene".into(),
                message: format!(
                    "allow baseline exceeded for `{rule}`: {n} used, {max} budgeted; \
                     fix the sites or bump the baseline in an explicit, reviewed change"
                ),
                snippet: String::new(),
            });
        } else if n < max {
            findings.push(Finding {
                file: baseline_file.to_string(),
                line: 1,
                col: 1,
                rule: "allow-hygiene".into(),
                message: format!(
                    "allow baseline is stale for `{rule}`: {n} used, {max} budgeted; \
                     the ratchet only shrinks — regenerate with `--write-baseline`"
                ),
                snippet: String::new(),
            });
        }
    }
    (rows, findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "comment": "ceilings",
  "rules": {
    "arith": { "allows": 2 },
    "determinism": { "allows": 0 },
    "panic": { "allows": 15 }
  }
}"#;

    #[test]
    fn parses_rule_ceilings() {
        let b = parse_baseline(SAMPLE);
        assert_eq!(
            b,
            vec![
                ("arith".to_string(), 2),
                ("determinism".to_string(), 0),
                ("panic".to_string(), 15)
            ]
        );
    }

    #[test]
    fn render_then_parse_roundtrips() {
        let rules = vec![("panic".to_string(), 3), ("lock".to_string(), 1)];
        let mut parsed = parse_baseline(&render_baseline(&rules));
        parsed.sort();
        let mut rules = rules;
        rules.sort();
        assert_eq!(parsed, rules);
    }

    #[test]
    fn over_baseline_is_a_finding() {
        let baseline = vec![("panic".to_string(), 1)];
        let used = vec![("panic".to_string(), 3), ("panic".to_string(), 9)];
        let (rows, f) = check_baseline(&baseline, &used, "crates/lint/baseline.json");
        assert_eq!(rows, vec![("panic".to_string(), 1, 2)]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("2 used, 1 budgeted"));
    }

    #[test]
    fn exact_match_is_clean() {
        let baseline = vec![("panic".to_string(), 1)];
        let used = vec![("panic".to_string(), 3)];
        let (_, f) = check_baseline(&baseline, &used, "b");
        assert!(f.is_empty());
    }

    #[test]
    fn slack_is_a_finding_too() {
        let baseline = vec![("panic".to_string(), 5)];
        let used = vec![("panic".to_string(), 3)];
        let (_, f) = check_baseline(&baseline, &used, "b");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("stale"));
    }

    #[test]
    fn unbudgeted_rule_defaults_to_zero() {
        let used = vec![("determinism".to_string(), 7)];
        let (_, f) = check_baseline(&[], &used, "b");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("0 budgeted"));
    }

    #[test]
    fn missing_or_malformed_baseline_parses_empty() {
        assert!(parse_baseline("").is_empty());
        assert!(parse_baseline("{}").is_empty());
        assert!(parse_baseline("not json at all").is_empty());
    }
}
