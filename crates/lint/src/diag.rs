//! Diagnostic rendering: human-readable findings with source snippets, and
//! a machine-readable JSON report for `target/lint-report.json`.

use std::fmt::Write as _;

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated regardless of platform.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (byte offset within the line + 1).
    pub col: u32,
    /// Rule id: `determinism`, `effects`, `panic`, `surface`, `lock`,
    /// `arith`, or `allow-hygiene`.
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, verbatim.
    pub snippet: String,
}

impl Finding {
    /// Renders the finding in the classic compiler style:
    ///
    /// ```text
    /// error[determinism]: `HashMap` is forbidden ...
    ///   --> crates/core/src/node.rs:103:20
    ///    |
    /// 103 |     pub decisions: HashMap<OpId, bool>,
    ///    |
    /// ```
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "error[{}]: {}", self.rule, self.message);
        let _ = writeln!(out, "  --> {}:{}:{}", self.file, self.line, self.col);
        let gutter = self.line.to_string().len().max(3);
        let _ = writeln!(out, "{:gutter$} |", "");
        let _ = writeln!(out, "{:>gutter$} | {}", self.line, self.snippet);
        let pad = (self.col as usize).saturating_sub(1);
        let _ = writeln!(out, "{:gutter$} | {:pad$}^", "", "");
        out
    }

    /// Renders the finding as one JSON object (hand-rolled: the lint is
    /// dependency-free by policy).
    pub fn render_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{},\"snippet\":{}}}",
            json_str(&self.file),
            self.line,
            self.col,
            json_str(&self.rule),
            json_str(&self.message),
            json_str(&self.snippet),
        )
    }
}

/// Renders the full report: a JSON object with a findings array, per-rule
/// counts, and the baseline-vs-used diff (`(rule, budgeted, used)` rows),
/// stable field order for diffing across PRs.
pub fn render_json_report(
    findings: &[Finding],
    files_scanned: usize,
    baseline: &[(String, u32, u32)],
) -> String {
    let mut counts: Vec<(String, u32)> = Vec::new();
    for f in findings {
        match counts.iter_mut().find(|(r, _)| *r == f.rule) {
            Some((_, n)) => *n += 1,
            None => counts.push((f.rule.clone(), 1)),
        }
    }
    counts.sort();
    let mut out = String::from("{\n  \"files_scanned\": ");
    let _ = write!(out, "{files_scanned},\n  \"counts\": {{");
    for (i, (rule, n)) in counts.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    {}: {n}", json_str(rule));
    }
    if !counts.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"baseline\": {");
    for (i, (rule, budgeted, used)) in baseline.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            out,
            "{sep}\n    {}: {{\"allows\": {budgeted}, \"used\": {used}}}",
            json_str(rule)
        );
    }
    if !baseline.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(out, "{sep}\n    {}", f.render_json());
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            file: "crates/core/src/node.rs".into(),
            line: 103,
            col: 20,
            rule: "determinism".into(),
            message: "`HashMap` is forbidden".into(),
            snippet: "    pub decisions: HashMap<OpId, bool>,".into(),
        }
    }

    #[test]
    fn human_rendering_points_at_the_column() {
        let r = sample().render_human();
        assert!(r.contains("error[determinism]"));
        assert!(r.contains("--> crates/core/src/node.rs:103:20"));
        let caret_line = r.lines().last().unwrap();
        assert_eq!(caret_line.find('^').unwrap(), "    | ".len() + 19 - 1 + 1);
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        assert_eq!(json_str("a\"b\nc\\d"), "\"a\\\"b\\nc\\\\d\"");
    }

    #[test]
    fn report_counts_by_rule() {
        let mut f2 = sample();
        f2.rule = "panic".into();
        let rep = render_json_report(&[sample(), sample(), f2], 42, &[]);
        assert!(rep.contains("\"files_scanned\": 42"));
        assert!(rep.contains("\"determinism\": 2"));
        assert!(rep.contains("\"panic\": 1"));
    }

    #[test]
    fn report_diffs_baseline_rows() {
        let rep = render_json_report(&[], 3, &[("panic".into(), 15, 14)]);
        assert!(rep.contains("\"panic\": {\"allows\": 15, \"used\": 14}"));
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let rep = render_json_report(&[], 0, &[]);
        assert!(rep.contains("\"findings\": []"));
        assert!(rep.contains("\"baseline\": {}"));
    }
}
