//! P2 — lock discipline, and P3 — codec/storage arithmetic.
//!
//! **Lock discipline** is an intra-function flow pass. The no-wait locking
//! protocol (locks.rs) has three acquisition entry points —
//! `try_exclusive`, `try_shared`, `force_exclusive` — and a held lock is
//! only ever relinquished through the release/lease vocabulary: an
//! explicit `release_lock`/`release`, a `transfer_exclusive` handoff, or a
//! timer fence (`arm_lock_lease`, `Timer::PropLease`, `arm_decision_retry`)
//! that guarantees the lock cannot outlive a crashed or refused operation.
//! Three rules:
//!
//! * **lock-1** — a function that acquires must also name the
//!   release/lease vocabulary; otherwise every path through it leaks.
//! * **lock-2** — `transfer_exclusive` (the pipelined 2PC decision-time
//!   handoff, DESIGN.md §10) must migrate the lock *lease* too, or the new
//!   holder never times out.
//! * **lock-3** — after an *unconditional* acquire (`force_exclusive`, or
//!   a `try_*` whose grant is discarded in statement position), any
//!   `return` or `?` exit reached before the first release/lease mention
//!   leaks the lock on that path. Conditional acquires
//!   (`if lock.try_exclusive(op) == Busy { return refuse(); }`) are out of
//!   scope: their refusal paths never held the lock.
//!
//! **Arithmetic** polices the torn-write boundary (engine/codec.rs,
//! engine/storage.rs): these functions parse adversarial bytes, so every
//! narrowing `as` cast, unchecked `+`/`-`/`*` on length-ish operands, and
//! non-literal index is a potential panic or wraparound mis-parse. The
//! decode paths must degrade to `Undecodable`/`Quarantined`, never panic.

use crate::lexer::{TokKind, Token};
use crate::parse::FnItem;

/// Raw finding tuple: (rule, message, line, col).
pub(crate) type Raw = (String, String, u32, u32);

const ACQUIRE: &[&str] = &["try_exclusive", "try_shared", "force_exclusive"];

/// Naming the release/lease vocabulary is what discharges a lock
/// obligation. `release_lock` / `release` free the lock, `transfer_exclusive`
/// hands it to a successor, and the lease/fence armers guarantee a timer
/// will free it even if the operation dies.
const DISCHARGE: &[&str] = &[
    "release_lock",
    "release",
    "transfer_exclusive",
    "arm_lock_lease",
    "lock_leases",
    "PropLease",
    "arm_decision_retry",
];

/// True if `toks[i]` is a method call `.name(`.
fn is_method_call(toks: &[Token], i: usize) -> bool {
    i > 0 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
}

/// For a method call at `i`, walks left over the receiver chain
/// (`self.vol.lock.`) and returns true when the token *before* the chain
/// is a statement boundary — i.e. the call's value is discarded, so the
/// grant is not being branched on.
fn statement_position(toks: &[Token], i: usize) -> bool {
    let mut j = i - 1; // the `.` before the method name
    loop {
        if j == 0 {
            return true; // start of file: treat as statement
        }
        let t = &toks[j - 1];
        if t.kind == TokKind::Ident || t.is_punct('.') {
            j -= 1;
            continue;
        }
        return t.is_punct(';') || t.is_punct('{') || t.is_punct('}');
    }
}

/// The P2 lock pass over one file's functions.
pub(crate) fn lock_pass(toks: &[Token], skipped: &[bool], fns: &[FnItem]) -> Vec<Raw> {
    let mut raw = Vec::new();
    for f in fns {
        if skipped.get(f.tok).copied().unwrap_or(false) {
            continue;
        }
        let (b0, b1) = f.body;
        let body = b0..b1.min(toks.len());

        let mut acquires = Vec::new(); // (tok idx, unconditional)
        let mut discharges = Vec::new(); // tok idx
        for i in body.clone() {
            if skipped[i] || toks[i].kind != TokKind::Ident {
                continue;
            }
            let name = toks[i].text.as_str();
            if ACQUIRE.contains(&name) && is_method_call(toks, i) {
                let unconditional = name == "force_exclusive" || statement_position(toks, i);
                acquires.push((i, unconditional));
            }
            if DISCHARGE.contains(&name) {
                discharges.push(i);
            }
        }
        // lock-2: a handoff must migrate the lease. Checked even in
        // functions that never acquire — a handoff typically moves a lock
        // some earlier step took.
        for &i in &discharges {
            if toks[i].text == "transfer_exclusive"
                && is_method_call(toks, i)
                && !discharges
                    .iter()
                    .any(|&d| toks[d].text == "lock_leases" || toks[d].text == "arm_lock_lease")
            {
                raw.push((
                    "lock".into(),
                    "`.transfer_exclusive()` hands off the lock without \
                     migrating its lease (`lock_leases` / `arm_lock_lease`); \
                     the new holder would never time out"
                        .into(),
                    toks[i].line,
                    toks[i].col,
                ));
            }
        }
        if acquires.is_empty() {
            continue;
        }

        // lock-1: acquisition with no discharge vocabulary anywhere.
        if discharges.is_empty() {
            for &(i, _) in &acquires {
                raw.push((
                    "lock".into(),
                    format!(
                        "`.{}()` acquires the replica lock but this function \
                         never releases it, hands it off, or arms a lease \
                         fence; every path through it leaks the lock",
                        toks[i].text
                    ),
                    toks[i].line,
                    toks[i].col,
                ));
            }
            continue; // lock-3 would only duplicate the report
        }

        // lock-3: unconditional acquire, then an exit before any discharge.
        for &(a, unconditional) in &acquires {
            if !unconditional {
                continue;
            }
            for i in a + 1..body.end {
                if skipped[i] {
                    continue;
                }
                if discharges.iter().any(|&d| d > a && d <= i) {
                    break; // obligation discharged before any exit
                }
                let is_exit = toks[i].is_ident("return") || toks[i].is_punct('?');
                if is_exit {
                    raw.push((
                        "lock".into(),
                        format!(
                            "early exit leaks the replica lock acquired by \
                             `.{}()` on line {}; release it or arm a lease \
                             fence before this path leaves the function",
                            toks[a].text, toks[a].line
                        ),
                        toks[i].line,
                        toks[i].col,
                    ));
                    break; // one report per acquire is enough
                }
            }
        }
    }
    raw
}

/// Narrowing targets on 64-bit hosts. `usize`/`u64` stay out of the list:
/// widening casts are value-preserving, and the index rule below catches
/// `table[x as usize]` subscripts regardless.
const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifiers that smell like lengths/offsets; arithmetic on them at the
/// decode boundary must be checked.
const LENGTHY: &[&str] = &[
    "len", "pos", "offset", "off", "idx", "index", "count", "cap", "keep", "end", "size", "n",
];

/// True if `toks[i]` and `toks[i + 1]` are glued into one operator
/// (`+=`, `->`, `..` is not an op here, etc.).
fn glued(toks: &[Token], i: usize, next: char) -> bool {
    let (Some(a), Some(b)) = (toks.get(i), toks.get(i + 1)) else {
        return false;
    };
    b.is_punct(next) && a.line == b.line && b.col == a.col + 1
}

/// The P3 arithmetic pass over one file.
pub(crate) fn arith_pass(toks: &[Token], skipped: &[bool]) -> Vec<Raw> {
    let mut raw = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if skipped[i] {
            continue;
        }
        // Narrowing `as` casts.
        if t.is_ident("as") {
            if let Some(n) = toks.get(i + 1) {
                if n.kind == TokKind::Ident && NARROW.contains(&n.text.as_str()) {
                    raw.push((
                        "arith".into(),
                        format!(
                            "narrowing `as {}` cast at the codec boundary \
                             silently truncates; use `try_from` (or a checked \
                             helper) so corrupt lengths become decode errors",
                            n.text
                        ),
                        t.line,
                        t.col,
                    ));
                }
            }
            continue;
        }
        if t.kind != TokKind::Punct {
            continue;
        }
        let c = t.text.chars().next().unwrap_or('\0');
        // Unchecked +, -, * on length-ish operands.
        if matches!(c, '+' | '-' | '*') {
            if glued(toks, i, '=') || (c == '-' && glued(toks, i, '>')) {
                continue; // compound assignment / return arrow
            }
            let binary = i > 0
                && (matches!(toks[i - 1].kind, TokKind::Ident | TokKind::Literal)
                    || toks[i - 1].is_punct(')')
                    || toks[i - 1].is_punct(']'));
            if !binary {
                continue; // unary minus / deref / reference
            }
            if window_has_lengthy(toks, i) {
                raw.push((
                    "arith".into(),
                    format!(
                        "unchecked `{c}` on a length/offset at the codec \
                         boundary; adversarial bytes can overflow it — use \
                         `checked_*`/`saturating_*` so corruption degrades \
                         to a decode error, not a wraparound"
                    ),
                    t.line,
                    t.col,
                ));
            }
            continue;
        }
        // Non-literal indexing in expression position.
        if c == '[' {
            let expr_pos = i > 0
                && (toks[i - 1].kind == TokKind::Ident
                    || toks[i - 1].is_punct(')')
                    || toks[i - 1].is_punct(']'));
            if !expr_pos {
                continue;
            }
            let mut depth = 0i64;
            let mut has_ident = false;
            for t in &toks[i..] {
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.kind == TokKind::Ident {
                    has_ident = true;
                }
            }
            if has_ident {
                raw.push((
                    "arith".into(),
                    "non-literal index at the codec boundary can panic on \
                     corrupt input; use `.get(..)` and treat `None` as a \
                     decode error"
                        .into(),
                    t.line,
                    t.col,
                ));
            }
        }
    }
    raw
}

/// Looks a few tokens around the operator (bounded by statement
/// punctuation) for length-ish identifiers or a `.len(` call.
fn window_has_lengthy(toks: &[Token], op: usize) -> bool {
    let stop = |t: &Token| t.is_punct(';') || t.is_punct('{') || t.is_punct('}') || t.is_punct(',');
    let mut seen = false;
    let mut j = op;
    for _ in 0..6 {
        if j == 0 {
            break;
        }
        j -= 1;
        if stop(&toks[j]) {
            break;
        }
        if toks[j].kind == TokKind::Ident && LENGTHY.contains(&toks[j].text.as_str()) {
            seen = true;
        }
    }
    let mut j = op;
    for _ in 0..6 {
        j += 1;
        let Some(t) = toks.get(j) else { break };
        if stop(t) {
            break;
        }
        if t.kind == TokKind::Ident && LENGTHY.contains(&t.text.as_str()) {
            seen = true;
        }
    }
    seen
}
