//! The rule sets and the per-file analysis pass.
//!
//! Three rules, scoped by file role (see [`crate::scan`]):
//!
//! * **`determinism`** (D1) — engine/protocol modules of `coterie-core`
//!   may not hold state in randomly-seeded collections (`HashMap`,
//!   `HashSet`), read wall clocks (`Instant`, `SystemTime`), draw ambient
//!   randomness (`rand::`, `thread_rng`), spawn threads, or print. The
//!   sans-I/O contract is *same inputs ⇒ same effects, byte-identical*;
//!   each of these smuggles a per-process input past the `Input` type.
//! * **`effects`** (D2) — real I/O (`std::fs`, `std::net`, `std::io`,
//!   `std::process` and their flagship types) may only be named at the
//!   host boundary. Protocol code *describes* I/O as `Effect`s.
//! * **`panic`** (D3) — `unwrap()`, `expect()`, `panic!` and friends in
//!   non-test protocol code must carry an inline
//!   `// lint:allow(panic): reason` annotation, and the total number of
//!   annotations is budgeted (see [`crate::budget`]).
//!
//! The flow-aware families build on the item-level parser
//! ([`crate::parse`]):
//!
//! * **`surface`** (P1) — protocol-surface exhaustiveness over
//!   `Input`/`Effect`/`Msg`/`MsgClass`/`Timer` (see [`crate::surface`]).
//! * **`lock`** (P2) — acquire/release pairing for the replica lock
//!   (see [`crate::flow`]).
//! * **`arith`** (P3) — checked arithmetic at the codec/storage boundary
//!   (see [`crate::flow`]).
//!
//! Suppression: `// lint:allow(<rule>): <reason>` on the offending line or
//! alone on the line above. A missing reason and an unused directive are
//! themselves findings (`allow-hygiene`), so the allowlist stays honest.

use crate::diag::Finding;
use crate::lexer::{lex, Comment, TokKind, Token};

/// Which rules apply to a file (decided from its workspace role).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoleSpec {
    /// D1 determinism rules.
    pub determinism: bool,
    /// D2 effect-discipline rules.
    pub effects: bool,
    /// D3 panic-hygiene rules.
    pub panic: bool,
    /// P1 protocol-surface exhaustiveness (see [`crate::surface`]).
    pub surface: bool,
    /// P2 lock-discipline flow rules (see [`crate::flow`]).
    pub lock: bool,
    /// P3 codec-arithmetic rules (see [`crate::flow`]).
    pub arith: bool,
}

impl RoleSpec {
    /// No rules at all (tool / fixture / vendored code).
    pub const NONE: RoleSpec = RoleSpec {
        determinism: false,
        effects: false,
        panic: false,
        surface: false,
        lock: false,
        arith: false,
    };

    /// True if any rule applies.
    pub fn any(&self) -> bool {
        self.determinism || self.effects || self.panic || self.surface || self.lock || self.arith
    }
}

/// A parsed `lint:allow` directive.
#[derive(Clone, Debug)]
struct AllowDirective {
    rule: String,
    has_reason: bool,
    /// Line the directive appears on.
    line: u32,
    /// Line of code the directive targets (same line for trailing
    /// comments, the next code line for comments owning their line).
    target: u32,
    used: bool,
}

/// Result of analyzing one file.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// Findings to report (post-suppression).
    pub findings: Vec<Finding>,
    /// Count of *used* `lint:allow` directives per rule, for budgeting.
    pub allows_used: Vec<(String, u32)>,
}

/// In-flight analysis of one file. The workspace scan holds these open so
/// that cross-file passes (the protocol-surface matrix) can inject
/// findings — which still honor this file's `lint:allow` directives —
/// before directive hygiene is settled by `FileAnalysis::finish`.
#[derive(Clone, Debug, Default)]
pub struct FileAnalysis {
    /// Workspace-relative path.
    pub file: String,
    /// Findings so far (post-suppression).
    pub findings: Vec<Finding>,
    /// Used `lint:allow` directives as (rule, line), for budgeting.
    pub allows_used: Vec<(String, u32)>,
    /// Surface extraction for the workspace matrix pass (empty unless the
    /// file's role has `surface`).
    pub surface: crate::surface::FileSurface,
    directives: Vec<AllowDirective>,
    lines: Vec<String>,
    finished: bool,
}

impl FileAnalysis {
    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .cloned()
            .unwrap_or_default()
    }

    /// Adds raw findings (rule, message, line, col), suppressing each
    /// against the file's `lint:allow` directives.
    pub(crate) fn push_raw(&mut self, raw: Vec<(String, String, u32, u32)>) {
        for (rule, msg, line, col) in raw {
            let allowed = self
                .directives
                .iter_mut()
                .find(|d| d.rule == rule && d.target == line);
            match allowed {
                Some(d) => {
                    d.used = true;
                    self.allows_used.push((rule, line));
                }
                None => {
                    let snippet = self.snippet(line);
                    self.findings.push(Finding {
                        file: self.file.clone(),
                        line,
                        col,
                        rule,
                        message: msg,
                        snippet,
                    });
                }
            }
        }
    }

    /// Settles directive hygiene (missing reasons, unused allows) and
    /// sorts the findings. Call once, after every pass has run.
    pub(crate) fn finish(&mut self) {
        debug_assert!(!self.finished, "finish() called twice");
        self.finished = true;
        for d in &self.directives {
            if !d.has_reason {
                let snippet = self.snippet(d.line);
                self.findings.push(Finding {
                    file: self.file.clone(),
                    line: d.line,
                    col: 1,
                    rule: "allow-hygiene".into(),
                    message: format!(
                        "`lint:allow({})` without a reason; write \
                         `// lint:allow({}): <why this is sound>`",
                        d.rule, d.rule
                    ),
                    snippet,
                });
            } else if !d.used {
                let snippet = self.snippet(d.line);
                self.findings.push(Finding {
                    file: self.file.clone(),
                    line: d.line,
                    col: 1,
                    rule: "allow-hygiene".into(),
                    message: format!(
                        "unused `lint:allow({})` directive; delete it (the \
                         allow budget must only shrink)",
                        d.rule
                    ),
                    snippet,
                });
            }
        }
        self.findings
            .sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    }
}

/// Analyzes one file's source under the given role: the single-file
/// convenience wrapper over [`analyze_file`] + `FileAnalysis::finish`.
/// (The workspace scan uses `analyze_file` directly so the surface matrix
/// can run in between.)
pub fn analyze(file: &str, src: &str, spec: RoleSpec) -> FileReport {
    let mut a = analyze_file(file, src, spec);
    a.finish();
    FileReport {
        findings: a.findings,
        allows_used: a.allows_used,
    }
}

/// Runs every per-file pass the role asks for and returns the open
/// analysis (directive hygiene not yet settled).
pub fn analyze_file(file: &str, src: &str, spec: RoleSpec) -> FileAnalysis {
    let mut analysis = FileAnalysis {
        file: file.to_string(),
        ..FileAnalysis::default()
    };
    if !spec.any() {
        analysis.finished = true;
        return analysis;
    }
    let lexed = lex(src);
    let skipped = skip_mask(&lexed.tokens, true);
    analysis.directives = parse_directives(&lexed.comments, &lexed.tokens);
    analysis.lines = src.lines().map(|l| l.to_string()).collect();

    let mut raw: Vec<(String, String, u32, u32)> = Vec::new(); // rule, msg, line, col
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if skipped[i] || t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        let path_next = path_segment_after(toks, i); // X in `t::X`

        if spec.determinism {
            match t.text.as_str() {
                "HashMap" | "HashSet" => raw.push((
                    "determinism".into(),
                    format!(
                        "`{}` is forbidden in deterministic protocol state \
                         (iteration order is randomly seeded per process); \
                         use `BTreeMap`/`BTreeSet` or sort at iteration",
                        t.text
                    ),
                    t.line,
                    t.col,
                )),
                "Instant" | "SystemTime" => raw.push((
                    "determinism".into(),
                    format!(
                        "wall-clock type `{}` in engine code; time must \
                         arrive through `Input` (SimTime)",
                        t.text
                    ),
                    t.line,
                    t.col,
                )),
                "thread_rng" => raw.push((
                    "determinism".into(),
                    "ambient RNG in engine code; draw from the \
                     engine-owned seeded RNG (`NodeCtx::rand_below`)"
                        .into(),
                    t.line,
                    t.col,
                )),
                "rand" if path_next.is_some() => raw.push((
                    "determinism".into(),
                    "`rand::` in engine code; draw from the engine-owned \
                     seeded RNG (`NodeCtx::rand_below`)"
                        .into(),
                    t.line,
                    t.col,
                )),
                "std" if path_next.as_deref() == Some("thread") => raw.push((
                    "determinism".into(),
                    "`std::thread` in engine code; the engine is \
                     single-threaded and host-driven"
                        .into(),
                    t.line,
                    t.col,
                )),
                "println" | "eprintln" | "print" | "eprint" | "dbg" if next_bang => raw.push((
                    "determinism".into(),
                    format!(
                        "`{}!` in engine code; client-visible output must \
                         flow through `Effect::Output`",
                        t.text
                    ),
                    t.line,
                    t.col,
                )),
                _ => {}
            }
        }

        if spec.effects {
            let io_module = t.is_ident("std")
                && matches!(
                    path_next.as_deref(),
                    Some("fs") | Some("net") | Some("io") | Some("process")
                );
            // Skip path-segment positions (`std::fs::File`): the path head
            // already produced the module-level finding.
            let after_path_sep = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
            let io_type = !after_path_sep
                && matches!(
                    t.text.as_str(),
                    "File"
                        | "TcpStream"
                        | "TcpListener"
                        | "UdpSocket"
                        | "Stdin"
                        | "Stdout"
                        | "Stderr"
                        | "Command"
                );
            if io_module {
                raw.push((
                    "effects".into(),
                    format!(
                        "host-facing I/O module `std::{}` named outside the \
                         host boundary (engine/io.rs, host.rs, host crates); \
                         describe the interaction as an `Effect` instead",
                        path_next.as_deref().unwrap_or("")
                    ),
                    t.line,
                    t.col,
                ));
            } else if io_type {
                raw.push((
                    "effects".into(),
                    format!(
                        "host-facing I/O type `{}` named outside the host \
                         boundary; describe the interaction as an `Effect`",
                        t.text
                    ),
                    t.line,
                    t.col,
                ));
            }
        }

        if spec.panic {
            let method_panic =
                prev_dot && next_paren && matches!(t.text.as_str(), "unwrap" | "expect");
            let macro_panic = next_bang
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                );
            if method_panic || macro_panic {
                let shown = if macro_panic {
                    format!("{}!", t.text)
                } else {
                    format!(".{}()", t.text)
                };
                raw.push((
                    "panic".into(),
                    format!(
                        "`{shown}` in non-test protocol code without a \
                         `// lint:allow(panic): reason` annotation; return a \
                         typed error or justify the invariant inline"
                    ),
                    t.line,
                    t.col,
                ));
            }
        }
    }

    // The flow-aware passes need item structure on top of the tokens.
    if spec.lock || spec.arith || spec.surface {
        let parsed = crate::parse::parse(toks);
        if spec.lock {
            raw.extend(crate::flow::lock_pass(toks, &skipped, &parsed.fns));
        }
        if spec.arith {
            raw.extend(crate::flow::arith_pass(toks, &skipped));
        }
        if spec.surface {
            // The surface pass uses its own mask: test code is skipped, but
            // `simnet-host`-gated code stays live — the threaded host
            // adapter is exactly the effect consumer being policed.
            let live = skip_mask(toks, false);
            let (fs, wraw) = crate::surface::extract(file, toks, &live, &parsed);
            analysis.surface = fs;
            raw.extend(wraw);
        }
    }

    analysis.push_raw(raw);
    analysis
}

/// If `toks[i]` is followed by `::X`, returns `X`'s text.
fn path_segment_after(toks: &[Token], i: usize) -> Option<String> {
    if toks.get(i + 1)?.is_punct(':') && toks.get(i + 2)?.is_punct(':') {
        let seg = toks.get(i + 3)?;
        if seg.kind == TokKind::Ident {
            return Some(seg.text.clone());
        }
    }
    None
}

/// Parses `lint:allow(<rule>)[: reason]` directives out of the comments.
fn parse_directives(comments: &[Comment], toks: &[Token]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("lint:allow(") else {
            continue;
        };
        let rest = &c.text[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim_start();
        let has_reason = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
        // A comment that owns its line targets the next line holding a
        // token; a trailing comment targets its own line.
        let target = if c.owns_line {
            toks.iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line)
        } else {
            c.line
        };
        out.push(AllowDirective {
            rule,
            has_reason,
            line: c.line,
            target,
            used: false,
        });
    }
    out
}

/// Marks tokens belonging to items gated behind `#[cfg(test)]`, `#[test]`,
/// `#[cfg(feature = "simnet-host")]`, or `#[cfg(any(test, ...))]` — those
/// are host/test territory where the engine rules do not apply. Gates
/// containing `not(...)` are conservatively treated as *live* code. With
/// `skip_host_gated` false, `simnet-host`-gated items stay live (the
/// surface pass polices the host adapter itself).
fn skip_mask(toks: &[Token], skip_host_gated: bool) -> Vec<bool> {
    let mut skip = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        // Inner attribute `#![...]`: consume, never item-gating.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            if let Some(end) = matching_bracket(toks, i + 2) {
                i = end + 1;
                continue;
            }
            i += 1;
            continue;
        }
        let Some(attr_end) = matching_bracket(toks, i + 1) else {
            i += 1;
            continue;
        };
        let attr = &toks[i + 2..attr_end];
        let gates = attr_gates_test_or_host(attr, skip_host_gated);
        let mut j = attr_end + 1;
        if !gates {
            i = j;
            continue;
        }
        // Consume any further attributes on the same item.
        loop {
            if toks.get(j).is_some_and(|t| t.is_punct('#'))
                && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
            {
                match matching_bracket(toks, j + 1) {
                    Some(e) => j = e + 1,
                    None => break,
                }
            } else {
                break;
            }
        }
        // Find the end of the item: a `;` at depth 0, or the matching `}`
        // of the first `{` at depth 0.
        let item_start = i;
        let mut depth = 0i64;
        let mut k = j;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_bytes().first() {
                    Some(b'(') | Some(b'[') => depth += 1,
                    Some(b')') | Some(b']') => depth -= 1,
                    Some(b'{') => {
                        if depth == 0 {
                            // Matching close brace ends the item.
                            let mut braces = 1i64;
                            let mut m = k + 1;
                            while m < toks.len() && braces > 0 {
                                if toks[m].is_punct('{') {
                                    braces += 1;
                                } else if toks[m].is_punct('}') {
                                    braces -= 1;
                                }
                                m += 1;
                            }
                            k = m - 1;
                            break;
                        }
                        depth += 1;
                    }
                    Some(b'}') => depth -= 1,
                    Some(b';') if depth == 0 => break,
                    _ => {}
                }
            }
            k += 1;
        }
        let item_end = k.min(toks.len().saturating_sub(1));
        for s in skip.iter_mut().take(item_end + 1).skip(item_start) {
            *s = true;
        }
        i = item_end + 1;
    }
    skip
}

/// `toks[open]` should be `[`; returns the index of its matching `]`.
fn matching_bracket(toks: &[Token], open: usize) -> Option<usize> {
    if !toks.get(open)?.is_punct('[') {
        return None;
    }
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Does this attribute token list gate the item into test/host territory?
fn attr_gates_test_or_host(attr: &[Token], skip_host_gated: bool) -> bool {
    // Bare `#[test]` / `#[bench]`.
    if attr.len() == 1 && (attr[0].is_ident("test") || attr[0].is_ident("bench")) {
        return true;
    }
    if !attr.first().is_some_and(|t| t.is_ident("cfg")) {
        return false;
    }
    if attr.iter().any(|t| t.is_ident("not")) {
        return false; // `cfg(not(test))` is live code
    }
    attr.iter().any(|t| {
        t.is_ident("test")
            || (skip_host_gated && t.kind == TokKind::Literal && t.text.contains("simnet-host"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: RoleSpec = RoleSpec {
        determinism: true,
        effects: true,
        panic: true,
        surface: true,
        lock: true,
        arith: true,
    };

    fn rules_of(src: &str, spec: RoleSpec) -> Vec<(String, u32)> {
        analyze("t.rs", src, spec)
            .findings
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn flags_hash_collections_and_clocks() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); }\n";
        let got = rules_of(src, ALL);
        assert_eq!(
            got,
            vec![
                ("determinism".to_string(), 1),
                ("determinism".to_string(), 2)
            ]
        );
    }

    #[test]
    fn panic_requires_annotation() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules_of(src, ALL), vec![("panic".to_string(), 1)]);
        let annotated =
            "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint:allow(panic): caller checked\n";
        assert!(rules_of(annotated, ALL).is_empty());
    }

    #[test]
    fn allow_on_previous_line_targets_next_code_line() {
        let src = "// lint:allow(panic): invariant: map key inserted above\nfn f() { m.get(&k).unwrap(); }\n";
        assert!(rules_of(src, ALL).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() } // lint:allow(panic)\n";
        let got = rules_of(src, ALL);
        assert_eq!(got, vec![("allow-hygiene".to_string(), 1)]);
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let src = "// lint:allow(determinism): stale reason\nfn f() {}\n";
        let got = rules_of(src, ALL);
        assert_eq!(got, vec![("allow-hygiene".to_string(), 1)]);
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\nfn live() {}\n";
        assert!(rules_of(src, ALL).is_empty());
    }

    #[test]
    fn simnet_host_gated_items_are_exempt() {
        let src = "#[cfg(feature = \"simnet-host\")]\npub mod host { use std::net::TcpStream; }\nuse std::net::TcpStream;\n";
        let got = rules_of(src, ALL);
        assert_eq!(got, vec![("effects".to_string(), 3)]);
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn f() { let m: HashMap<u8, u8>; }\n";
        assert_eq!(rules_of(src, ALL), vec![("determinism".to_string(), 2)]);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        assert!(rules_of(src, ALL).is_empty());
    }

    #[test]
    fn role_gates_rules() {
        let src = "use std::collections::HashMap;\nfn f(x: Option<u8>) { x.unwrap(); }\n";
        let got = rules_of(
            src,
            RoleSpec {
                panic: true,
                ..RoleSpec::NONE
            },
        );
        assert_eq!(got, vec![("panic".to_string(), 2)]);
    }

    #[test]
    fn words_in_strings_and_comments_do_not_fire() {
        let src = "// HashMap here\nfn f() -> &'static str { \"Instant::now unwrap()\" }\n";
        assert!(rules_of(src, ALL).is_empty());
    }
}
