//! P1 — protocol-surface exhaustiveness.
//!
//! The sans-I/O contract is only as strong as the *surface* it is stated
//! over: every `Input`, `Effect`, `Msg`, `MsgClass`, and `Timer` variant
//! must be constructed by live protocol code, matched where the protocol
//! dispatches on it, and consumed by every host that replays effects. A
//! variant nobody constructs is dead protocol; a variant a host silently
//! drops (via a wildcard `_` arm or a missing arm) is the bug class PR 6
//! had to hand-audit. This pass builds the handling matrix and makes that
//! audit mechanical.
//!
//! Per-file, the pass extracts:
//!   * tracked-enum *definitions* (from the registry's defining files),
//!   * `match` expressions classified as "over a tracked enum" (any arm
//!     pattern names `E::Variant`), with the variant set they cover,
//!   * every other `E::Variant` occurrence, split by pattern position into
//!     *pattern references* and *constructions*.
//!
//! The workspace pass then checks, for each registry entry found in the
//! tree: no dead variants, no never-matched variants, and full coverage in
//! each designated consumer file. Wildcard `_` arms inside tracked matches
//! are reported at extraction time (they are per-file findings and honor
//! `// lint:allow(surface): reason` like any other rule).

use crate::lexer::{TokKind, Token};
use crate::parse::Parsed;

/// One `E::Variant` occurrence.
#[derive(Clone, Debug)]
pub struct VariantRef {
    /// Enum name.
    pub enum_name: String,
    /// Variant name.
    pub variant: String,
}

/// A `match` classified as dispatching over a tracked enum.
#[derive(Clone, Debug)]
pub struct TrackedMatch {
    /// The tracked enum the arms dispatch over.
    pub enum_name: String,
    /// Line of the `match` keyword.
    pub line: u32,
    /// Column of the `match` keyword.
    pub col: u32,
    /// Variant names covered by the arm patterns.
    pub covered: Vec<String>,
}

/// Everything the surface pass extracts from one file.
#[derive(Clone, Debug, Default)]
pub struct FileSurface {
    /// Tracked-enum definitions (name, variant list with positions).
    pub enums: Vec<crate::parse::EnumDef>,
    /// Matches over tracked enums.
    pub matches: Vec<TrackedMatch>,
    /// Tracked `E::V` occurrences in expression position (constructions).
    pub constructions: Vec<VariantRef>,
    /// Tracked `E::V` occurrences in pattern position.
    pub pattern_refs: Vec<VariantRef>,
}

/// One tracked enum: where it is defined and who must handle it.
struct Tracked {
    name: &'static str,
    def_file: &'static str,
    /// Every variant must appear in some match/let pattern somewhere.
    require_match: bool,
    /// Files that must each contain a match covering *all* variants.
    consumers: &'static [&'static str],
}

/// The protocol surface. `Input`/`Effect` are the engine's host contract
/// (engine/io.rs), `Msg`/`MsgClass` the wire vocabulary (msg.rs), `Timer`
/// the scheduled-work vocabulary (node.rs), `TraceEvent` the observability
/// vocabulary (engine/trace.rs). Consumers: the engine step dispatcher
/// must handle every input, message, and timer; both effect hosts inside
/// coterie-core (`StepDriver` and the threaded adapter) must consume
/// every effect; `msg.rs` must classify every message; `TraceEvent::kind`
/// in trace.rs must tag every trace event (so adding a variant without a
/// rendering is a finding, and a variant no live protocol code emits is
/// dead). The simnet hosts drive these same consumer files, so they are
/// covered transitively.
const REGISTRY: &[Tracked] = &[
    Tracked {
        name: "Input",
        def_file: "crates/core/src/engine/io.rs",
        require_match: true,
        consumers: &["crates/core/src/engine/step.rs"],
    },
    Tracked {
        name: "Effect",
        def_file: "crates/core/src/engine/io.rs",
        require_match: true,
        consumers: &[
            "crates/core/src/engine/driver.rs",
            "crates/core/src/host.rs",
        ],
    },
    Tracked {
        name: "Msg",
        def_file: "crates/core/src/msg.rs",
        require_match: true,
        consumers: &["crates/core/src/engine/step.rs", "crates/core/src/msg.rs"],
    },
    Tracked {
        name: "MsgClass",
        def_file: "crates/core/src/msg.rs",
        require_match: false,
        consumers: &[],
    },
    Tracked {
        name: "Timer",
        def_file: "crates/core/src/node.rs",
        require_match: true,
        consumers: &["crates/core/src/engine/step.rs"],
    },
    Tracked {
        name: "TraceEvent",
        def_file: "crates/core/src/engine/trace.rs",
        require_match: true,
        consumers: &["crates/core/src/engine/trace.rs"],
    },
];

fn tracked_names() -> impl Iterator<Item = &'static str> {
    REGISTRY.iter().map(|t| t.name)
}

/// Raw finding tuple: (rule, message, line, col).
pub(crate) type Raw = (String, String, u32, u32);

/// Extracts the file's surface data and reports wildcard arms in tracked
/// matches. `live` masks out test-gated tokens (but — unlike the rules
/// mask — keeps `simnet-host`-gated code live: the threaded host adapter
/// is exactly the consumer this pass polices).
pub(crate) fn extract(
    rel: &str,
    toks: &[Token],
    skipped: &[bool],
    parsed: &Parsed,
) -> (FileSurface, Vec<Raw>) {
    let mut fs = FileSurface::default();
    let mut raw = Vec::new();

    // Definitions, from the registry's defining files only.
    for e in &parsed.enums {
        if skipped.get(e.tok).copied().unwrap_or(false) {
            continue;
        }
        let defines_here = REGISTRY
            .iter()
            .any(|t| t.name == e.name && t.def_file == rel);
        if defines_here {
            fs.enums.push(e.clone());
        }
    }

    // Variant references: `E :: V` with `E` tracked and `V` CamelCase.
    for (i, t) in toks.iter().enumerate() {
        if skipped[i] || t.kind != TokKind::Ident {
            continue;
        }
        if !tracked_names().any(|n| t.text == n) {
            continue;
        }
        // Skip path-qualified `foo::Effect::V`? No: the *variant* pair is
        // what matters, and `t` is the enum segment either way.
        let Some(v) = variant_after(toks, i) else {
            continue;
        };
        let r = VariantRef {
            enum_name: t.text.clone(),
            variant: v,
        };
        if parsed.pattern_mask.get(i).copied().unwrap_or(false) {
            fs.pattern_refs.push(r);
        } else {
            fs.constructions.push(r);
        }
    }

    // Matches over tracked enums + wildcard-arm findings.
    for m in &parsed.matches {
        if skipped.get(m.tok).copied().unwrap_or(false) {
            continue;
        }
        // Which tracked enum do the arm patterns name?
        let mut enum_name: Option<String> = None;
        let mut covered = Vec::new();
        let mut wildcards = Vec::new();
        for arm in &m.arms {
            if arm.wildcard {
                wildcards.push((arm.line, arm.col));
                continue;
            }
            for j in arm.pat.0..arm.pat.1 {
                let t = &toks[j];
                if t.kind != TokKind::Ident || !tracked_names().any(|n| t.text == n) {
                    continue;
                }
                let Some(v) = variant_after(toks, j) else {
                    continue;
                };
                match &enum_name {
                    None => enum_name = Some(t.text.clone()),
                    Some(e) if *e != t.text => continue, // mixed: keep first
                    _ => {}
                }
                if enum_name.as_deref() == Some(t.text.as_str()) && !covered.contains(&v) {
                    covered.push(v);
                }
            }
        }
        let Some(enum_name) = enum_name else {
            continue; // not a tracked match
        };
        for (line, col) in wildcards {
            raw.push((
                "surface".into(),
                format!(
                    "wildcard `_` arm in a `match` over protocol enum \
                     `{enum_name}`; a variant added later would be silently \
                     swallowed here — enumerate the remaining variants \
                     explicitly"
                ),
                line,
                col,
            ));
        }
        fs.matches.push(TrackedMatch {
            enum_name,
            line: m.line,
            col: m.col,
            covered,
        });
    }

    (fs, raw)
}

/// If `toks[i]` is followed by `::V` with `V` starting uppercase, returns
/// `V` (a variant or associated-item name; lowercase rules out method
/// paths like `Msg::class`).
fn variant_after(toks: &[Token], i: usize) -> Option<String> {
    if !toks.get(i + 1)?.is_punct(':') || !toks.get(i + 2)?.is_punct(':') {
        return None;
    }
    let v = toks.get(i + 3)?;
    if v.kind == TokKind::Ident
        && v.text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
    {
        return Some(v.text.clone());
    }
    None
}

/// The workspace pass: given every policed file's surface data (keyed by
/// workspace-relative path), returns findings as (file index, raw finding).
/// Registry entries whose defining file or enum is absent from the tree
/// are skipped, so the pass degrades gracefully on partial workspaces
/// (e.g. fixture mini-trees).
pub(crate) fn check_workspace(files: &[(String, &FileSurface)]) -> Vec<(usize, Raw)> {
    let mut out = Vec::new();
    for tracked in REGISTRY {
        let Some(def_idx) = files.iter().position(|(rel, _)| rel == tracked.def_file) else {
            continue;
        };
        let Some(def) = files[def_idx]
            .1
            .enums
            .iter()
            .find(|e| e.name == tracked.name)
        else {
            continue;
        };

        for v in &def.variants {
            let constructed = files.iter().any(|(_, fs)| {
                fs.constructions
                    .iter()
                    .any(|r| r.enum_name == tracked.name && r.variant == v.name)
            });
            if !constructed {
                out.push((
                    def_idx,
                    (
                        "surface".into(),
                        format!(
                            "dead protocol variant: `{}::{}` is never \
                             constructed by live protocol code",
                            tracked.name, v.name
                        ),
                        v.line,
                        v.col,
                    ),
                ));
            }
            if tracked.require_match {
                let matched = files.iter().any(|(_, fs)| {
                    fs.pattern_refs
                        .iter()
                        .any(|r| r.enum_name == tracked.name && r.variant == v.name)
                });
                if !matched {
                    out.push((
                        def_idx,
                        (
                            "surface".into(),
                            format!(
                                "`{}::{}` never appears in a match or let \
                                 pattern: no protocol path dispatches on it",
                                tracked.name, v.name
                            ),
                            v.line,
                            v.col,
                        ),
                    ));
                }
            }
        }

        for consumer in tracked.consumers {
            let Some(cons_idx) = files.iter().position(|(rel, _)| rel == *consumer) else {
                continue; // partial workspace
            };
            let fs = files[cons_idx].1;
            let matches: Vec<&TrackedMatch> = fs
                .matches
                .iter()
                .filter(|m| m.enum_name == tracked.name)
                .collect();
            let Some(first) = matches.first() else {
                out.push((
                    cons_idx,
                    (
                        "surface".into(),
                        format!(
                            "this file is a designated consumer of `{}` but \
                             contains no match over it",
                            tracked.name
                        ),
                        1,
                        1,
                    ),
                ));
                continue;
            };
            let anchor = (first.line, first.col);
            for v in &def.variants {
                let covered = matches.iter().any(|m| m.covered.contains(&v.name));
                if !covered {
                    out.push((
                        cons_idx,
                        (
                            "surface".into(),
                            format!(
                                "`{}::{}` is not handled by any match arm in \
                                 this consumer of `{}`",
                                tracked.name, v.name, tracked.name
                            ),
                            anchor.0,
                            anchor.1,
                        ),
                    ));
                }
            }
        }
    }
    out
}
