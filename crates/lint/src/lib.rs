//! `coterie-lint`: a self-hosted determinism & effect-discipline analyzer.
//!
//! The sans-I/O engine in `coterie-core` promises *same inputs ⇒ same
//! effects, byte-identical* — the property the interleaving explorer's
//! digest dedup, the crash-replay proptest, and the paper's
//! one-copy-serializability argument all depend on. This crate makes that
//! promise mechanically checkable: it tokenizes every workspace `*.rs`
//! file (no rustc, no syn — a hand-written lexer keeps the tool std-only
//! per the offline vendor policy) and enforces role-scoped rules:
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `determinism` | core engine/protocol modules | `HashMap`/`HashSet` state, `Instant`/`SystemTime`, `rand::`/`thread_rng`, `std::thread`, `println!`-family |
//! | `effects` | core + protocol libraries | naming `std::{fs,net,io,process}` or I/O types outside `engine/io.rs`, `host.rs`, host crates |
//! | `panic` | core, quorum, base, simnet | `.unwrap()`/`.expect()`/`panic!`-family without `// lint:allow(panic): reason` |
//! | `allow-hygiene` | everywhere a directive appears | reason-less or unused `lint:allow`, budget overruns |
//!
//! See DESIGN.md §8 for the full scoping model and suppression policy.

pub mod budget;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scan;

use diag::Finding;
use std::path::Path;

/// Outcome of a full workspace scan.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// All findings, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Number of files analyzed (role != NONE).
    pub files_scanned: usize,
}

/// Runs the lint over the workspace rooted at `root`.
pub fn run_workspace(root: &Path) -> std::io::Result<ScanOutcome> {
    let files = scan::collect_rs_files(root)?;
    let mut outcome = ScanOutcome::default();
    let mut allows_used: Vec<(String, u32)> = Vec::new();
    for (rel, path) in &files {
        let spec = scan::role_for(rel);
        if !spec.any() {
            continue;
        }
        let src = std::fs::read_to_string(path)?;
        let report = rules::analyze(rel, &src, spec);
        outcome.findings.extend(report.findings);
        allows_used.extend(report.allows_used);
        outcome.files_scanned += 1;
    }
    let budget_rel = "crates/lint/allow-budget.txt";
    let budget_text = std::fs::read_to_string(root.join(budget_rel)).unwrap_or_default();
    let budget = budget::parse_budget(&budget_text);
    outcome
        .findings
        .extend(budget::check_budget(&budget, &allows_used, budget_rel));
    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(outcome)
}
