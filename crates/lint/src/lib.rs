//! `coterie-lint`: a self-hosted determinism & protocol-surface analyzer.
//!
//! The sans-I/O engine in `coterie-core` promises *same inputs ⇒ same
//! effects, byte-identical* — the property the interleaving explorer's
//! digest dedup, the crash-replay proptest, and the paper's
//! one-copy-serializability argument all depend on. This crate makes that
//! promise mechanically checkable: it tokenizes every workspace `*.rs`
//! file (no rustc, no syn — a hand-written lexer plus an item-level parser
//! keep the tool std-only per the offline vendor policy) and enforces
//! role-scoped rules:
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `determinism` | core engine/protocol modules | `HashMap`/`HashSet` state, `Instant`/`SystemTime`, `rand::`/`thread_rng`, `std::thread`, `println!`-family |
//! | `effects` | core + protocol libraries | naming `std::{fs,net,io,process}` or I/O types outside `engine/io.rs`, `host.rs`, host crates |
//! | `panic` | core, quorum, base, simnet | `.unwrap()`/`.expect()`/`panic!`-family without `// lint:allow(panic): reason` |
//! | `surface` | core protocol + hosts | dead/unmatched `Input`/`Effect`/`Msg`/`MsgClass`/`Timer` variants, hosts missing effect arms, wildcard `_` arms over protocol enums |
//! | `lock` | core protocol modules | acquire paths that can leak the replica lock (no release/lease, leaky early returns, lease-less handoffs) |
//! | `arith` | engine/codec.rs, engine/storage.rs | narrowing `as` casts, unchecked length/offset arithmetic, non-literal indexing |
//! | `allow-hygiene` | everywhere a directive appears | reason-less or unused `lint:allow`, baseline-ratchet violations |
//!
//! See DESIGN.md §8 (determinism scoping) and §13 (protocol-surface
//! analysis, allow grammar, baseline ratchet) for the full model.

pub mod budget;
pub mod diag;
pub mod flow;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod scan;
pub mod surface;

use diag::Finding;
use std::path::Path;

/// Workspace-relative path of the ratcheted allow baseline.
pub const BASELINE_REL: &str = "crates/lint/baseline.json";

/// Outcome of a full workspace scan.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// All findings, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// Number of files analyzed (role != NONE).
    pub files_scanned: usize,
    /// Baseline diff rows: (rule, budgeted allows, used allows).
    pub baseline: Vec<(String, u32, u32)>,
}

/// Runs the lint over the workspace rooted at `root`.
///
/// Three stages: (1) every policed file runs its per-file passes
/// (D-rules, lock, arith, and surface extraction); (2) the workspace-level
/// surface matrix cross-references enum definitions, constructions, and
/// consumer coverage, injecting findings back into the owning files so
/// `lint:allow(surface)` directives apply; (3) directive hygiene settles
/// and the used-allow totals are ratcheted against `baseline.json`.
pub fn run_workspace(root: &Path) -> std::io::Result<ScanOutcome> {
    let files = scan::collect_rs_files(root)?;
    let mut analyses: Vec<rules::FileAnalysis> = Vec::new();
    for (rel, path) in &files {
        let spec = scan::role_for(rel);
        if !spec.any() {
            continue;
        }
        let src = std::fs::read_to_string(path)?;
        analyses.push(rules::analyze_file(rel, &src, spec));
    }

    let matrix = {
        let surfaces: Vec<(String, &surface::FileSurface)> = analyses
            .iter()
            .map(|a| (a.file.clone(), &a.surface))
            .collect();
        surface::check_workspace(&surfaces)
    };
    for (idx, raw) in matrix {
        analyses[idx].push_raw(vec![raw]);
    }

    let mut outcome = ScanOutcome::default();
    let mut allows_used: Vec<(String, u32)> = Vec::new();
    for mut a in analyses {
        a.finish();
        outcome.findings.extend(a.findings);
        allows_used.extend(a.allows_used);
        outcome.files_scanned += 1;
    }

    let baseline_text = std::fs::read_to_string(root.join(BASELINE_REL)).unwrap_or_default();
    let baseline = budget::parse_baseline(&baseline_text);
    let (rows, ratchet_findings) = budget::check_baseline(&baseline, &allows_used, BASELINE_REL);
    outcome.baseline = rows;
    outcome.findings.extend(ratchet_findings);
    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(outcome)
}
