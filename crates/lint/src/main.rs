//! CLI shell for `coterie-lint`.
//!
//! ```text
//! coterie-lint [--root DIR] [--deny] [--format human|json] [--report PATH]
//!              [--write-baseline] [--explain RULE]
//! ```
//!
//! * `--root DIR` — workspace root to scan (default: nearest ancestor of
//!   the current directory containing a root `Cargo.toml`, falling back
//!   to `.`).
//! * `--deny` — exit non-zero if any finding is produced (the tier-1 CI
//!   mode).
//! * `--format json` — print the machine-readable report to stdout
//!   instead of human diagnostics.
//! * `--report PATH` — additionally write the JSON report to `PATH`
//!   (used by tier1.sh to leave `target/lint-report.json` for diffing
//!   finding counts across PRs).
//! * `--write-baseline` — regenerate `crates/lint/baseline.json` from the
//!   scan's used-allow totals (the only sanctioned way to move the
//!   shrink-only ratchet).
//! * `--explain RULE` — print the rationale and a worked example for a
//!   rule family, then exit.

use coterie_lint::diag::render_json_report;
use std::path::PathBuf;
use std::process::ExitCode;

/// Rationale + example per rule family, shown by `--explain`.
const EXPLANATIONS: &[(&str, &str)] = &[
    (
        "determinism",
        "D1 — the engine must be a pure function of its Input stream.\n\
         HashMap/HashSet iteration order is seeded per process, Instant/\n\
         SystemTime read the wall clock, thread_rng draws ambient entropy:\n\
         each one smuggles a hidden input past `ReplicaNode::step`, breaking\n\
         replayability and the explorer's digest dedup.\n\n\
         finding:  let mut held: HashMap<OpId, Lease> = HashMap::new();\n\
         fix:      let mut held: BTreeMap<OpId, Lease> = BTreeMap::new();",
    ),
    (
        "effects",
        "D2 — protocol code describes I/O, it never performs it.\n\
         Naming std::{fs,net,io,process} (or File/TcpStream/...) outside the\n\
         host boundary means some replica behavior exists that the simnet\n\
         cannot schedule, fault-inject, or replay.\n\n\
         finding:  std::fs::write(path, bytes)?;\n\
         fix:      effects.push(Effect::Persist(Box::new(delta)));",
    ),
    (
        "panic",
        "D3 — a panic in one replica is a crash the protocol did not choose.\n\
         .unwrap()/.expect()/panic!-family in live protocol code must carry\n\
         `// lint:allow(panic): <invariant>` so every potential abort is an\n\
         argued invariant, and the total is budgeted in baseline.json.\n\n\
         finding:  let w = self.pending.get(&op).unwrap();\n\
         fix:      let Some(w) = self.pending.get(&op) else { return; };",
    ),
    (
        "surface",
        "P1 — the protocol surface must be total: every Input/Effect/Msg/\n\
         MsgClass/Timer variant constructed somewhere, dispatched on\n\
         somewhere, and consumed by every designated host file. A wildcard\n\
         `_` arm over a protocol enum silently swallows variants added\n\
         later — exactly the bug class that breaks one host out of three.\n\n\
         finding:  match effect { Effect::Send { .. } => ..., _ => {} }\n\
         fix:      enumerate the remaining variants explicitly:\n\
                   Effect::SetTimer { .. } | Effect::CancelTimer(_) | ... => {}",
    ),
    (
        "lock",
        "P2 — no-wait locking only stays deadlock- and leak-free if every\n\
         acquire is paired with a release, a handoff, or a lease fence on\n\
         every path. A refusal/early-return path that keeps the exclusive\n\
         lock wedges the replica until an operator intervenes.\n\n\
         finding:  self.vol.lock.force_exclusive(op);\n\
                   if self.busy { return; }        // leaks the lock\n\
         fix:      arm a fence first: self.arm_lock_lease(ctx, op);",
    ),
    (
        "arith",
        "P3 — engine/codec.rs and engine/storage.rs parse adversarial bytes\n\
         (torn writes, bit rot), so unchecked arithmetic is a remote panic\n\
         or a wraparound mis-parse. Narrowing `as` casts, raw +/-/* on\n\
         lengths/offsets, and non-literal indexing must use try_from,\n\
         checked_*/saturating_*, and .get(..) so corruption degrades to\n\
         Undecodable/Quarantined.\n\n\
         finding:  let end = self.pos + len;  let b = &buf[pos..end];\n\
         fix:      let end = self.pos.checked_add(len).ok_or(...)?;\n\
                   let b = buf.get(pos..end).ok_or(...)?;",
    ),
    (
        "allow-hygiene",
        "Meta — the escape hatch polices itself. Every `lint:allow` needs a\n\
         reason, unused directives are findings, and used totals must match\n\
         crates/lint/baseline.json exactly: over is a regression, under\n\
         means the baseline must shrink (regenerate via --write-baseline).",
    ),
];

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny = false;
    let mut json = false;
    let mut report_path: Option<PathBuf> = None;
    let mut write_baseline = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--deny" => deny = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("human") => json = false,
                other => {
                    eprintln!("coterie-lint: unknown --format {other:?} (want human|json)");
                    return ExitCode::from(2);
                }
            },
            "--report" => report_path = args.next().map(PathBuf::from),
            "--write-baseline" => write_baseline = true,
            "--explain" => {
                let Some(rule) = args.next() else {
                    eprintln!("coterie-lint: --explain needs a rule name (see --help)");
                    return ExitCode::from(2);
                };
                match EXPLANATIONS.iter().find(|(r, _)| *r == rule) {
                    Some((r, text)) => {
                        println!("{r}\n{}\n\n{text}", "=".repeat(r.len()));
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        let known: Vec<&str> = EXPLANATIONS.iter().map(|(r, _)| *r).collect();
                        eprintln!(
                            "coterie-lint: unknown rule {rule:?}; known rules: {}",
                            known.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "coterie-lint [--root DIR] [--deny] [--format human|json] \
                     [--report PATH] [--write-baseline] [--explain RULE]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("coterie-lint: unknown argument {other:?} (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let outcome = match coterie_lint::run_workspace(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("coterie-lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if write_baseline {
        // Start every family at zero so the regenerated file documents the
        // full rule set even when a family currently has no allows.
        let mut rules: Vec<(String, u32)> = EXPLANATIONS
            .iter()
            .filter(|(r, _)| *r != "allow-hygiene")
            .map(|(r, _)| (r.to_string(), 0))
            .collect();
        for (rule, _budgeted, used) in &outcome.baseline {
            match rules.iter_mut().find(|(r, _)| r == rule) {
                Some((_, n)) => *n = *used,
                None => rules.push((rule.clone(), *used)),
            }
        }
        let path = root.join(coterie_lint::BASELINE_REL);
        let text = coterie_lint::budget::render_baseline(&rules);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("coterie-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("coterie-lint: wrote {}", path.display());
    }

    let json_report =
        render_json_report(&outcome.findings, outcome.files_scanned, &outcome.baseline);
    if let Some(path) = &report_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, &json_report) {
            eprintln!("coterie-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        print!("{json_report}");
    } else {
        for f in &outcome.findings {
            print!("{}", f.render_human());
        }
        println!(
            "coterie-lint: {} finding(s) across {} policed file(s)",
            outcome.findings.len(),
            outcome.files_scanned
        );
    }

    if deny && !outcome.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Walks up from the current directory looking for a `Cargo.toml` that
/// declares `[workspace]`; falls back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
