//! CLI shell for `coterie-lint`.
//!
//! ```text
//! coterie-lint [--root DIR] [--deny] [--format human|json] [--report PATH]
//! ```
//!
//! * `--root DIR` — workspace root to scan (default: nearest ancestor of
//!   the current directory containing a root `Cargo.toml`, falling back
//!   to `.`).
//! * `--deny` — exit non-zero if any finding is produced (the tier-1 CI
//!   mode).
//! * `--format json` — print the machine-readable report to stdout
//!   instead of human diagnostics.
//! * `--report PATH` — additionally write the JSON report to `PATH`
//!   (used by tier1.sh to leave `target/lint-report.json` for diffing
//!   finding counts across PRs).

use coterie_lint::diag::render_json_report;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny = false;
    let mut json = false;
    let mut report_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--deny" => deny = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("human") => json = false,
                other => {
                    eprintln!("coterie-lint: unknown --format {other:?} (want human|json)");
                    return ExitCode::from(2);
                }
            },
            "--report" => report_path = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "coterie-lint [--root DIR] [--deny] [--format human|json] [--report PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("coterie-lint: unknown argument {other:?} (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(find_workspace_root);
    let outcome = match coterie_lint::run_workspace(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("coterie-lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let json_report = render_json_report(&outcome.findings, outcome.files_scanned);
    if let Some(path) = &report_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(path, &json_report) {
            eprintln!("coterie-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        print!("{json_report}");
    } else {
        for f in &outcome.findings {
            print!("{}", f.render_human());
        }
        println!(
            "coterie-lint: {} finding(s) across {} policed file(s)",
            outcome.findings.len(),
            outcome.files_scanned
        );
    }

    if deny && !outcome.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Walks up from the current directory looking for a `Cargo.toml` that
/// declares `[workspace]`; falls back to `.`.
fn find_workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
