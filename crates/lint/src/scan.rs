//! Workspace walking and role assignment.
//!
//! The role model mirrors DESIGN.md §8: the *engine* (coterie-core's
//! protocol modules) carries the full determinism contract; *protocol
//! libraries* (quorum, base) are pure but may use scoped parallelism for
//! offline analysis; *host crates* (simnet) own real time and threads but
//! still answer for panic hygiene; *tools* (harness, markov, bench, the
//! lint itself, examples) are unconstrained.

use crate::rules::RoleSpec;
use std::path::{Path, PathBuf};

/// The engine boundary files inside coterie-core that are allowed to name
/// host-facing I/O (D2-exempt). `host.rs` is additionally exempt from the
/// determinism rules: it *is* the host adapter, gated behind `simnet-host`.
const IO_BOUNDARY: &[&str] = &["crates/core/src/engine/io.rs"];
const HOST_BOUNDARY: &[&str] = &["crates/core/src/host.rs"];

/// The codec boundary: parses adversarial bytes, so the P3 arithmetic
/// rules apply on top of the full engine contract.
const CODEC_BOUNDARY: &[&str] = &[
    "crates/core/src/engine/codec.rs",
    "crates/core/src/engine/storage.rs",
];

/// Assigns the rule set for a workspace-relative, `/`-separated path.
/// Returns [`RoleSpec::NONE`] for files the lint does not police.
pub fn role_for(rel: &str) -> RoleSpec {
    // Test trees and lint fixtures are never policed by the workspace
    // scan (fixtures are analyzed explicitly by the self-test harness).
    if rel.contains("/tests/") || rel.contains("/fixtures/") || rel.contains("/benches/") {
        return RoleSpec::NONE;
    }
    if HOST_BOUNDARY.contains(&rel) {
        // The host adapter performs effects for the engine: exempt from
        // determinism and effect rules, still accountable for panics, and
        // a designated Effect consumer for the surface matrix.
        return RoleSpec {
            panic: true,
            surface: true,
            ..RoleSpec::NONE
        };
    }
    if IO_BOUNDARY.contains(&rel) {
        // Declares the Input/Effect vocabulary: may *name* I/O types,
        // must still be deterministic, and anchors the surface registry.
        return RoleSpec {
            determinism: true,
            panic: true,
            surface: true,
            ..RoleSpec::NONE
        };
    }
    if CODEC_BOUNDARY.contains(&rel) {
        // Full engine contract plus checked arithmetic: these two files
        // parse adversarial bytes and must never panic on them.
        return RoleSpec {
            determinism: true,
            effects: true,
            panic: true,
            surface: true,
            lock: true,
            arith: true,
        };
    }
    if rel.starts_with("crates/core/src/") {
        return RoleSpec {
            determinism: true,
            effects: true,
            panic: true,
            surface: true,
            lock: true,
            arith: false,
        };
    }
    if rel.starts_with("crates/quorum/src/") || rel.starts_with("crates/base/src/") {
        // Pure protocol libraries: no real I/O, panic-accountable.
        // `std::thread::scope` for offline availability sweeps is
        // deliberate, so the D1 set does not apply here. They sit below
        // the protocol surface, so the P-rules do not apply either.
        return RoleSpec {
            effects: true,
            panic: true,
            ..RoleSpec::NONE
        };
    }
    if rel.starts_with("crates/simnet/src/") {
        // Host crate: owns clocks, threads, and sockets-if-it-wants-them;
        // panics in the substrate still take down experiments. Its effect
        // consumption is delegated to coterie-core's host.rs / driver.rs,
        // which the surface matrix polices directly.
        return RoleSpec {
            panic: true,
            ..RoleSpec::NONE
        };
    }
    // harness, markov, bench, lint, examples, src (CLI shell): tools.
    RoleSpec::NONE
}

/// Recursively collects every `*.rs` file under `root`, skipping
/// `target/`, `vendor/`, `.git/`, and hidden directories. The result is
/// sorted by relative path so runs are deterministic.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || name == "target" || name == "vendor" {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_gets_all_rules() {
        let r = role_for("crates/core/src/node.rs");
        assert!(r.determinism && r.effects && r.panic);
        assert!(r.surface && r.lock && !r.arith);
    }

    #[test]
    fn codec_boundary_adds_arithmetic_rules() {
        for rel in [
            "crates/core/src/engine/codec.rs",
            "crates/core/src/engine/storage.rs",
        ] {
            let r = role_for(rel);
            assert!(r.arith, "{rel} must carry arith");
            assert!(r.determinism && r.effects && r.panic && r.surface && r.lock);
        }
    }

    #[test]
    fn io_boundary_may_name_io_but_stays_deterministic() {
        let r = role_for("crates/core/src/engine/io.rs");
        assert!(r.determinism && !r.effects && r.panic && r.surface);
    }

    #[test]
    fn host_adapter_answers_for_panics_and_surface() {
        let r = role_for("crates/core/src/host.rs");
        assert_eq!(
            r,
            RoleSpec {
                panic: true,
                surface: true,
                ..RoleSpec::NONE
            }
        );
    }

    #[test]
    fn quorum_is_effects_and_panic_scoped() {
        let r = role_for("crates/quorum/src/availability.rs");
        assert!(!r.determinism && r.effects && r.panic);
    }

    #[test]
    fn tests_and_tools_are_unpoliced() {
        assert_eq!(role_for("crates/core/tests/threaded.rs"), RoleSpec::NONE);
        assert_eq!(
            role_for("crates/lint/tests/fixtures/d1_hash.rs"),
            RoleSpec::NONE
        );
        assert_eq!(role_for("crates/harness/src/explore.rs"), RoleSpec::NONE);
        assert_eq!(role_for("examples/repl.rs"), RoleSpec::NONE);
    }

    #[test]
    fn simnet_is_panic_only() {
        let r = role_for("crates/simnet/src/threaded.rs");
        assert_eq!(
            r,
            RoleSpec {
                panic: true,
                ..RoleSpec::NONE
            }
        );
    }
}
