//! A minimal Rust lexer: just enough structure to tell code from
//! comments, strings, and char literals, with line/column positions.
//!
//! The analyzer never needs a parse tree — every rule is a pattern over a
//! handful of adjacent tokens — but it *must not* fire on the word
//! `HashMap` inside a doc comment or a string literal. The lexer therefore
//! separates the token stream (identifiers, punctuation, literals) from
//! the comment stream (which carries `lint:allow` directives).

/// What kind of token this is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `fn`, `r#async`, ...).
    Ident,
    /// A single punctuation character (`:`, `!`, `.`, `{`, ...).
    Punct,
    /// A string, char, byte, or numeric literal (contents opaque).
    Literal,
    /// A lifetime (`'a`); kept distinct so it is never mistaken for a
    /// char literal.
    Lifetime,
}

/// One token with its source position (1-based line and column).
#[derive(Clone, Debug)]
pub struct Token {
    /// Kind of the token.
    pub kind: TokKind,
    /// The token text. Plain `"..."` string literals keep their raw text
    /// (attribute scanning needs `cfg(feature = "...")` values); other
    /// literal kinds collapse to a placeholder — rules never inspect them.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl Token {
    /// True if this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment (line or block) with its position. `text` excludes the
/// delimiters for line comments and is the raw body for block comments.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment body (without the leading `//`).
    pub text: String,
    /// 1-based line of the comment's start.
    pub line: u32,
    /// True if no token precedes the comment on its own starting line
    /// (the comment "owns" the line).
    pub owns_line: bool,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub tokens: Vec<Token>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. The lexer is lossy about literal
/// *contents* (rules never look inside them) but exact about positions.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    let mut last_token_line: u32 = 0;

    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                // Line comment (incl. doc comments). Body runs to newline.
                let start = c.pos + 2;
                while c.peek().is_some_and(|b| b != b'\n') {
                    c.bump();
                }
                out.comments.push(Comment {
                    text: src[start..c.pos].to_string(),
                    line,
                    owns_line: last_token_line != line,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                // Block comment, nested.
                let start = c.pos + 2;
                c.bump();
                c.bump();
                let mut depth = 1usize;
                let mut end = c.pos;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            end = c.pos;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => {
                            end = c.pos;
                            break;
                        }
                    }
                }
                out.comments.push(Comment {
                    text: src[start..end].to_string(),
                    line,
                    owns_line: last_token_line != line,
                });
            }
            b'"' => {
                let start = c.pos;
                lex_string(&mut c);
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                });
                last_token_line = c.line;
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident with
                // no closing quote right after the identifier.
                let is_lifetime = c.peek_at(1).is_some_and(is_ident_start) && {
                    let mut off = 2;
                    while c.peek_at(off).is_some_and(is_ident_continue) {
                        off += 1;
                    }
                    c.peek_at(off) != Some(b'\'')
                };
                if is_lifetime {
                    c.bump(); // '
                    let start = c.pos;
                    while c.peek().is_some_and(is_ident_continue) {
                        c.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[start..c.pos].to_string(),
                        line,
                        col,
                    });
                } else {
                    c.bump(); // opening '
                    if c.peek() == Some(b'\\') {
                        c.bump();
                        c.bump(); // escaped char (\' \n \\ ...; \u{..} eats below)
                        while c.peek().is_some_and(|b| b != b'\'') {
                            c.bump();
                        }
                    } else {
                        c.bump(); // the char itself (multibyte: eat to quote)
                        while c.peek().is_some_and(|b| b != b'\'') {
                            c.bump();
                        }
                    }
                    c.bump(); // closing '
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        text: "''".to_string(),
                        line,
                        col,
                    });
                }
                last_token_line = line;
            }
            _ if is_ident_start(b) => {
                // Raw strings / byte strings first: r"..", r#".."#, b"..",
                // br#".."#, and raw identifiers r#ident.
                if let Some(consumed) = try_raw_or_byte_string(&mut c) {
                    if consumed {
                        out.tokens.push(Token {
                            kind: TokKind::Literal,
                            text: "\"\"".to_string(),
                            line,
                            col,
                        });
                        last_token_line = c.line;
                        continue;
                    }
                }
                let start = c.pos;
                // Raw identifier prefix.
                if b == b'r'
                    && c.peek_at(1) == Some(b'#')
                    && c.peek_at(2).is_some_and(is_ident_start)
                {
                    c.bump();
                    c.bump();
                }
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                let text = src[start..c.pos].trim_start_matches("r#").to_string();
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                    col,
                });
                last_token_line = line;
            }
            _ if b.is_ascii_digit() => {
                // Numeric literal: digits, underscores, type suffixes, a
                // fractional part only when followed by a digit (so `0..9`
                // stays two tokens and a range).
                while let Some(d) = c.peek() {
                    let continues = d.is_ascii_alphanumeric()
                        || d == b'_'
                        || (d == b'.' && c.peek_at(1).is_some_and(|n| n.is_ascii_digit()))
                        || ((d == b'+' || d == b'-')
                            && matches!(c.src.get(c.pos.wrapping_sub(1)), Some(b'e') | Some(b'E')));
                    if !continues {
                        break;
                    }
                    c.bump();
                }
                out.tokens.push(Token {
                    kind: TokKind::Literal,
                    text: "0".to_string(),
                    line,
                    col,
                });
                last_token_line = line;
            }
            _ => {
                c.bump();
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
                last_token_line = line;
            }
        }
    }
    out
}

/// Consumes a `"..."` string (cursor on the opening quote).
fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // opening "
    while let Some(b) = c.peek() {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'"' => {
                c.bump();
                return;
            }
            _ => {
                c.bump();
            }
        }
    }
}

/// If the cursor sits on a raw/byte string (`r"`, `r#"`, `b"`, `br#"`,
/// `c"` ...), consumes it and returns `Some(true)`. Returns `Some(false)`
/// if the prefix letters start a plain identifier. (Never returns `None`;
/// the `Option` keeps the call site symmetrical.)
fn try_raw_or_byte_string(c: &mut Cursor<'_>) -> Option<bool> {
    let b0 = c.peek()?;
    if !matches!(b0, b'r' | b'b' | b'c') {
        return Some(false);
    }
    // Determine prefix length: r | b | c | br | rb? (only br is legal).
    let mut off = 1;
    if b0 == b'b' && c.peek_at(1) == Some(b'r') {
        off = 2;
    }
    // Count hashes.
    let mut hashes = 0usize;
    while c.peek_at(off + hashes) == Some(b'#') {
        hashes += 1;
    }
    if c.peek_at(off + hashes) != Some(b'"') {
        return Some(false);
    }
    let raw = b0 == b'r' || (b0 == b'b' && off == 2);
    if !raw && hashes > 0 {
        return Some(false); // b#... is not a string
    }
    // Consume prefix, hashes, opening quote.
    for _ in 0..off + hashes + 1 {
        c.bump();
    }
    if raw {
        // Scan to `"` followed by `hashes` hashes, no escapes.
        'outer: while let Some(b) = c.peek() {
            if b == b'"' {
                let mut ok = true;
                for h in 0..hashes {
                    if c.peek_at(1 + h) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..1 + hashes {
                        c.bump();
                    }
                    break 'outer;
                }
            }
            c.bump();
        }
    } else {
        // Cooked byte/C string with escapes: we already ate the quote.
        while let Some(b) = c.peek() {
            match b {
                b'\\' => {
                    c.bump();
                    c.bump();
                }
                b'"' => {
                    c.bump();
                    break;
                }
                _ => {
                    c.bump();
                }
            }
        }
    }
    Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_positions() {
        let l = lex("use std::collections::HashMap;\nfn main() {}\n");
        let hm = l.tokens.iter().find(|t| t.is_ident("HashMap")).unwrap();
        assert_eq!((hm.line, hm.col), (1, 23));
        let f = l.tokens.iter().find(|t| t.is_ident("fn")).unwrap();
        assert_eq!(f.line, 2);
    }

    #[test]
    fn strings_and_comments_hide_words() {
        let src = r##"
// HashMap in a comment
/* Instant::now() in a block /* nested */ comment */
let s = "HashMap::new()";
let r = r#"SystemTime "quoted" inside"#;
let b = b"unwrap()";
"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(!ids.iter().any(|i| i == "SystemTime"));
        assert!(!ids.iter().any(|i| i == "unwrap"));
        let l = lex(src);
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].text.contains("HashMap"));
        assert!(l.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(l.tokens.iter().any(|t| t.kind == TokKind::Literal));
    }

    #[test]
    fn escaped_char_literal_does_not_derail() {
        let l = lex(r"let c = '\n'; let d = '\''; let e = '\u{1F600}'; HashMap");
        assert!(l.tokens.iter().any(|t| t.is_ident("HashMap")));
    }

    #[test]
    fn trailing_vs_owning_comments() {
        let l = lex("let x = 1; // trailing\n// owning\nlet y = 2;\n");
        assert!(!l.comments[0].owns_line);
        assert!(l.comments[1].owns_line);
    }

    #[test]
    fn numeric_ranges_stay_ranges() {
        let l = lex("for i in 0..10 { }");
        let dots = l.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn raw_identifiers() {
        let ids = idents("let r#async = 1;");
        assert!(ids.iter().any(|i| i == "async"));
    }
}
