// Fixture: D2 effect discipline — naming real I/O outside the host boundary.
use std::fs;
use std::net::TcpListener;

pub fn persist(data: &[u8]) {
    fs::write("/tmp/replica.bin", data).ok();
    let _sock = TcpListener::bind("127.0.0.1:0");
    let _f: Option<File> = None;
}
