// Fixture: D1 determinism — ambient randomness, threads, printing.
pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    std::thread::spawn(|| {});
    println!("rolling");
    eprintln!("still rolling");
    rng.gen()
}
