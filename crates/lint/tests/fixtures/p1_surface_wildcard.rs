// Fixture: P1 positive — a wildcard `_` arm in a match whose other arms
// name a tracked protocol enum swallows future variants silently.
pub fn apply(effect: Effect) {
    match effect {
        Effect::Send { to, msg } => deliver(to, msg),
        Effect::Persist(delta) => journal(delta),
        _ => {}
    }
}

pub fn classify(input: &Input) -> u8 {
    match input {
        Input::Boot => 0,
        Input::Crash => 1,
        _ => 2,
    }
}
