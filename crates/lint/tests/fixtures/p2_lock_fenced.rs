// Fixture: P2 negative — acquires that pair with a release, a lease
// fence, or a guarded handoff on every path.
impl Replica {
    // Conditional try-acquire (the no-wait refusal path never holds the
    // lock), lease armed before any early return, release at the end.
    pub fn acquire_fenced(&mut self, ctx: &mut Ctx, op: OpId) {
        if !self.vol.lock.try_exclusive(op) {
            return;
        }
        self.arm_lock_lease(ctx, op);
        if self.busy {
            return;
        }
        self.vol.lock.release(op);
    }

    // A handoff under an armed lease is the PR-6 pipelined pattern.
    pub fn leased_handoff(&mut self, ctx: &mut Ctx, op: OpId, to: NodeId) {
        self.arm_lock_lease(ctx, op);
        self.vol.lock.transfer_exclusive(op, to);
    }

    // Shared acquire, released on both paths.
    pub fn read_locked(&mut self, op: OpId) -> bool {
        if !self.vol.lock.try_shared(op) {
            return false;
        }
        let ok = self.vol.ready;
        self.vol.lock.release(op);
        ok
    }
}
