// Fixture: P3 negative — the checked forms of the same parsing code.
pub fn parse_record(buf: &[u8], pos: usize, len: usize) -> Option<u8> {
    let end = pos.checked_add(len)?;
    let tag = *buf.get(pos)?;
    let short = u32::try_from(len).ok()?;
    let window = buf.get(pos..end)?;
    let tail = u8::try_from(window.len().saturating_sub(1)).unwrap_or(0);
    Some(tag ^ tail ^ u8::try_from(short % 251).unwrap_or(0))
}
