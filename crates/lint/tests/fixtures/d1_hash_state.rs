// Fixture: D1 determinism — randomly seeded collections as protocol state.
use std::collections::HashMap;
use std::collections::HashSet;

pub struct State {
    pub decisions: HashMap<u64, bool>,
    pub armed: HashSet<u64>,
}
