// Fixture: P3 positives — unchecked arithmetic in byte-parsing code.
pub fn parse_record(buf: &[u8], pos: usize, len: usize) -> u8 {
    // Raw add on an offset and a length: wraps on corrupt input.
    let end = pos + len;
    // Non-literal indexing: panics instead of degrading to Undecodable.
    let tag = buf[pos];
    // Narrowing cast: a 33-bit length silently becomes a small u32.
    let short = len as u32;
    let window = &buf[pos..end];
    tag ^ (short as u8) ^ window.len() as u8
}
