// Fixture: lint:allow suppression semantics.
pub fn suppressed(x: Option<u8>) -> u8 {
    // A trailing directive suppresses its own line.
    let a = x.unwrap(); // lint:allow(panic): fixture demonstrates trailing form
    // An owning-line directive suppresses the next code line.
    // lint:allow(panic): fixture demonstrates owning-line form
    let b = x.expect("also fine");
    // A reason-less directive suppresses but is flagged itself.
    let c = x.unwrap(); // lint:allow(panic)
    // An unused directive (nothing fires on the next line) is a finding.
    // lint:allow(determinism): stale — nothing here uses a hash map
    let d = a + b;
    c + d
}
