// Fixture: near-misses that must NOT fire.
// Words in comments never count: HashMap, Instant::now, unwrap(), panic!.
pub fn clean(x: Option<u8>) -> u8 {
    // Combinators that merely contain forbidden substrings.
    let a = x.unwrap_or(0);
    let b = x.unwrap_or_else(|| 1);
    // Forbidden names inside string literals are data, not code.
    let s = "HashMap and Instant::now and thread_rng live here";
    let r = r#"panic! inside a raw string"#;
    // A lifetime is not a char literal; expect no lexer derailment.
    fn idref<'a>(v: &'a str) -> &'a str {
        v
    }
    // `random` and `operand` contain "rand" but are plain identifiers;
    // a bare `rand` ident without :: is not a crate path either.
    let operand = 2u8;
    let rand = operand;
    // Method names on other types: expecting is not .expect(.
    let expectation = s.len() + r.len();
    a + b + idref("z").len() as u8 + rand + expectation as u8
}
