// Fixture: near-misses that must NOT fire.
// Words in comments never count: HashMap, Instant::now, unwrap(), panic!.
pub fn clean(x: Option<u8>) -> u8 {
    // Combinators that merely contain forbidden substrings.
    let a = x.unwrap_or(0);
    let b = x.unwrap_or_else(|| 1);
    // Forbidden names inside string literals are data, not code.
    let s = "HashMap and Instant::now and thread_rng live here";
    let r = r#"panic! inside a raw string"#;
    // A lifetime is not a char literal; expect no lexer derailment.
    fn idref<'a>(v: &'a str) -> &'a str {
        v
    }
    // `random` and `operand` contain "rand" but are plain identifiers;
    // a bare `rand` ident without :: is not a crate path either.
    let operand = 2u8;
    let rand = operand;
    // Method names on other types: expecting is not .expect(.
    let expectation = u8::from(s.contains("expect"));
    // P3 near-misses: widening casts, checked/saturating length math,
    // literal indexing, and compound assignment are the checked forms
    // the arith rule asks for.
    let wide = operand as u64;
    let total = s.len().saturating_add(r.len()).min(idref("z").len());
    let first = [a, b][0];
    let mut acc = a;
    acc += b;
    let _ = (wide, total);
    acc.wrapping_add(first)
        .wrapping_add(rand)
        .wrapping_add(expectation)
}
