// Mini-tree fixture: `Ghost` is dead (never constructed), never matched,
// and missing from both designated consumers.
pub enum Effect {
    Send { to: NodeId, msg: Msg },
    Persist(Box<DurableDelta>),
    Ghost(u8),
}
