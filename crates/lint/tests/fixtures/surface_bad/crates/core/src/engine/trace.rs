// Mini-tree fixture: `TraceEvent` is its own designated consumer (the
// `kind` match); `Phantom` is dead, never matched, and missing from it.
pub enum TraceEvent {
    MsgSend { to: NodeId },
    LockRelease { op: OpId },
    Phantom,
}

pub fn emit(to: NodeId, op: OpId) -> Vec<TraceEvent> {
    vec![TraceEvent::MsgSend { to }, TraceEvent::LockRelease { op }]
}

impl TraceEvent {
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MsgSend { .. } => "msg_send",
            TraceEvent::LockRelease { .. } => "lock_release",
        }
    }
}
