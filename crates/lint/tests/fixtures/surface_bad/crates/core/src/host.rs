// Mini-tree fixture: a designated `Effect` consumer with no match at all.
pub fn run(queue: Vec<Effect>) {
    for _effect in queue {
        log("dropped an effect on the floor");
    }
}
