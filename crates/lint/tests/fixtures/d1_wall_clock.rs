// Fixture: D1 determinism — wall-clock reads in engine code.
use std::time::Instant;

pub fn elapsed() -> u64 {
    let start = Instant::now();
    let _ = std::time::SystemTime::now();
    start.elapsed().as_millis() as u64
}
