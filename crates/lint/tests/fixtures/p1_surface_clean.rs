// Fixture: P1 negative — exhaustive matches over tracked enums (no `_`),
// and wildcard arms over *untracked* enums, are both fine.
pub fn apply(effect: Effect) {
    match effect {
        Effect::Send { to, msg } => deliver(to, msg),
        Effect::SetTimer { id, delay, timer } => arm(id, delay, timer),
        Effect::CancelTimer(id) => disarm(id),
        Effect::Persist(delta) => journal(delta),
        Effect::Output(ev) => surface(ev),
    }
}

pub fn local_dispatch(v: Verdict) -> bool {
    // `Verdict` is not part of the protocol surface; a wildcard here is
    // ordinary Rust, not a finding.
    match v {
        Verdict::Accept => true,
        _ => false,
    }
}
