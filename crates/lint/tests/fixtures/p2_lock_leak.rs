// Fixture: P2 positives — lock acquires that can leak.
impl Replica {
    // lock-1: the acquire has no paired release/handoff/lease anywhere
    // in the function body.
    pub fn grab_and_forget(&mut self, op: OpId) {
        self.vol.lock.force_exclusive(op);
        self.vol.dirty = true;
    }

    // lock-3: unconditional acquire, then an early return on the refusal
    // path before the release — the exclusive lock stays wedged.
    pub fn refuse_leaks(&mut self, op: OpId) {
        self.vol.lock.force_exclusive(op);
        if self.busy {
            return;
        }
        self.vol.lock.release(op);
    }

    // lock-2: an exclusive handoff with no lease fence in sight; if the
    // transferee dies mid-flight nobody reclaims the lock.
    pub fn bare_handoff(&mut self, op: OpId, to: NodeId) {
        self.vol.lock.transfer_exclusive(op, to);
    }
}
