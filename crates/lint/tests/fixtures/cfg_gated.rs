// Fixture: cfg-gated items are host/test territory where rules relax.
#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn t() {
        let m: HashMap<u8, u8> = HashMap::new();
        assert!(m.get(&0).is_none());
        None::<u8>.unwrap_err_does_not_exist();
        let _ = None::<u8>.unwrap();
    }
}

#[cfg(feature = "simnet-host")]
pub mod host {
    use std::net::TcpStream;
    pub fn dial() {
        let _ = TcpStream::connect("127.0.0.1:1");
        let _ = std::time::Instant::now();
    }
}

#[cfg(any(test, feature = "simnet-host"))]
pub fn helper(x: Option<u8>) -> u8 {
    x.unwrap()
}

// `cfg(not(test))` is live code: rules apply.
#[cfg(not(test))]
pub fn live(x: Option<u8>) -> u8 {
    x.unwrap()
}
