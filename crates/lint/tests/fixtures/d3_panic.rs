// Fixture: D3 panic hygiene — unannotated panics in protocol code.
pub fn decide(x: Option<u8>, y: Result<u8, ()>) -> u8 {
    let a = x.unwrap();
    let b = y.expect("present");
    if a > b {
        panic!("inverted");
    }
    match a {
        0 => unreachable!(),
        1 => todo!(),
        _ => a + b,
    }
}
