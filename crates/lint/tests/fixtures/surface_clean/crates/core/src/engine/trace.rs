// Mini-tree fixture: `TraceEvent` with full coverage — every variant is
// constructed by live code and rendered by the `kind` match.
pub enum TraceEvent {
    MsgSend { to: NodeId },
    LockRelease { op: OpId },
}

pub fn emit(to: NodeId, op: OpId) -> Vec<TraceEvent> {
    vec![TraceEvent::MsgSend { to }, TraceEvent::LockRelease { op }]
}

impl TraceEvent {
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MsgSend { .. } => "msg_send",
            TraceEvent::LockRelease { .. } => "lock_release",
        }
    }
}
