// Mini-tree fixture: exhaustive consumer.
pub fn emit(to: NodeId, msg: Msg, delta: Box<DurableDelta>) -> Vec<Effect> {
    vec![Effect::Send { to, msg }, Effect::Persist(delta)]
}

pub fn consume(effect: Effect) {
    match effect {
        Effect::Send { to, msg } => deliver(to, msg),
        Effect::Persist(delta) => journal(delta),
    }
}
