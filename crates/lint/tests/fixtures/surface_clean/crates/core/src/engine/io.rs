// Mini-tree fixture: every variant constructed, matched, and consumed.
pub enum Effect {
    Send { to: NodeId, msg: Msg },
    Persist(Box<DurableDelta>),
}
