// Mini-tree fixture: exhaustive threaded-host consumer.
pub fn run(queue: Vec<Effect>) {
    for effect in queue {
        match effect {
            Effect::Send { to, msg } => deliver(to, msg),
            Effect::Persist(delta) => journal(delta),
        }
    }
}
