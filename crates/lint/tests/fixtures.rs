//! Fixture corpus self-test: every `tests/fixtures/*.rs` file is analyzed
//! under the full rule set and the findings must match its `.expected`
//! golden file (one `rule:line:col` per line, sorted by position).
//!
//! To update a golden after an intentional rule change, run with
//! `BLESS_LINT_FIXTURES=1` and review the diff.

use coterie_lint::rules::{analyze, RoleSpec};
use std::path::{Path, PathBuf};

const ALL: RoleSpec = RoleSpec {
    determinism: true,
    effects: true,
    panic: true,
    surface: true,
    lock: true,
    arith: true,
};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn findings_summary(src: &str) -> String {
    analyze("fixture.rs", src, ALL)
        .findings
        .iter()
        .map(|f| format!("{}:{}:{}\n", f.rule, f.line, f.col))
        .collect()
}

#[test]
fn fixtures_match_goldens() {
    let dir = fixtures_dir();
    let mut cases: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("fixtures dir")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            (p.extension().is_some_and(|x| x == "rs")).then_some(p)
        })
        .collect();
    cases.sort();
    assert!(cases.len() >= 13, "fixture corpus shrank: {cases:?}");

    let bless = std::env::var_os("BLESS_LINT_FIXTURES").is_some();
    let mut failures = Vec::new();
    for case in &cases {
        let src = std::fs::read_to_string(case).expect("read fixture");
        let got = findings_summary(&src);
        let golden_path = case.with_extension("expected");
        if bless {
            std::fs::write(&golden_path, &got).expect("bless golden");
            continue;
        }
        let want = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|_| panic!("missing golden {}", golden_path.display()));
        if got != want {
            failures.push(format!(
                "== {} ==\n-- expected --\n{want}-- got --\n{got}",
                case.file_name().unwrap().to_string_lossy()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "fixture findings diverged from goldens:\n{}",
        failures.join("\n")
    );
}

/// Violating fixtures must each produce at least one finding; the
/// clean-by-design cases (one negative per rule family) must stay empty.
#[test]
fn violation_fixtures_are_nonempty() {
    for name in [
        "d1_hash_state.rs",
        "d1_wall_clock.rs",
        "d1_ambient.rs",
        "d2_io.rs",
        "d3_panic.rs",
        "suppression.rs",
        "p1_surface_wildcard.rs",
        "p2_lock_leak.rs",
        "p3_arith_unchecked.rs",
    ] {
        let src = std::fs::read_to_string(fixtures_dir().join(name)).expect("fixture");
        assert!(
            !findings_summary(&src).is_empty(),
            "{name} unexpectedly clean"
        );
    }
    for name in [
        "false_positive.rs",
        "p1_surface_clean.rs",
        "p2_lock_fenced.rs",
        "p3_arith_checked.rs",
    ] {
        let src = std::fs::read_to_string(fixtures_dir().join(name)).expect("fixture");
        assert!(
            findings_summary(&src).is_empty(),
            "{name} fired false positives: {}",
            findings_summary(&src)
        );
    }
}
