//! Workspace-level surface-matrix tests over checked-in mini-trees.
//!
//! `tests/fixtures/surface_bad/` plants one defect of each matrix kind
//! around two tracked enums — `Effect` with an extra `Ghost` variant (a
//! dead variant, a never-matched variant, a consumer missing an arm, and
//! a consumer with no match at all) and `TraceEvent` with an extra
//! `Phantom` variant (dead, never matched, and missing from its own
//! `kind` match — trace.rs is its own designated consumer).
//! `surface_clean/` is the same tree with the defects removed. The
//! registry degrades gracefully on these partial workspaces (absent enums
//! are skipped), so only `Effect` and `TraceEvent` rules fire.

use coterie_lint::run_workspace;
use std::path::{Path, PathBuf};

fn tree(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn surface_matrix_reports_exact_positions() {
    let outcome = run_workspace(&tree("surface_bad")).expect("scan mini-tree");
    let got: Vec<String> = outcome
        .findings
        .iter()
        .map(|f| format!("{}:{}:{}:{}", f.rule, f.file, f.line, f.col))
        .collect();
    let want = vec![
        // Consumer match misses `Ghost`: anchored at its first Effect match.
        "surface:crates/core/src/engine/driver.rs:7:5".to_string(),
        // `Ghost` is never constructed and never pattern-matched: both
        // anchored at the variant's definition.
        "surface:crates/core/src/engine/io.rs:6:5".to_string(),
        "surface:crates/core/src/engine/io.rs:6:5".to_string(),
        // `Phantom` is dead and never matched (anchored at its def), and
        // trace.rs's own `kind` match misses it (anchored at the match).
        "surface:crates/core/src/engine/trace.rs:6:5".to_string(),
        "surface:crates/core/src/engine/trace.rs:6:5".to_string(),
        "surface:crates/core/src/engine/trace.rs:15:9".to_string(),
        // Designated consumer with no match over `Effect` at all.
        "surface:crates/core/src/host.rs:1:1".to_string(),
    ];
    assert_eq!(got, want, "findings: {:#?}", outcome.findings);
}

#[test]
fn surface_matrix_clean_tree_is_clean() {
    let outcome = run_workspace(&tree("surface_clean")).expect("scan mini-tree");
    assert!(
        outcome.findings.is_empty(),
        "clean mini-tree fired: {:#?}",
        outcome.findings
    );
}
