//! End-to-end CLI tests: `--deny` exit codes and the `--report` JSON file,
//! exercised against synthetic mini-workspaces built in a temp directory.

use std::path::{Path, PathBuf};
use std::process::Command;

fn lint_bin() -> &'static str {
    env!("CARGO_BIN_EXE_coterie-lint")
}

/// Builds a throwaway workspace root containing one engine-role file.
fn mini_workspace(tag: &str, engine_src: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("coterie-lint-cli-{tag}-{}", std::process::id()));
    let src_dir = root.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("manifest");
    std::fs::write(src_dir.join("node.rs"), engine_src).expect("engine file");
    root
}

fn run_lint(root: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(lint_bin())
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("run coterie-lint")
}

#[test]
fn deny_exits_nonzero_on_violation() {
    let root = mini_workspace("bad", "use std::collections::HashMap;\n");
    let out = run_lint(&root, &["--deny"]);
    assert!(
        !out.status.success(),
        "--deny must fail on a HashMap in engine code"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("error[determinism]"), "got: {text}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn deny_exits_zero_on_clean_tree() {
    let root = mini_workspace("good", "pub fn nothing_to_see() {}\n");
    let out = run_lint(&root, &["--deny"]);
    assert!(
        out.status.success(),
        "--deny failed on a clean tree: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn report_writes_machine_readable_json() {
    let root = mini_workspace(
        "json",
        "pub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
    );
    let report = root.join("target/lint-report.json");
    let out = run_lint(
        &root,
        &[
            "--format",
            "json",
            "--report",
            report.to_str().expect("utf8 path"),
        ],
    );
    assert!(
        out.status.success(),
        "without --deny, findings still exit 0"
    );
    let on_disk = std::fs::read_to_string(&report).expect("report file");
    let on_stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(on_disk, on_stdout, "--report and stdout JSON must match");
    assert!(on_disk.contains("\"rule\":\"panic\""), "got: {on_disk}");
    assert!(on_disk.contains("\"line\":2"), "got: {on_disk}");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn workspace_scan_is_clean_under_deny() {
    // The real repository must stay lint-clean: this is the same gate
    // tier1.sh runs, kept here so `cargo test -p coterie-lint` alone
    // catches regressions.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let out = run_lint(&repo_root, &["--deny"]);
    assert!(
        out.status.success(),
        "workspace has lint findings:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
