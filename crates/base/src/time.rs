//! Virtual time for the discrete-event simulator.
//!
//! Time is measured in integer microseconds, which keeps event ordering
//! exact (no floating-point ties) and spans ~584k years of simulated time
//! in a `u64` — ample for the availability experiments, which simulate
//! years of failure/repair activity.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant of virtual time, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since simulation start.
    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Virtual seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds (rounds to microseconds).
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        assert!(s >= 0.0 && s.is_finite(), "duration must be non-negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Microseconds in this duration.
    #[inline]
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds in this duration.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.micros(), 5_000);
        let t2 = t + SimDuration::from_secs(1);
        assert_eq!((t2 - t).micros(), 1_000_000);
        assert_eq!(t2.since(t).micros(), 1_000_000);
        assert_eq!(t.since(t2), SimDuration::ZERO);
        assert_eq!((SimDuration::from_micros(10) * 3).micros(), 30);
        assert_eq!((SimDuration::from_micros(10) / 4).micros(), 2);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs_f64(1.5).micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(0.0).micros(), 0);
        assert!((SimTime(2_500_000).as_secs_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_rejected() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
