//! # coterie-base
//!
//! Substrate-free vocabulary shared by the sans-I/O protocol engine
//! ([`coterie-core`]'s `engine` layer) and every host that drives it (the
//! discrete-event simulator, the threaded runtime, the step driver).
//!
//! The engine never reads a clock: hosts *tell* it the time with every
//! input, and it hands timer requests back as effects. These newtypes are
//! the currency of that contract, so they live below both the engine and
//! the hosts — this crate depends on nothing.
//!
//! [`coterie-core`]: ../coterie_core/index.html

pub mod time;

pub use time::{SimDuration, SimTime};

/// Identifier of a pending timer.
///
/// The sans-I/O engine allocates these from a per-node monotonic counter,
/// so an id is unique *per node*; hosts that multiplex many nodes must key
/// cancellation state by `(node, id)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);
