//! Property-based tests: every shipped coterie rule must satisfy the
//! intersection and monotonicity properties the paper's correctness proof
//! (§4.4) relies on, for arbitrary views — including views with sparse,
//! non-contiguous node names, as arise after epoch changes.

use coterie_quorum::{
    CoterieRule, GridCoterie, GridShape, MajorityCoterie, NodeId, NodeSet, QuorumKind, RowaCoterie,
    TreeCoterie, View, VotingCoterie, WeightedCoterie, WriteSize,
};
use proptest::prelude::*;

fn rules() -> Vec<Box<dyn CoterieRule>> {
    vec![
        Box::new(GridCoterie::new()),
        Box::new(GridCoterie::tall()),
        Box::new(MajorityCoterie::new()),
        Box::new(VotingCoterie::with_write_size(WriteSize::Percent(70))),
        Box::new(TreeCoterie::new()),
        Box::new(RowaCoterie::new()),
        Box::new(WeightedCoterie::new([(NodeId(0), 3), (NodeId(5), 2)])),
    ]
}

/// Strategy: a view of 1..=12 nodes with names drawn from 0..40.
fn view_strategy() -> impl Strategy<Value = View> {
    proptest::collection::btree_set(0u32..40, 1..=12)
        .prop_map(|names| View::new(names.into_iter().map(NodeId)))
}

/// Strategy: a subset mask over the view positions.
fn subset_of(view: &View) -> NodeSet {
    view.set()
}

fn subset_from_mask(view: &View, mask: u32) -> NodeSet {
    let mut s = NodeSet::new();
    for (i, &n) in view.members().iter().enumerate() {
        if mask & (1 << i) != 0 {
            s.insert(n);
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any two subsets that each include a write quorum must intersect, and
    /// a read-quorum-including subset must intersect every write-quorum-
    /// including subset.
    #[test]
    fn intersection_property(view in view_strategy(), a in any::<u32>(), b in any::<u32>()) {
        for rule in rules() {
            let sa = subset_from_mask(&view, a);
            let sb = subset_from_mask(&view, b);
            if rule.is_write_quorum(&view, sa) && rule.is_write_quorum(&view, sb) {
                prop_assert!(sa.intersects(sb),
                    "{}: disjoint write quorums over {view:?}: {sa:?} / {sb:?}", rule.name());
            }
            if rule.is_read_quorum(&view, sa) && rule.is_write_quorum(&view, sb) {
                prop_assert!(sa.intersects(sb),
                    "{}: read quorum disjoint from write quorum over {view:?}", rule.name());
            }
        }
    }

    /// Supersets of quorums are quorums (the predicate is monotone).
    #[test]
    fn monotonicity(view in view_strategy(), mask in any::<u32>(), extra in 0u32..40) {
        for rule in rules() {
            let s = subset_from_mask(&view, mask);
            let mut bigger = s;
            bigger.insert(NodeId(extra));
            for kind in [QuorumKind::Read, QuorumKind::Write] {
                if rule.includes_quorum(&view, s, kind) {
                    prop_assert!(rule.includes_quorum(&view, bigger, kind),
                        "{}: adding a node destroyed a quorum", rule.name());
                }
            }
        }
    }

    /// The whole view is always a quorum of both kinds; the empty set never is.
    #[test]
    fn extremes(view in view_strategy()) {
        for rule in rules() {
            for kind in [QuorumKind::Read, QuorumKind::Write] {
                prop_assert!(rule.includes_quorum(&view, subset_of(&view), kind),
                    "{}: full view is not a quorum of {view:?}", rule.name());
                prop_assert!(!rule.includes_quorum(&view, NodeSet::EMPTY, kind),
                    "{}: empty set is a quorum", rule.name());
            }
        }
    }

    /// A write quorum is always also a read quorum for the shipped rules
    /// (the paper defines write quorums as "some read quorum plus ..." for
    /// the grid; voting thresholds satisfy w >= r).
    #[test]
    fn write_implies_read(view in view_strategy(), mask in any::<u32>()) {
        for rule in rules() {
            let s = subset_from_mask(&view, mask);
            if rule.is_write_quorum(&view, s) {
                prop_assert!(rule.is_read_quorum(&view, s),
                    "{}: write quorum that is not a read quorum", rule.name());
            }
        }
    }

    /// pick_quorum output always satisfies the predicate, stays within the
    /// preferred set, and respects the view.
    #[test]
    fn pick_quorum_sound(view in view_strategy(), prefer_mask in any::<u32>(), seed in any::<u64>()) {
        for rule in rules() {
            let prefer = subset_from_mask(&view, prefer_mask);
            for kind in [QuorumKind::Read, QuorumKind::Write] {
                if let Some(q) = rule.pick_quorum(&view, prefer, seed, kind) {
                    prop_assert!(rule.includes_quorum(&view, q, kind),
                        "{}: picked non-quorum", rule.name());
                    prop_assert!(q.is_subset_of(prefer.intersection(view.set())),
                        "{}: pick left the preferred set", rule.name());
                }
                // Full preference must always succeed (the full view is a quorum).
                let q = rule.pick_quorum(&view, view.set(), seed, kind);
                prop_assert!(q.is_some(), "{}: cannot pick from full view", rule.name());
            }
        }
    }

    /// DefineGrid invariants for arbitrary N, plus placement bijectivity.
    #[test]
    fn grid_shape_invariants(n_nodes in 1usize..=512) {
        let g = GridShape::define(n_nodes);
        prop_assert!(g.m * g.n >= n_nodes);
        prop_assert!(g.b < g.n);
        prop_assert!(g.m.abs_diff(g.n) <= 1);
        prop_assert_eq!(g.occupied(), n_nodes);
        let mut seen = std::collections::BTreeSet::new();
        for k in 1..=n_nodes {
            let (i, j) = g.position(k);
            prop_assert!(seen.insert((i, j)), "position collision at k={}", k);
            prop_assert_eq!(g.ordered_number_at(i, j), Some(k));
        }
    }

    /// The epoch-change precondition of the dynamic protocol: removing a
    /// single node from a view of >= 4 nodes leaves a write quorum for the
    /// majority rule (this is what makes dynamic voting shrink gracefully).
    #[test]
    fn majority_tolerates_single_failure(view in view_strategy()) {
        prop_assume!(view.len() >= 3);
        let rule = MajorityCoterie::new();
        for &victim in view.members() {
            let mut survivors = view.set();
            survivors.remove(victim);
            prop_assert!(rule.is_write_quorum(&view, survivors));
        }
    }
}

/// Deterministic check of the paper's §6 claim and its boundary: grids of
/// 4, 6, 7, 8, 9, ... nodes tolerate any single failure; the N = 3 and
/// N = 5 grids produced by the published DefineGrid both contain a
/// single-node column whose failure blocks every quorum (see DESIGN.md §5).
#[test]
fn grid_single_failure_tolerance_boundary() {
    let rule = GridCoterie::new();
    let tolerant = |n_nodes: usize| -> bool {
        let view = View::first_n(n_nodes);
        view.members().iter().all(|&victim| {
            let mut survivors = view.set();
            survivors.remove(victim);
            rule.is_write_quorum(&view, survivors)
        })
    };
    assert!(!tolerant(3));
    assert!(tolerant(4));
    assert!(!tolerant(5), "N=5 has a singleton column under DefineGrid");
    for n in 6..=30 {
        assert!(tolerant(n), "grid of {n} nodes should tolerate one failure");
    }
}
