//! Property-based equivalence: for every shipped rule, the compiled
//! [`QuorumPlan`] must agree with the legacy predicate on **every** input —
//! random views up to 20 members, with holes in the name space (as arise
//! after epoch changes), and candidate sets that may contain nodes outside
//! the view. This is the contract that lets the protocol core swap
//! `includes_quorum` for plan evaluation without behavioral change.

use coterie_quorum::{
    CoterieRule, GridCoterie, MajorityCoterie, NodeId, NodeSet, PlanCache, QuorumKind, RowaCoterie,
    TreeCoterie, View, VotingCoterie, WeightedCoterie, WriteSize,
};
use proptest::prelude::*;

fn rules() -> Vec<Box<dyn CoterieRule>> {
    vec![
        Box::new(GridCoterie::new()),
        Box::new(GridCoterie::tall()),
        Box::new(MajorityCoterie::new()),
        Box::new(VotingCoterie::with_write_size(WriteSize::Percent(70))),
        Box::new(TreeCoterie::new()),
        Box::new(RowaCoterie::new()),
        Box::new(WeightedCoterie::new([
            (NodeId(0), 3),
            (NodeId(7), 2),
            (NodeId(33), 5),
        ])),
    ]
}

/// A view of 1..=20 nodes with names drawn sparsely from 0..60.
fn view_strategy() -> impl Strategy<Value = View> {
    proptest::collection::btree_set(0u32..60, 1..=20)
        .prop_map(|names| View::new(names.into_iter().map(NodeId)))
}

/// Selects view members by `mask` bit position and mixes in up to two
/// nodes that may fall outside the view (the legacy predicates ignore
/// strangers; compiled plans must too).
fn candidate(view: &View, mask: u32, strangers: (u32, u32)) -> NodeSet {
    let mut s = NodeSet::new();
    for (i, &n) in view.members().iter().enumerate() {
        if mask & (1 << i) != 0 {
            s.insert(n);
        }
    }
    s.insert(NodeId(strangers.0));
    s.insert(NodeId(strangers.1));
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Compiled plans agree with the legacy predicates on random inputs.
    #[test]
    fn compiled_matches_legacy(
        view in view_strategy(),
        mask in any::<u32>(),
        sx in 0u32..64,
        sy in 0u32..64,
    ) {
        for rule in rules() {
            let plan = rule.compile(&view);
            let s = candidate(&view, mask, (sx, sy));
            for kind in [QuorumKind::Read, QuorumKind::Write] {
                let legacy = rule.includes_quorum(&view, s, kind);
                let compiled = plan.includes_quorum_with(&*rule, s, kind);
                prop_assert_eq!(
                    legacy, compiled,
                    "{}: plan disagrees on {:?} over {:?} ({:?})",
                    rule.name(), s, view, kind
                );
                // Every shipped rule compiles to a real (non-fallback)
                // body, so direct evaluation must be available and agree.
                prop_assert_eq!(plan.evaluate(s, kind), Some(legacy));
            }
        }
    }

    /// The plan cache returns plans equivalent to a fresh compile, and one
    /// entry serves every lookup of the same view.
    #[test]
    fn cache_is_transparent(view in view_strategy(), mask in any::<u32>()) {
        for rule in rules() {
            let mut cache = PlanCache::new();
            let s = candidate(&view, mask, (0, 0));
            for kind in [QuorumKind::Read, QuorumKind::Write] {
                let legacy = rule.includes_quorum(&view, s, kind);
                let via_cache = cache
                    .plan_for(&*rule, &view)
                    .includes_quorum_with(&*rule, s, kind);
                prop_assert_eq!(legacy, via_cache, "{}: cached plan diverged", rule.name());
            }
            prop_assert_eq!(cache.len(), 1);
            // A second lookup (by set) must not grow the cache.
            let _ = cache.plan_for_set(&*rule, view.set());
            prop_assert_eq!(cache.len(), 1);
        }
    }

    /// Exhaustive agreement over all 2^N subsets for small views: no
    /// sampling gaps where the masks actually fit in a scan.
    #[test]
    fn compiled_matches_legacy_exhaustively_small(
        names in proptest::collection::btree_set(0u32..24, 1..=8),
    ) {
        let view = View::new(names.into_iter().map(NodeId));
        for rule in rules() {
            let plan = rule.compile(&view);
            for mask in 0u32..(1 << view.len()) {
                let s = candidate(&view, mask, (0, 0));
                for kind in [QuorumKind::Read, QuorumKind::Write] {
                    prop_assert_eq!(
                        rule.includes_quorum(&view, s, kind),
                        plan.includes_quorum_with(&*rule, s, kind),
                        "{}: mask {:#b} over {:?}", rule.name(), mask, view
                    );
                }
            }
        }
    }
}
