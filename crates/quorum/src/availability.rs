//! Availability analysis of *static* coteries under the site model
//! (reliable links, nodes up independently with probability `p`).
//!
//! Provides exact closed forms for the grid and voting coteries (used to
//! regenerate the "Static Grid" column of the paper's Table 1), a generic
//! exact enumeration for any rule over small views, and minimal-quorum
//! enumeration used by tests and the structure-aware experiments.

use crate::grid::GridShape;
use crate::node::{NodeSet, View};
use crate::rule::{CoterieRule, QuorumKind};

/// Exact availability of `rule` over `view` when every node is up
/// independently with probability `p`: the probability that the set of up
/// nodes includes a quorum of the requested kind.
///
/// Enumerates all `2^N` up-sets; panics if the view exceeds 25 nodes (use
/// the closed forms or Monte Carlo beyond that).
pub fn exact_availability(rule: &dyn CoterieRule, view: &View, p: f64, kind: QuorumKind) -> f64 {
    let n = view.len();
    assert!(n <= 25, "exact enumeration is limited to 25 nodes");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    // Per-member bit positions, so an enumeration mask converts to the
    // view's NodeSet encoding with one table lookup per set bit.
    let bits: Vec<u128> = view.members().iter().map(|m| 1u128 << m.index()).collect();
    let q = 1.0 - p;
    // Precompute p^k q^(n-k) per popcount to avoid 2^N powf calls.
    let mut weight = vec![0.0f64; n + 1];
    for (k, w) in weight.iter_mut().enumerate() {
        *w = p.powi(k as i32) * q.powi((n - k) as i32);
    }
    // Compile the rule once: the 2^N-iteration loop then runs on pure
    // bitmask evaluation (or the legacy predicate for uncompiled rules).
    let plan = rule.compile(view);
    let sum_range = |lo: u32, hi: u32| {
        let mut avail = 0.0;
        for mask in lo..hi {
            let mut up = 0u128;
            let mut rest = mask;
            while rest != 0 {
                let i = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                up |= bits[i];
            }
            if plan.includes_quorum_with(rule, NodeSet(up), kind) {
                avail += weight[mask.count_ones() as usize];
            }
        }
        avail
    };
    let total = 1u32 << n;
    let workers = sweep_workers(total as usize);
    if workers <= 1 {
        return sum_range(0, total);
    }
    // Partial sums are produced per contiguous chunk and added in chunk
    // order, so the result is deterministic for a given worker count.
    let chunk = total.div_ceil(workers as u32);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers as u32)
            .map(|t| {
                let lo = t * chunk;
                let hi = (lo + chunk).min(total);
                scope.spawn(move || sum_range(lo, hi))
            })
            .collect();
        // lint:allow(panic): join only fails if a worker panicked; re-raise it here
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    })
}

/// Number of worker threads for an embarrassingly parallel sweep of
/// `iterations` steps: available parallelism, but never so many that a
/// chunk becomes trivially small, and one (i.e. inline) for small sweeps
/// where spawn overhead would dominate.
fn sweep_workers(iterations: usize) -> usize {
    const MIN_CHUNK: usize = 1 << 14;
    if iterations < 2 * MIN_CHUNK {
        return 1;
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    hw.min(iterations / MIN_CHUNK).max(1)
}

/// Closed-form write availability of a static grid of the given shape:
///
/// `A_w = Π_j (1 - q^{h_j})  -  Π_j (1 - q^{h_j} - p^{h_j})`
///
/// where `h_j` is the physical height of column `j` (holes shorten the last
/// `b` columns). The first product is "every column covered"; the second is
/// "every column covered but none fully up"; their difference is the
/// probability of a read cover plus at least one fully-up column.
pub fn grid_write_availability(shape: GridShape, p: f64) -> f64 {
    let q = 1.0 - p;
    let mut all_covered = 1.0;
    let mut covered_none_full = 1.0;
    for j in 1..=shape.n {
        let h = shape.column_height(j) as i32;
        let cover = 1.0 - q.powi(h);
        let full = p.powi(h);
        all_covered *= cover;
        covered_none_full *= cover - full;
    }
    all_covered - covered_none_full
}

/// Closed-form read availability of a static grid: every column covered.
pub fn grid_read_availability(shape: GridShape, p: f64) -> f64 {
    let q = 1.0 - p;
    (1..=shape.n)
        .map(|j| 1.0 - q.powi(shape.column_height(j) as i32))
        .product()
}

/// Binomial tail: probability that at least `k` of `n` independent nodes
/// (each up with probability `p`) are up. This is the availability of a
/// voting coterie with quorum size `k`.
pub fn at_least_k_up(n: usize, k: usize, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > n {
        return 0.0;
    }
    let q = 1.0 - p;
    // Sum the tail from the most likely end for accuracy.
    let mut total = 0.0;
    for i in k..=n {
        total += binomial(n, i) * p.powi(i as i32) * q.powi((n - i) as i32);
    }
    total.min(1.0)
}

/// Write availability of majority voting over `n` nodes.
pub fn majority_write_availability(n: usize, p: f64) -> f64 {
    at_least_k_up(n, n / 2 + 1, p)
}

/// Read availability of ROWA over `n` nodes (any node up).
pub fn rowa_read_availability(n: usize, p: f64) -> f64 {
    1.0 - (1.0 - p).powi(n as i32)
}

/// Write availability of ROWA over `n` nodes (all nodes up).
pub fn rowa_write_availability(n: usize, p: f64) -> f64 {
    p.powi(n as i32)
}

/// Exhaustive search over the *exact-fit* grids `m × n = N`, returning the
/// shape with the best (highest) write availability. This mirrors the
/// "Best dimens." column of the paper's Table 1, which — following the
/// original grid-protocol paper \[3\] — only considers grids without
/// unoccupied positions. See [`best_grid_allowing_holes`] for the wider
/// search (which sometimes wins: a 4×5 grid with 4 holes beats 4×4 for
/// N = 16 at p = 0.95, because short columns are easier to fully cover).
pub fn best_static_grid(n_nodes: usize, p: f64) -> (GridShape, f64) {
    assert!(n_nodes >= 1);
    let mut best: Option<(GridShape, f64)> = None;
    for m in 1..=n_nodes {
        if !n_nodes.is_multiple_of(m) {
            continue;
        }
        let n = n_nodes / m;
        let shape = GridShape { m, n, b: 0 };
        let a = grid_write_availability(shape, p);
        if best.is_none_or(|(_, ba)| a > ba) {
            best = Some((shape, a));
        }
    }
    // lint:allow(panic): the loop always visits the 1 x N shape, so best is Some
    best.expect("the 1 x N grid is always a candidate")
}

/// Like [`best_static_grid`] but also considering hole-bearing grids with
/// `m*n >= N` and `b = m*n - N < n` (the constraint `DefineGrid` maintains).
pub fn best_grid_allowing_holes(n_nodes: usize, p: f64) -> (GridShape, f64) {
    assert!(n_nodes >= 1);
    let mut best: Option<(GridShape, f64)> = None;
    for m in 1..=n_nodes {
        for n in 1..=n_nodes {
            if m * n < n_nodes || m * n - n_nodes >= n {
                continue;
            }
            let shape = GridShape {
                m,
                n,
                b: m * n - n_nodes,
            };
            let a = grid_write_availability(shape, p);
            if best.is_none_or(|(_, ba)| a > ba) {
                best = Some((shape, a));
            }
        }
    }
    // lint:allow(panic): the loop always visits the hole-free 1 x N shape
    best.expect("at least the 1 x N grid is always a candidate")
}

fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc = acc * (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// Enumerates all *minimal* quorums of `rule` over `view`. Exponential in
/// the view size; restricted to 20 nodes.
pub fn minimal_quorums(rule: &dyn CoterieRule, view: &View, kind: QuorumKind) -> Vec<NodeSet> {
    let n = view.len();
    assert!(n <= 20, "minimal quorum enumeration is limited to 20 nodes");
    let bits: Vec<u128> = view.members().iter().map(|m| 1u128 << m.index()).collect();
    let plan = rule.compile(view);
    let scan_range = |lo: u32, hi: u32| {
        let mut quorums = Vec::new();
        'outer: for mask in lo..hi {
            let mut up = 0u128;
            let mut rest = mask;
            while rest != 0 {
                let i = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                up |= bits[i];
            }
            let s = NodeSet(up);
            if !plan.includes_quorum_with(rule, s, kind) {
                continue;
            }
            for node in s.iter() {
                let mut reduced = s;
                reduced.remove(node);
                if plan.includes_quorum_with(rule, reduced, kind) {
                    continue 'outer; // not minimal
                }
            }
            quorums.push(s);
        }
        quorums
    };
    let total = 1u32 << n;
    let workers = sweep_workers(total as usize);
    if workers <= 1 {
        return scan_range(1, total);
    }
    // Chunks are scanned in parallel but concatenated in chunk order, so
    // the output keeps the sequential enumeration order.
    let chunk = total.div_ceil(workers as u32);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers as u32)
            .map(|t| {
                let lo = (t * chunk).max(1);
                let hi = (t * chunk + chunk).min(total);
                scope.spawn(move || scan_range(lo, hi))
            })
            .collect();
        handles
            .into_iter()
            // lint:allow(panic): join only fails if a worker panicked; re-raise it here
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridCoterie;
    use crate::majority::MajorityCoterie;
    use crate::rowa::RowaCoterie;

    const P: f64 = 0.95;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1e-300)
    }

    #[test]
    fn table1_static_grid_column() {
        // Paper Table 1: best static-grid write unavailability at p = 0.95.
        let cases = [
            (9, (3, 3), 3268.59e-6),
            (12, (3, 4), 912.25e-6),
            (15, (3, 5), 683.60e-6),
            (16, (4, 4), 1208.75e-6),
            (20, (4, 5), 250.82e-6),
            (24, (4, 6), 78.23e-6),
            (30, (5, 6), 135.90e-6),
        ];
        for (n_nodes, (m, n), expected_unavail) in cases {
            let shape = GridShape {
                m,
                n,
                b: m * n - n_nodes,
            };
            let unavail = 1.0 - grid_write_availability(shape, P);
            assert!(
                close(unavail, expected_unavail, 2e-3),
                "N={n_nodes}: got {unavail:e}, paper {expected_unavail:e}"
            );
        }
    }

    #[test]
    fn closed_form_matches_enumeration_for_grid() {
        let rule = GridCoterie::new();
        for n_nodes in [3usize, 4, 5, 6, 7, 9, 12] {
            let view = View::first_n(n_nodes);
            let shape = GridShape::define(n_nodes);
            for p in [0.5, 0.8, 0.95] {
                let exact = exact_availability(&rule, &view, p, QuorumKind::Write);
                let formula = grid_write_availability(shape, p);
                assert!(
                    close(exact, formula, 1e-12),
                    "N={n_nodes} p={p}: enum {exact} vs formula {formula}"
                );
                let exact_r = exact_availability(&rule, &view, p, QuorumKind::Read);
                let formula_r = grid_read_availability(shape, p);
                assert!(close(exact_r, formula_r, 1e-12), "read N={n_nodes} p={p}");
            }
        }
    }

    #[test]
    fn closed_form_matches_enumeration_for_majority() {
        let rule = MajorityCoterie::new();
        for n in [1usize, 2, 3, 5, 8, 11] {
            let view = View::first_n(n);
            for p in [0.3, 0.7, 0.95] {
                let exact = exact_availability(&rule, &view, p, QuorumKind::Write);
                let formula = majority_write_availability(n, p);
                assert!(close(exact, formula, 1e-12), "n={n} p={p}");
            }
        }
    }

    #[test]
    fn rowa_closed_forms() {
        let rule = RowaCoterie::new();
        let view = View::first_n(6);
        for p in [0.2, 0.9] {
            assert!(close(
                exact_availability(&rule, &view, p, QuorumKind::Read),
                rowa_read_availability(6, p),
                1e-12
            ));
            assert!(close(
                exact_availability(&rule, &view, p, QuorumKind::Write),
                rowa_write_availability(6, p),
                1e-12
            ));
        }
    }

    #[test]
    fn availability_monotone_in_p() {
        let shape = GridShape::define(12);
        let mut prev = 0.0;
        for i in 1..=20 {
            let p = i as f64 / 20.0;
            let a = grid_write_availability(shape, p);
            assert!(a >= prev - 1e-12, "availability dips at p={p}");
            prev = a;
        }
        assert!(close(grid_write_availability(shape, 1.0), 1.0, 1e-12));
        assert_eq!(grid_write_availability(shape, 0.0), 0.0);
    }

    #[test]
    fn best_static_grid_matches_paper_dimensions() {
        // Table 1 lists best dimensions per N (rows x columns up to
        // transpose: availability is symmetric in m,n only for b=0 exact
        // fits; compare the m+n pair).
        let expect = [
            (9, 3, 3),
            (12, 3, 4),
            (16, 4, 4),
            (20, 4, 5),
            (24, 4, 6),
            (30, 5, 6),
        ];
        for (n_nodes, em, en) in expect {
            let (shape, _) = best_static_grid(n_nodes, P);
            let mut dims = [shape.m, shape.n];
            dims.sort_unstable();
            let mut exp = [em, en];
            exp.sort_unstable();
            assert_eq!(dims, exp, "N={n_nodes}: got {shape:?}");
        }
    }

    #[test]
    fn minimal_quorums_intersect() {
        let rule = GridCoterie::new();
        let view = View::first_n(9);
        let reads = minimal_quorums(&rule, &view, QuorumKind::Read);
        let writes = minimal_quorums(&rule, &view, QuorumKind::Write);
        assert!(!reads.is_empty() && !writes.is_empty());
        for &w1 in &writes {
            for &w2 in &writes {
                assert!(w1.intersects(w2));
            }
            for &r in &reads {
                assert!(r.intersects(w1));
            }
        }
        // 3x3 grid: 3^3 = 27 minimal read quorums; write quorums pick a full
        // column (3 choices) and one of 3 representatives in each of the two
        // other columns: 3 * 9 = 27.
        assert_eq!(reads.len(), 27);
        assert_eq!(writes.len(), 27);
    }

    #[test]
    fn holes_can_beat_exact_fit() {
        let (shape, a_holes) = best_grid_allowing_holes(16, P);
        let (_, a_exact) = best_static_grid(16, P);
        assert!(a_holes > a_exact);
        assert!(shape.b > 0);
    }

    #[test]
    fn binomial_sanity() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(4, 7), 0.0);
        assert!(close(at_least_k_up(10, 0, 0.5), 1.0, 1e-12));
        assert_eq!(at_least_k_up(3, 4, 0.9), 0.0);
    }
}
