//! Compiled quorum plans: a [`CoterieRule`] × [`View`] pair reduced to a
//! handful of precomputed bitmasks so that the hot predicate
//! `coterie-rule(V, S)` becomes a few word operations on the `u128`
//! encoding of `S`, with no per-call allocation, position arithmetic, or
//! recursion.
//!
//! The paper's protocol evaluates `coterie-rule(V, S)` on every response
//! classification, every availability-model transition, and every
//! enumeration step over candidate sets — always against the *same* view
//! (the current epoch list) while `S` varies. A [`QuorumPlan`] hoists all
//! the view-dependent work (grid layout, thresholds, vote totals, tree
//! grouping) out of the loop:
//!
//! * **Grid** — one occupancy mask per column. `S` includes a read quorum
//!   iff it intersects every column mask; a write quorum additionally
//!   requires some column mask to be entirely inside `S`.
//! * **Voting / majority** — a popcount against precomputed read/write
//!   sizes.
//! * **Weighted voting** — per-member `(bit, weight)` pairs summed against
//!   precomputed thresholds.
//! * **Tree** — the hierarchy flattened into leaf masks and
//!   majority-of-children counters.
//! * **ROWA** — raw mask emptiness / equality tests.
//!
//! Rules that do not override [`CoterieRule::compile`] get a *fallback*
//! plan that retains the view and defers to the legacy predicate through
//! [`QuorumPlan::includes_quorum_with`]; compiled and fallback plans are
//! therefore interchangeable at every call site that still holds the rule.
//!
//! A plan is valid only for the exact view it was compiled from — epoch
//! changes must discard it (see `DESIGN.md`, "Quorum plan compilation").

use crate::node::{NodeSet, View};
use crate::rule::{CoterieRule, QuorumKind};

/// One group in a flattened tree-quorum hierarchy: either a leaf group
/// whose members are tested directly, or an internal group satisfied by a
/// strict majority of its children. Children always precede their parent
/// in the plan's group vector, so the root is the last entry.
#[derive(Clone, Debug)]
pub enum TreeGroup {
    /// A leaf group: at least `need` members of `mask` must be present.
    Leaf {
        /// Bitmask of the group's members.
        mask: u128,
        /// Strict majority count over the group size.
        need: u32,
    },
    /// An internal group: at least `need` child groups must be satisfied.
    Inner {
        /// Indices of the child groups within the plan's group vector.
        children: Vec<usize>,
        /// Strict majority count over the number of children.
        need: u32,
    },
}

fn tree_satisfied(groups: &[TreeGroup], idx: usize, s: u128) -> bool {
    match &groups[idx] {
        TreeGroup::Leaf { mask, need } => (s & mask).count_ones() >= *need,
        TreeGroup::Inner { children, need } => {
            let mut have = 0u32;
            let mut left = children.len() as u32;
            for &c in children {
                if tree_satisfied(groups, c, s) {
                    have += 1;
                    if have >= *need {
                        return true;
                    }
                }
                left -= 1;
                if have + left < *need {
                    return false;
                }
            }
            false
        }
    }
}

/// The compiled evaluator body. Kept private: rules construct plans
/// through the typed [`QuorumPlan`] constructors.
#[derive(Clone, Debug)]
enum PlanBody {
    /// Degenerate view (empty, or zero total weight): nothing is a quorum.
    Never,
    /// Grid rule: one occupancy mask per column.
    Grid { columns: Vec<u128> },
    /// Unit-vote thresholds: popcount against per-kind sizes.
    Threshold { read_need: u32, write_need: u32 },
    /// Weighted votes: `(member bit, weight)` pairs against thresholds.
    Weighted {
        weights: Vec<(u128, u64)>,
        read_need: u64,
        write_need: u64,
    },
    /// Flattened tree hierarchy; read and write quorums coincide.
    Tree { groups: Vec<TreeGroup> },
    /// Read-one/write-all over the view mask.
    Rowa,
    /// Uncompiled rule: defer to the legacy predicate against this view.
    Fallback { view: View },
}

/// A quorum evaluator compiled for one specific view.
///
/// Obtained from [`CoterieRule::compile`]. Candidate sets are implicitly
/// intersected with the compiled view, exactly like the legacy predicate.
#[derive(Clone, Debug)]
pub struct QuorumPlan {
    view_set: NodeSet,
    body: PlanBody,
}

impl QuorumPlan {
    /// A plan under which no set is ever a quorum (empty or otherwise
    /// degenerate views).
    pub fn never(view: &View) -> Self {
        QuorumPlan {
            view_set: view.set(),
            body: PlanBody::Never,
        }
    }

    /// A compiled grid plan: `columns[j]` is the occupancy mask of grid
    /// column `j + 1`. A read quorum intersects every column; a write
    /// quorum additionally contains some whole column.
    pub fn grid(view: &View, columns: Vec<u128>) -> Self {
        QuorumPlan {
            view_set: view.set(),
            body: PlanBody::Grid { columns },
        }
    }

    /// A compiled unit-vote plan: a read (write) quorum is any
    /// `read_need` (`write_need`) view members.
    pub fn threshold(view: &View, read_need: usize, write_need: usize) -> Self {
        QuorumPlan {
            view_set: view.set(),
            body: PlanBody::Threshold {
                read_need: read_need as u32,
                write_need: write_need as u32,
            },
        }
    }

    /// A compiled weighted-vote plan over `(member bit mask, weight)`
    /// pairs and per-kind vote thresholds.
    pub fn weighted(
        view: &View,
        weights: Vec<(u128, u64)>,
        read_need: u64,
        write_need: u64,
    ) -> Self {
        QuorumPlan {
            view_set: view.set(),
            body: PlanBody::Weighted {
                weights,
                read_need,
                write_need,
            },
        }
    }

    /// A compiled tree plan over flattened [`TreeGroup`]s; the root group
    /// must be the last entry.
    pub fn tree(view: &View, groups: Vec<TreeGroup>) -> Self {
        assert!(!groups.is_empty(), "tree plan needs at least one group");
        QuorumPlan {
            view_set: view.set(),
            body: PlanBody::Tree { groups },
        }
    }

    /// A compiled read-one/write-all plan.
    pub fn rowa(view: &View) -> Self {
        QuorumPlan {
            view_set: view.set(),
            body: PlanBody::Rowa,
        }
    }

    /// The fallback plan produced by the default [`CoterieRule::compile`]:
    /// retains the view and evaluates through the legacy predicate (see
    /// [`includes_quorum_with`](QuorumPlan::includes_quorum_with)).
    pub fn fallback(view: &View) -> Self {
        QuorumPlan {
            view_set: view.set(),
            body: PlanBody::Fallback { view: view.clone() },
        }
    }

    /// The member set of the view this plan was compiled for. Useful as a
    /// cache key: a plan is valid exactly as long as the epoch list that
    /// produced it.
    #[inline]
    pub fn view_set(&self) -> NodeSet {
        self.view_set
    }

    /// True unless this is a fallback plan deferring to the legacy
    /// predicate.
    pub fn is_compiled(&self) -> bool {
        !matches!(self.body, PlanBody::Fallback { .. })
    }

    /// Evaluates the compiled predicate, or `None` for a fallback plan
    /// (which needs the rule; see
    /// [`includes_quorum_with`](QuorumPlan::includes_quorum_with)).
    #[inline]
    pub fn evaluate(&self, s: NodeSet, kind: QuorumKind) -> Option<bool> {
        let s = s.0 & self.view_set.0;
        Some(match &self.body {
            PlanBody::Never => false,
            PlanBody::Grid { columns } => {
                if columns.iter().any(|&c| s & c == 0) {
                    false
                } else {
                    match kind {
                        QuorumKind::Read => true,
                        QuorumKind::Write => columns.iter().any(|&c| c & !s == 0),
                    }
                }
            }
            PlanBody::Threshold {
                read_need,
                write_need,
            } => {
                let have = s.count_ones();
                match kind {
                    QuorumKind::Read => have >= *read_need,
                    QuorumKind::Write => have >= *write_need,
                }
            }
            PlanBody::Weighted {
                weights,
                read_need,
                write_need,
            } => {
                let need = match kind {
                    QuorumKind::Read => *read_need,
                    QuorumKind::Write => *write_need,
                };
                let mut votes = 0u64;
                for &(mask, w) in weights {
                    if s & mask != 0 {
                        votes += w;
                        if votes >= need {
                            break;
                        }
                    }
                }
                votes >= need
            }
            PlanBody::Tree { groups } => tree_satisfied(groups, groups.len() - 1, s),
            PlanBody::Rowa => match kind {
                QuorumKind::Read => s != 0,
                QuorumKind::Write => s == self.view_set.0,
            },
            PlanBody::Fallback { .. } => return None,
        })
    }

    /// The compiled `coterie-rule(V, S)`. Panics on a fallback plan; use
    /// [`includes_quorum_with`](QuorumPlan::includes_quorum_with) when the
    /// rule may not have overridden [`CoterieRule::compile`].
    #[inline]
    pub fn includes_quorum(&self, s: NodeSet, kind: QuorumKind) -> bool {
        self.evaluate(s, kind)
            // lint:allow(panic): documented contract — callers with fallback plans use includes_quorum_with
            .expect("fallback quorum plan: evaluate via includes_quorum_with")
    }

    /// `coterie-rule(V, S)` through the plan, falling back to the legacy
    /// predicate of `rule` when the plan is uncompiled. Equivalent to
    /// `rule.includes_quorum(view, s, kind)` for the compiled view.
    #[inline]
    pub fn includes_quorum_with(
        &self,
        rule: &dyn CoterieRule,
        s: NodeSet,
        kind: QuorumKind,
    ) -> bool {
        match self.evaluate(s, kind) {
            Some(v) => v,
            None => {
                let PlanBody::Fallback { view } = &self.body else {
                    // lint:allow(panic): evaluate returns None only for fallback bodies
                    unreachable!("evaluate returns None only for fallback plans");
                };
                rule.includes_quorum(view, s, kind)
            }
        }
    }

    /// Convenience: the compiled predicate restricted to read quorums.
    #[inline]
    pub fn is_read_quorum(&self, s: NodeSet) -> bool {
        self.includes_quorum(s, QuorumKind::Read)
    }

    /// Convenience: the compiled predicate restricted to write quorums.
    #[inline]
    pub fn is_write_quorum(&self, s: NodeSet) -> bool {
        self.includes_quorum(s, QuorumKind::Write)
    }
}

/// A memoizing cache of compiled plans keyed by the view's member set.
///
/// Availability models and sweeps evaluate the quorum predicate against a
/// small, recurring set of views (one per epoch); this cache compiles each
/// view once and hands back the plan on every subsequent hit. The member
/// set is a complete key: every shipped rule derives its structure
/// deterministically from the ordered view, which is itself determined by
/// the member set.
/// (`BTreeMap` keeps cache traversal order-stable for the engine's
/// determinism contract; the cache is tiny — one entry per live epoch —
/// so the O(log n) lookup is irrelevant next to plan compilation.)
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: std::collections::BTreeMap<NodeSet, QuorumPlan>,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// The plan for `view`, compiling it on first use.
    pub fn plan_for(&mut self, rule: &dyn CoterieRule, view: &View) -> &QuorumPlan {
        self.plans
            .entry(view.set())
            .or_insert_with(|| rule.compile(view))
    }

    /// The plan for the view consisting of exactly the members of `set`.
    pub fn plan_for_set(&mut self, rule: &dyn CoterieRule, set: NodeSet) -> &QuorumPlan {
        self.plans
            .entry(set)
            .or_insert_with(|| rule.compile(&View::from_set(set)))
    }

    /// Number of compiled plans held.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// True if no plan has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Drops every cached plan (e.g. when switching rules).
    pub fn clear(&mut self) {
        self.plans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridCoterie;
    use crate::majority::MajorityCoterie;
    use crate::node::NodeId;
    use crate::rowa::RowaCoterie;
    use crate::tree::TreeCoterie;
    use crate::weighted::WeightedCoterie;

    fn ids(v: &[u32]) -> NodeSet {
        NodeSet::from_iter(v.iter().map(|&x| NodeId(x)))
    }

    /// Exhaustively compares a compiled plan against the legacy predicate
    /// over every subset of the view (plus one stranger node).
    fn assert_equivalent(rule: &dyn CoterieRule, view: &View) {
        let plan = rule.compile(view);
        assert!(plan.is_compiled(), "{} did not compile", rule.name());
        assert_eq!(plan.view_set(), view.set());
        let members = view.members();
        assert!(members.len() <= 16, "exhaustive check needs a small view");
        for mask in 0u32..(1 << members.len()) {
            let mut s = NodeSet::new();
            for (i, &node) in members.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    s.insert(node);
                }
            }
            if mask % 3 == 0 {
                s.insert(NodeId(120)); // stranger: must never matter
            }
            for kind in [QuorumKind::Read, QuorumKind::Write] {
                assert_eq!(
                    plan.includes_quorum(s, kind),
                    rule.includes_quorum(view, s, kind),
                    "{} diverges: view={view:?} s={s:?} kind={kind:?}",
                    rule.name()
                );
                assert_eq!(
                    plan.includes_quorum_with(rule, s, kind),
                    rule.includes_quorum(view, s, kind),
                );
            }
        }
    }

    #[test]
    fn grid_plan_matches_legacy() {
        for n in 1..=14 {
            assert_equivalent(&GridCoterie::new(), &View::first_n(n));
            assert_equivalent(&GridCoterie::tall(), &View::first_n(n));
        }
        // Non-contiguous names (epoch survivors).
        let view = View::new([NodeId(5), NodeId(9), NodeId(17), NodeId(40), NodeId(99)]);
        assert_equivalent(&GridCoterie::new(), &view);
        assert_equivalent(&GridCoterie::tall(), &view);
    }

    #[test]
    fn threshold_plan_matches_legacy() {
        use crate::majority::{VotingCoterie, WriteSize};
        for n in 1..=12 {
            assert_equivalent(&MajorityCoterie::new(), &View::first_n(n));
            assert_equivalent(
                &VotingCoterie::with_write_size(WriteSize::Percent(75)),
                &View::first_n(n),
            );
            assert_equivalent(
                &VotingCoterie::with_write_size(WriteSize::AtLeast(4)),
                &View::first_n(n),
            );
        }
    }

    #[test]
    fn weighted_plan_matches_legacy() {
        let rule = WeightedCoterie::new([(NodeId(0), 3), (NodeId(4), 0), (NodeId(7), 5)]);
        for n in 1..=10 {
            assert_equivalent(&rule, &View::first_n(n));
        }
        // All-zero weights: nothing is a quorum.
        let zero = WeightedCoterie::new([]).with_default_weight(0);
        let view = View::first_n(3);
        let plan = zero.compile(&view);
        assert!(!plan.is_write_quorum(view.set()));
        assert!(!plan.is_read_quorum(view.set()));
    }

    #[test]
    fn tree_plan_matches_legacy() {
        for n in 1..=14 {
            assert_equivalent(&TreeCoterie::new(), &View::first_n(n));
            assert_equivalent(&TreeCoterie::with_branching(2), &View::first_n(n));
        }
        let view = View::new([NodeId(2), NodeId(30), NodeId(31), NodeId(64), NodeId(90)]);
        assert_equivalent(&TreeCoterie::new(), &view);
    }

    #[test]
    fn rowa_plan_matches_legacy() {
        for n in 1..=8 {
            assert_equivalent(&RowaCoterie::new(), &View::first_n(n));
        }
    }

    #[test]
    fn empty_view_compiles_to_never() {
        let view = View::new([]);
        for rule in [
            Box::new(GridCoterie::new()) as Box<dyn CoterieRule>,
            Box::new(MajorityCoterie::new()),
            Box::new(WeightedCoterie::new([])),
            Box::new(TreeCoterie::new()),
            Box::new(RowaCoterie::new()),
        ] {
            let plan = rule.compile(&view);
            assert!(!plan.is_read_quorum(NodeSet::first_n(5)));
            assert!(!plan.is_write_quorum(NodeSet::first_n(5)));
        }
    }

    /// A rule that does not override `compile` exercises the fallback.
    #[derive(Debug)]
    struct Uncompiled;

    impl CoterieRule for Uncompiled {
        fn name(&self) -> &'static str {
            "uncompiled"
        }

        fn includes_quorum(&self, view: &View, s: NodeSet, _kind: QuorumKind) -> bool {
            s.intersection(view.set()).len() == view.len()
        }

        fn pick_quorum(
            &self,
            view: &View,
            prefer: NodeSet,
            _seed: u64,
            _kind: QuorumKind,
        ) -> Option<NodeSet> {
            view.set().is_subset_of(prefer).then(|| view.set())
        }
    }

    #[test]
    fn fallback_plan_defers_to_rule() {
        let rule = Uncompiled;
        let view = View::first_n(3);
        let plan = rule.compile(&view);
        assert!(!plan.is_compiled());
        assert_eq!(plan.view_set(), view.set());
        assert!(plan.evaluate(view.set(), QuorumKind::Write).is_none());
        assert!(plan.includes_quorum_with(&rule, view.set(), QuorumKind::Write));
        assert!(!plan.includes_quorum_with(&rule, ids(&[0, 1]), QuorumKind::Write));
    }

    #[test]
    #[should_panic(expected = "fallback quorum plan")]
    fn fallback_plan_panics_on_direct_eval() {
        let plan = Uncompiled.compile(&View::first_n(3));
        plan.includes_quorum(NodeSet::first_n(3), QuorumKind::Read);
    }

    #[test]
    fn plan_cache_compiles_once_per_view() {
        let rule = GridCoterie::new();
        let mut cache = PlanCache::new();
        assert!(cache.is_empty());
        let v9 = View::first_n(9);
        let v4 = View::first_n(4);
        assert!(cache
            .plan_for(&rule, &v9)
            .is_write_quorum(ids(&[0, 3, 6, 1, 2])));
        assert_eq!(cache.len(), 1);
        cache.plan_for(&rule, &v9);
        assert_eq!(cache.len(), 1);
        cache.plan_for_set(&rule, v4.set());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.plan_for(&rule, &v4).view_set(), v4.set());
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }
}
