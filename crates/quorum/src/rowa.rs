//! Read-one/write-all (ROWA). The paper discusses this discipline in §2:
//! the accessible-copies protocol can use it, while the epoch-based protocol
//! cannot afford it ("a single failure would make the epoch change
//! impossible and the data object unavailable for update"). We ship it as a
//! baseline for the load-sharing and availability experiments.

use crate::node::{NodeSet, View};
use crate::plan::QuorumPlan;
use crate::rule::{CoterieRule, QuorumKind};

/// The ROWA coterie: any single view member is a read quorum; the only write
/// quorum is the entire view.
#[derive(Clone, Copy, Debug, Default)]
pub struct RowaCoterie;

impl RowaCoterie {
    /// Creates the ROWA rule.
    pub fn new() -> Self {
        RowaCoterie
    }
}

impl CoterieRule for RowaCoterie {
    fn name(&self) -> &'static str {
        "rowa"
    }

    fn includes_quorum(&self, view: &View, s: NodeSet, kind: QuorumKind) -> bool {
        if view.is_empty() {
            return false;
        }
        let present = s.intersection(view.set());
        match kind {
            QuorumKind::Read => !present.is_empty(),
            QuorumKind::Write => view.set().is_subset_of(present),
        }
    }

    fn compile(&self, view: &View) -> QuorumPlan {
        if view.is_empty() {
            return QuorumPlan::never(view);
        }
        QuorumPlan::rowa(view)
    }

    fn pick_quorum(
        &self,
        view: &View,
        prefer: NodeSet,
        seed: u64,
        kind: QuorumKind,
    ) -> Option<NodeSet> {
        if view.is_empty() {
            return None;
        }
        let alive = prefer.intersection(view.set());
        match kind {
            QuorumKind::Read => {
                let members = alive.to_vec();
                if members.is_empty() {
                    None
                } else {
                    Some(NodeSet::singleton(members[(seed as usize) % members.len()]))
                }
            }
            QuorumKind::Write => {
                if view.set().is_subset_of(alive) {
                    Some(view.set())
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn read_one_write_all() {
        let r = RowaCoterie::new();
        let view = View::first_n(4);
        assert!(r.is_read_quorum(&view, NodeSet::singleton(NodeId(2))));
        assert!(!r.is_read_quorum(&view, NodeSet::EMPTY));
        assert!(!r.is_write_quorum(&view, NodeSet::first_n(3)));
        assert!(r.is_write_quorum(&view, NodeSet::first_n(4)));
    }

    #[test]
    fn outside_nodes_do_not_count() {
        let r = RowaCoterie::new();
        let view = View::first_n(2);
        assert!(!r.is_read_quorum(&view, NodeSet::singleton(NodeId(9))));
    }

    #[test]
    fn pick_quorum_variants() {
        let r = RowaCoterie::new();
        let view = View::first_n(4);
        let alive = NodeSet::from_iter([NodeId(1), NodeId(3)]);
        let q = r.pick_quorum(&view, alive, 0, QuorumKind::Read).unwrap();
        assert_eq!(q.len(), 1);
        assert!(q.is_subset_of(alive));
        assert!(r.pick_quorum(&view, alive, 0, QuorumKind::Write).is_none());
        assert_eq!(
            r.pick_quorum(&view, view.set(), 0, QuorumKind::Write),
            Some(view.set())
        );
    }

    #[test]
    fn read_choice_rotates_with_seed() {
        let r = RowaCoterie::new();
        let view = View::first_n(4);
        let picks: std::collections::BTreeSet<_> = (0..4)
            .map(|s| {
                r.pick_quorum(&view, view.set(), s, QuorumKind::Read)
                    .unwrap()
            })
            .collect();
        assert_eq!(picks.len(), 4);
    }
}
