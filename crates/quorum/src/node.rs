//! Node identifiers, compact node sets, and ordered views.
//!
//! The paper assumes "each node is assigned a name and all names are linearly
//! ordered" (§1). We model names as small integers ([`NodeId`]) and node sets
//! as bitsets ([`NodeSet`]) over at most [`MAX_NODES`] nodes, which matches
//! the paper's footnote 1: "sets of nodes can be encoded very tightly as, for
//! instance, a binary vector".

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of distinct node names supported by [`NodeSet`].
///
/// The paper evaluates up to N = 30 replicas; 128 leaves ample headroom while
/// keeping sets `Copy` and set algebra branch-free.
pub const MAX_NODES: usize = 128;

/// A node name. Names are linearly ordered by their integer value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index of this node name in the global name space.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A set of node names, encoded as a 128-bit vector.
///
/// All operations are O(1) or O(popcount). The encoding mirrors the paper's
/// suggested "binary vector" representation of epoch lists.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct NodeSet(pub u128);

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet(0);

    /// Creates an empty set.
    #[inline]
    pub fn new() -> Self {
        NodeSet(0)
    }

    /// Creates a set containing exactly `node`.
    #[inline]
    pub fn singleton(node: NodeId) -> Self {
        debug_assert!(node.index() < MAX_NODES);
        NodeSet(1u128 << node.index())
    }

    /// Creates the set `{0, 1, ..., n-1}`.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_NODES, "NodeSet supports at most {MAX_NODES} nodes");
        if n == MAX_NODES {
            NodeSet(u128::MAX)
        } else {
            NodeSet((1u128 << n) - 1)
        }
    }

    /// Builds a set from an iterator of node ids (also available through
    /// the `FromIterator` impl below; the inherent method reads better at
    /// call sites that already have a `NodeSet` in scope).
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut s = NodeSet::new();
        for n in iter {
            s.insert(n);
        }
        s
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if `node` is a member.
    #[inline]
    pub fn contains(self, node: NodeId) -> bool {
        node.index() < MAX_NODES && self.0 & (1u128 << node.index()) != 0
    }

    /// Adds `node` to the set.
    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        debug_assert!(node.index() < MAX_NODES);
        self.0 |= 1u128 << node.index();
    }

    /// Removes `node` from the set.
    #[inline]
    pub fn remove(&mut self, node: NodeId) {
        self.0 &= !(1u128 << node.index());
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    pub fn difference(self, other: NodeSet) -> NodeSet {
        NodeSet(self.0 & !other.0)
    }

    /// True if `self ⊆ other`.
    #[inline]
    pub fn is_subset_of(self, other: NodeSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True if the sets share at least one member.
    #[inline]
    pub fn intersects(self, other: NodeSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterates over members in increasing name order.
    pub fn iter(self) -> NodeSetIter {
        NodeSetIter(self.0)
    }

    /// The smallest member, if any.
    #[inline]
    pub fn min(self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            Some(NodeId(self.0.trailing_zeros()))
        }
    }

    /// The largest member, if any.
    #[inline]
    pub fn max(self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            Some(NodeId(127 - self.0.leading_zeros()))
        }
    }

    /// Members as a sorted vector.
    pub fn to_vec(self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        NodeSet::from_iter(iter)
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the members of a [`NodeSet`].
pub struct NodeSetIter(u128);

impl Iterator for NodeSetIter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if self.0 == 0 {
            None
        } else {
            let tz = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(NodeId(tz))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for NodeSetIter {}

/// An ordered set of node names over which a coterie is defined.
///
/// This is the paper's "ordered set of nodes V": an epoch list or the full
/// replica set. Members are kept sorted by name, which is the linear order
/// the coterie rule relies on ("the nodes from V are assigned positions in
/// the grid in the increasing order", §5).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct View {
    members: Vec<NodeId>,
    set: NodeSet,
}

impl View {
    /// Builds a view from the given members; duplicates are ignored and the
    /// members are sorted into name order.
    pub fn new<I: IntoIterator<Item = NodeId>>(members: I) -> Self {
        let set = NodeSet::from_iter(members);
        View {
            members: set.to_vec(),
            set,
        }
    }

    /// Builds the view `{0, 1, ..., n-1}`.
    pub fn first_n(n: usize) -> Self {
        View::new((0..n as u32).map(NodeId))
    }

    /// Builds a view directly from a node set.
    pub fn from_set(set: NodeSet) -> Self {
        View {
            members: set.to_vec(),
            set,
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the view has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Members in increasing name order.
    #[inline]
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// The members as a set.
    #[inline]
    pub fn set(&self) -> NodeSet {
        self.set
    }

    /// True if `node` is a member.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        self.set.contains(node)
    }

    /// The paper's `ordered-number(V, s)`: the 1-based position that node `s`
    /// occupies in the ordered set `V`, or `None` if `s ∉ V`.
    pub fn ordered_number(&self, node: NodeId) -> Option<usize> {
        self.members.binary_search(&node).ok().map(|i| i + 1)
    }

    /// The member at 1-based position `k`.
    pub fn member_at(&self, k: usize) -> Option<NodeId> {
        self.members.get(k.checked_sub(1)?).copied()
    }
}

impl fmt::Debug for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "View{:?}", self.members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodeset_basic_ops() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        s.insert(NodeId(3));
        s.insert(NodeId(7));
        s.insert(NodeId(3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(3)));
        assert!(!s.contains(NodeId(4)));
        s.remove(NodeId(3));
        assert!(!s.contains(NodeId(3)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn nodeset_algebra() {
        let a = NodeSet::from_iter([NodeId(1), NodeId(2), NodeId(3)]);
        let b = NodeSet::from_iter([NodeId(3), NodeId(4)]);
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b).to_vec(), vec![NodeId(3)]);
        assert_eq!(a.difference(b).to_vec(), vec![NodeId(1), NodeId(2)]);
        assert!(a.intersects(b));
        assert!(!a.is_subset_of(b));
        assert!(NodeSet::singleton(NodeId(3)).is_subset_of(a));
    }

    #[test]
    fn nodeset_first_n_and_bounds() {
        let s = NodeSet::first_n(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s.min(), Some(NodeId(0)));
        assert_eq!(s.max(), Some(NodeId(4)));
        let full = NodeSet::first_n(MAX_NODES);
        assert_eq!(full.len(), MAX_NODES);
        assert_eq!(NodeSet::EMPTY.min(), None);
        assert_eq!(NodeSet::EMPTY.max(), None);
    }

    #[test]
    fn nodeset_iter_sorted() {
        let s = NodeSet::from_iter([NodeId(9), NodeId(0), NodeId(100)]);
        assert_eq!(s.to_vec(), vec![NodeId(0), NodeId(9), NodeId(100)]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn view_ordered_numbers() {
        let v = View::new([NodeId(10), NodeId(2), NodeId(7)]);
        assert_eq!(v.members(), &[NodeId(2), NodeId(7), NodeId(10)]);
        assert_eq!(v.ordered_number(NodeId(2)), Some(1));
        assert_eq!(v.ordered_number(NodeId(7)), Some(2));
        assert_eq!(v.ordered_number(NodeId(10)), Some(3));
        assert_eq!(v.ordered_number(NodeId(3)), None);
        assert_eq!(v.member_at(2), Some(NodeId(7)));
        assert_eq!(v.member_at(0), None);
        assert_eq!(v.member_at(4), None);
    }

    #[test]
    fn view_dedups() {
        let v = View::new([NodeId(1), NodeId(1), NodeId(2)]);
        assert_eq!(v.len(), 2);
    }
}
