//! The grid coterie (§5 of the paper): `DefineGrid`, row-major placement
//! with unoccupied positions in the bottom row (right-justified), and the
//! `IsReadQuorum` / `IsWriteQuorum` predicates, including the optimization
//! noted in the paper's acknowledgements that "write quorums in the grid
//! protocol need include only the part of a grid column that corresponds to
//! physical nodes".

use crate::node::{NodeId, NodeSet, View};
use crate::plan::QuorumPlan;
use crate::rule::{CoterieRule, QuorumKind};
use serde::{Deserialize, Serialize};

/// Grid dimensions as returned by the paper's `DefineGrid` subroutine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub struct GridShape {
    /// Number of rows `m`.
    pub m: usize,
    /// Number of columns `n`.
    pub n: usize,
    /// Number of unoccupied positions `b` (always `< n`), assumed to be in
    /// the bottom row and right-justified.
    pub b: usize,
}

impl GridShape {
    /// The paper's `DefineGrid`: given the number of nodes `N`, returns the
    /// grid dimensions `m × n` and the number of unoccupied positions `b`.
    ///
    /// ```text
    /// m := ⌊√N⌋;  n := ⌈√N⌉;
    /// if m*n < N then m := m+1; endif;
    /// b := m*n - N;
    /// ```
    ///
    /// The rule always yields `m*n ≥ N`, keeps `|m-n| ≤ 1`, and "when
    /// choosing between n×(n+1) and (n+1)×n grids ... chooses the former".
    pub fn define(n_nodes: usize) -> GridShape {
        assert!(n_nodes >= 1, "a grid needs at least one node");
        // Exact integer floor(sqrt(N)); f64 sqrt is only a seed.
        let mut floor_root = (n_nodes as f64).sqrt() as usize;
        while (floor_root + 1) * (floor_root + 1) <= n_nodes {
            floor_root += 1;
        }
        while floor_root * floor_root > n_nodes {
            floor_root -= 1;
        }
        let mut m = floor_root;
        let n = if floor_root * floor_root == n_nodes {
            floor_root
        } else {
            floor_root + 1
        };
        if m * n < n_nodes {
            m += 1;
        }
        let b = m * n - n_nodes;
        debug_assert!(b < n, "DefineGrid invariant: b < n (got {b} >= {n})");
        GridShape { m, n, b }
    }

    /// Number of occupied (physical) positions.
    pub fn occupied(&self) -> usize {
        self.m * self.n - self.b
    }

    /// The physical height of column `j` (1-based): `m` for the first
    /// `n - b` columns, `m - 1` for the `b` right-most columns whose bottom
    /// position is unoccupied.
    pub fn column_height(&self, j: usize) -> usize {
        debug_assert!(j >= 1 && j <= self.n);
        if j <= self.n - self.b {
            self.m
        } else {
            self.m - 1
        }
    }

    /// Coordinates `(i, j)` (1-based, row-major) of the `k`-th node
    /// (`k` 1-based), exactly as in the paper's `IsWriteQuorum`:
    /// `i := quotient((k-1), n) + 1; j := remainder((k-1), n) + 1`.
    pub fn position(&self, k: usize) -> (usize, usize) {
        debug_assert!(k >= 1 && k <= self.occupied());
        let i = (k - 1) / self.n + 1;
        let j = (k - 1) % self.n + 1;
        (i, j)
    }

    /// Inverse of [`position`](GridShape::position): the 1-based ordered
    /// number of the node at `(i, j)`, or `None` for an unoccupied position.
    pub fn ordered_number_at(&self, i: usize, j: usize) -> Option<usize> {
        if i < 1 || i > self.m || j < 1 || j > self.n {
            return None;
        }
        let k = (i - 1) * self.n + j;
        if k <= self.occupied() {
            Some(k)
        } else {
            None
        }
    }

    /// Minimum read quorum size: one representative per column.
    pub fn read_quorum_size(&self) -> usize {
        self.n
    }

    /// Minimum write quorum size: a column cover plus one full physical
    /// column (the covered column's representative is shared), i.e.
    /// `n - 1 + min_column_height`.
    pub fn write_quorum_size(&self) -> usize {
        let min_h = if self.b > 0 { self.m - 1 } else { self.m };
        self.n - 1 + min_h
    }
}

impl GridShape {
    /// The *tall* orientation: `m = ⌈√N⌉` rows, `n = ⌊√N⌋` columns
    /// (growing `n` when the grid falls short). The paper's `DefineGrid`
    /// prefers the wide `n × (n+1)` orientation, which for N = 5 puts a
    /// *single node* in the right-most column — a single point of failure
    /// for every quorum, undermining the §6 claim that grids of four or
    /// more nodes tolerate any single failure (see experiment E10). With
    /// holes at the bottom of the *row-major* layout, the tall orientation
    /// keeps every column at height ≥ m - 1 ≥ 1 with at least two
    /// physical members whenever `N ≥ 4`, restoring the claim.
    pub fn define_tall(n_nodes: usize) -> GridShape {
        assert!(n_nodes >= 1, "a grid needs at least one node");
        let mut floor_root = (n_nodes as f64).sqrt() as usize;
        while (floor_root + 1) * (floor_root + 1) <= n_nodes {
            floor_root += 1;
        }
        while floor_root * floor_root > n_nodes {
            floor_root -= 1;
        }
        let mut m = if floor_root * floor_root == n_nodes {
            floor_root
        } else {
            floor_root + 1
        };
        let n = floor_root;
        if m * n < n_nodes {
            m += 1;
        }
        let b = m * n - n_nodes;
        debug_assert!(b < n || n == 1, "define_tall invariant: b < n");
        GridShape { m, n, b }
    }
}

/// Which grid orientation the rule derives from a view.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum GridOrientation {
    /// The paper's published `DefineGrid`: wide (`n × (n+1)` preferred).
    #[default]
    PaperWide,
    /// The corrected tall orientation (`(n+1) × n` preferred); avoids
    /// singleton columns for every `N ≥ 4`.
    Tall,
}

/// The grid coterie rule. Stateless: the grid is re-derived from each view,
/// which is what makes the protocol *dynamic* (§5: "All we have to do to make
/// this protocol dynamic is design a rule to construct the grid given an
/// arbitrary set V of ordered nodes").
#[derive(Clone, Copy, Debug, Default)]
pub struct GridCoterie {
    orientation: GridOrientation,
}

impl GridCoterie {
    /// Creates the grid rule with the paper's published orientation.
    pub fn new() -> Self {
        GridCoterie {
            orientation: GridOrientation::PaperWide,
        }
    }

    /// Creates the grid rule with the corrected tall orientation (see
    /// [`GridShape::define_tall`]).
    pub fn tall() -> Self {
        GridCoterie {
            orientation: GridOrientation::Tall,
        }
    }

    /// Derives the grid shape for a view of `n` nodes under this rule's
    /// orientation.
    pub fn shape(&self, n_nodes: usize) -> GridShape {
        match self.orientation {
            GridOrientation::PaperWide => GridShape::define(n_nodes),
            GridOrientation::Tall => GridShape::define_tall(n_nodes),
        }
    }

    /// The members of `view` occupying column `j` of the derived grid.
    pub fn column_members(&self, view: &View, j: usize) -> NodeSet {
        let shape = self.shape(view.len());
        let mut set = NodeSet::new();
        for i in 1..=shape.column_height(j) {
            if let Some(k) = shape.ordered_number_at(i, j) {
                if let Some(node) = view.member_at(k) {
                    set.insert(node);
                }
            }
        }
        set
    }

    /// Renders the grid layout for `view` as ASCII art (used to regenerate
    /// the paper's Figures 1 and 2).
    pub fn render(&self, view: &View) -> String {
        let shape = self.shape(view.len());
        let mut out = String::new();
        let width = view
            .members()
            .iter()
            .map(|n| n.to_string().len())
            .max()
            .unwrap_or(1)
            .max(1);
        out.push_str(&format!(
            "grid for N = {}: {} rows x {} columns, {} unoccupied\n",
            view.len(),
            shape.m,
            shape.n,
            shape.b
        ));
        for i in 1..=shape.m {
            for j in 1..=shape.n {
                let cell = match shape.ordered_number_at(i, j) {
                    // lint:allow(panic): ordered numbers are < |view| by construction
                    Some(k) => view.member_at(k).unwrap().to_string(),
                    None => "-".to_string(),
                };
                out.push_str(&format!(" {cell:>width$}"));
            }
            out.push('\n');
        }
        out
    }
}

impl CoterieRule for GridCoterie {
    fn name(&self) -> &'static str {
        match self.orientation {
            GridOrientation::PaperWide => "grid",
            GridOrientation::Tall => "grid-tall",
        }
    }

    fn includes_quorum(&self, view: &View, s: NodeSet, kind: QuorumKind) -> bool {
        if view.is_empty() {
            return false;
        }
        let shape = self.shape(view.len());
        let s = s.intersection(view.set());
        // COLUMN-COVER and COLUMNS[1..n] from the paper's pseudo-code,
        // tracked as per-column counts of covered physical rows.
        let mut covered = vec![false; shape.n + 1];
        let mut col_count = vec![0usize; shape.n + 1];
        for node in s.iter() {
            // `ordered-number(V, s)` is total here because s ⊆ view.
            // lint:allow(panic): s was intersected with the view two lines up
            let k = view.ordered_number(node).expect("s ⊆ view");
            let (_, j) = shape.position(k);
            covered[j] = true;
            col_count[j] += 1;
        }
        let all_covered = (1..=shape.n).all(|j| covered[j]);
        if !all_covered {
            return false;
        }
        match kind {
            QuorumKind::Read => true,
            // "there exists j such that COLUMN[j] = {1..m} if j <= n-b, or
            // {1..m-1} otherwise" — i.e. some column is fully covered over
            // its physical positions.
            QuorumKind::Write => (1..=shape.n).any(|j| col_count[j] == shape.column_height(j)),
        }
    }

    fn compile(&self, view: &View) -> QuorumPlan {
        if view.is_empty() {
            return QuorumPlan::never(view);
        }
        let shape = self.shape(view.len());
        let columns = (1..=shape.n)
            .map(|j| self.column_members(view, j).0)
            .collect();
        QuorumPlan::grid(view, columns)
    }

    fn pick_quorum(
        &self,
        view: &View,
        prefer: NodeSet,
        seed: u64,
        kind: QuorumKind,
    ) -> Option<NodeSet> {
        if view.is_empty() {
            return None;
        }
        let shape = self.shape(view.len());
        let alive = prefer.intersection(view.set());
        let mut quorum = NodeSet::new();

        // For writes, first choose a column whose physical members are all
        // preferred; rotate the starting column by seed for load sharing.
        let full_column = match kind {
            QuorumKind::Read => None,
            QuorumKind::Write => {
                let mut chosen = None;
                for off in 0..shape.n {
                    let j = (seed as usize + off) % shape.n + 1;
                    let col = self.column_members(view, j);
                    if !col.is_empty() && col.is_subset_of(alive) {
                        chosen = Some((j, col));
                        break;
                    }
                }
                let (j, col) = chosen?;
                quorum = quorum.union(col);
                Some(j)
            }
        };

        // One representative from each column, rotated by seed within the
        // column so different coordinators hit different rows.
        for j in 1..=shape.n {
            if full_column == Some(j) {
                continue; // already fully covered
            }
            let col = self.column_members(view, j);
            let members = col.to_vec();
            if members.is_empty() {
                // A column with no physical nodes cannot exist: b < n keeps
                // every column at height >= m-1 >= 1 whenever m >= 2, and for
                // m == 1, b == 0. Defensive regardless.
                return None;
            }
            let alive_members: Vec<NodeId> = members
                .iter()
                .copied()
                .filter(|n| alive.contains(*n))
                .collect();
            if alive_members.is_empty() {
                return None;
            }
            let pick = alive_members[(seed as usize).wrapping_add(j) % alive_members.len()];
            quorum.insert(pick);
        }
        debug_assert!(self.includes_quorum(view, quorum, kind));
        Some(quorum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> NodeSet {
        NodeSet::from_iter(v.iter().map(|&x| NodeId(x)))
    }

    #[test]
    fn define_grid_matches_paper_examples() {
        // Figure 1: N = 14 is a 4x4 grid with 2 unoccupied positions.
        assert_eq!(GridShape::define(14), GridShape { m: 4, n: 4, b: 2 });
        // Figure 2: N = 3 yields a 2x2 grid with one hole.
        assert_eq!(GridShape::define(3), GridShape { m: 2, n: 2, b: 1 });
        // Perfect squares.
        assert_eq!(GridShape::define(9), GridShape { m: 3, n: 3, b: 0 });
        assert_eq!(GridShape::define(16), GridShape { m: 4, n: 4, b: 0 });
        // n x (n+1) preference: N = 12 gives 3x4 (rows x cols).
        assert_eq!(GridShape::define(12), GridShape { m: 3, n: 4, b: 0 });
        assert_eq!(GridShape::define(20), GridShape { m: 4, n: 5, b: 0 });
        assert_eq!(GridShape::define(30), GridShape { m: 5, n: 6, b: 0 });
        assert_eq!(GridShape::define(1), GridShape { m: 1, n: 1, b: 0 });
        assert_eq!(GridShape::define(2), GridShape { m: 1, n: 2, b: 0 });
    }

    #[test]
    fn define_grid_invariants_hold_widely() {
        for n_nodes in 1..=2000 {
            let g = GridShape::define(n_nodes);
            assert!(g.m * g.n >= n_nodes);
            assert_eq!(g.b, g.m * g.n - n_nodes);
            assert!(g.b < g.n, "b < n violated at N={n_nodes}: {g:?}");
            assert!(g.m.abs_diff(g.n) <= 1, "dims differ by >1 at N={n_nodes}");
            assert_eq!(g.occupied(), n_nodes);
        }
    }

    #[test]
    fn positions_round_trip() {
        for n_nodes in 1..=100 {
            let g = GridShape::define(n_nodes);
            for k in 1..=n_nodes {
                let (i, j) = g.position(k);
                assert_eq!(g.ordered_number_at(i, j), Some(k));
                assert!(i <= g.column_height(j), "node {k} beyond physical column");
            }
        }
    }

    #[test]
    fn unoccupied_positions_are_bottom_right() {
        let g = GridShape::define(14); // 4x4, b=2
        assert_eq!(g.ordered_number_at(4, 3), None);
        assert_eq!(g.ordered_number_at(4, 4), None);
        assert_eq!(g.ordered_number_at(4, 2), Some(14));
        assert_eq!(g.column_height(1), 4);
        assert_eq!(g.column_height(2), 4);
        assert_eq!(g.column_height(3), 3);
        assert_eq!(g.column_height(4), 3);
    }

    #[test]
    fn paper_figure1_write_quorum_example() {
        // §5: for N = 14, {1, 6, 3, 7, 11, 4} is a write quorum; the paper
        // labels nodes 1..14, our ids are 0-based so subtract one.
        let view = View::first_n(14);
        let rule = GridCoterie::new();
        let q = ids(&[0, 5, 2, 6, 10, 3]);
        assert!(rule.is_write_quorum(&view, q));
        assert!(rule.is_read_quorum(&view, q));
        // {3, 7, 11} (0-based {2, 6, 10}) covers the physical part of column
        // 3 but is not a read quorum on its own.
        let col = ids(&[2, 6, 10]);
        assert!(!rule.is_read_quorum(&view, col));
        assert!(!rule.is_write_quorum(&view, col));
    }

    #[test]
    fn read_quorum_requires_all_columns() {
        let view = View::first_n(9); // 3x3
        let rule = GridCoterie::new();
        assert!(rule.is_read_quorum(&view, ids(&[0, 1, 2])));
        assert!(rule.is_read_quorum(&view, ids(&[0, 4, 8])));
        assert!(!rule.is_read_quorum(&view, ids(&[0, 3, 6]))); // one column only
        assert!(!rule.is_read_quorum(&view, ids(&[0, 1]))); // column 3 uncovered
    }

    #[test]
    fn write_quorum_requires_full_column() {
        let view = View::first_n(9); // 3x3, columns {0,3,6},{1,4,7},{2,5,8}
        let rule = GridCoterie::new();
        assert!(!rule.is_write_quorum(&view, ids(&[0, 1, 2])));
        assert!(rule.is_write_quorum(&view, ids(&[0, 3, 6, 1, 2])));
        assert!(rule.is_write_quorum(&view, ids(&[1, 4, 7, 0, 8])));
        // Full column but missing a representative elsewhere.
        assert!(!rule.is_write_quorum(&view, ids(&[0, 3, 6, 1])));
    }

    #[test]
    fn short_column_counts_as_full_when_physically_covered() {
        // N = 3: 2x2 grid, hole at (2,2). Column 2 physically holds only
        // node 2 (0-based 1), so {node0?, ...}. Per the optimized rule,
        // {0,1} covers both columns and column 2 is physically full.
        let view = View::first_n(3);
        let rule = GridCoterie::new();
        assert!(rule.is_write_quorum(&view, ids(&[0, 1])));
        assert!(rule.is_write_quorum(&view, ids(&[1, 2])));
        // {0,2} is all of column 1 but leaves column 2 uncovered.
        assert!(!rule.is_write_quorum(&view, ids(&[0, 2])));
        assert!(!rule.is_read_quorum(&view, ids(&[0, 2])));
    }

    #[test]
    fn quorum_ignores_nodes_outside_view() {
        let view = View::new([NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let rule = GridCoterie::new();
        let with_stranger = ids(&[0, 1, 99]);
        let without = ids(&[0, 1]);
        assert_eq!(
            rule.is_write_quorum(&view, with_stranger),
            rule.is_write_quorum(&view, without)
        );
    }

    #[test]
    fn grid_over_non_contiguous_names() {
        // The dynamic protocol re-derives the grid over epoch survivors with
        // arbitrary names.
        let view = View::new([NodeId(5), NodeId(9), NodeId(17), NodeId(40)]); // 2x2
        let rule = GridCoterie::new();
        // Columns: {5, 17} and {9, 40}.
        assert_eq!(rule.column_members(&view, 1), ids(&[5, 17]));
        assert_eq!(rule.column_members(&view, 2), ids(&[9, 40]));
        assert!(rule.is_write_quorum(&view, ids(&[5, 17, 9])));
        assert!(!rule.is_write_quorum(&view, ids(&[5, 9])));
        assert!(rule.is_read_quorum(&view, ids(&[5, 9])));
    }

    #[test]
    fn pick_quorum_returns_valid_quorums() {
        let rule = GridCoterie::new();
        for n in 1..=30 {
            let view = View::first_n(n);
            for seed in 0..8 {
                let rq = rule
                    .pick_quorum(&view, view.set(), seed, QuorumKind::Read)
                    .unwrap();
                assert!(rule.is_read_quorum(&view, rq), "N={n} seed={seed}");
                let wq = rule
                    .pick_quorum(&view, view.set(), seed, QuorumKind::Write)
                    .unwrap();
                assert!(rule.is_write_quorum(&view, wq), "N={n} seed={seed}");
            }
        }
    }

    #[test]
    fn pick_quorum_respects_preferences() {
        let rule = GridCoterie::new();
        let view = View::first_n(9);
        // Node 4 down: quorums avoid it.
        let mut alive = view.set();
        alive.remove(NodeId(4));
        let q = rule
            .pick_quorum(&view, alive, 3, QuorumKind::Write)
            .unwrap();
        assert!(!q.contains(NodeId(4)));
        // A whole column down: no write quorum.
        let mut dead_col = view.set();
        dead_col.remove(NodeId(1));
        dead_col.remove(NodeId(4));
        dead_col.remove(NodeId(7));
        assert!(rule
            .pick_quorum(&view, dead_col, 0, QuorumKind::Read)
            .is_none());
    }

    #[test]
    fn pick_quorum_spreads_load() {
        let rule = GridCoterie::new();
        let view = View::first_n(16);
        let mut distinct = std::collections::BTreeSet::new();
        for seed in 0..16 {
            distinct.insert(
                rule.pick_quorum(&view, view.set(), seed, QuorumKind::Read)
                    .unwrap(),
            );
        }
        assert!(distinct.len() > 1, "quorum function should vary with seed");
    }

    #[test]
    fn quorum_size_formulas() {
        // Square grids: read = sqrt(N), write = 2 sqrt(N) - 1 (§1).
        for root in 2..=10usize {
            let n_nodes = root * root;
            let g = GridShape::define(n_nodes);
            assert_eq!(g.read_quorum_size(), root);
            assert_eq!(g.write_quorum_size(), 2 * root - 1);
        }
    }

    #[test]
    fn tall_orientation_avoids_singleton_columns() {
        for n_nodes in 4..=200 {
            let g = GridShape::define_tall(n_nodes);
            assert!(g.m * g.n >= n_nodes);
            assert_eq!(g.occupied(), n_nodes);
            assert!(g.m >= g.n, "tall means rows >= columns: {g:?}");
            for j in 1..=g.n {
                assert!(
                    g.column_height(j) >= 2,
                    "N={n_nodes}: column {j} of {g:?} has a singleton"
                );
            }
        }
        // The N = 5 defect of the published rule, fixed.
        assert_eq!(GridShape::define_tall(5), GridShape { m: 3, n: 2, b: 1 });
        // N = 3 degenerates to a single column: all three nodes in every
        // quorum — exactly the paper's Figure 2 narrative.
        assert_eq!(GridShape::define_tall(3), GridShape { m: 3, n: 1, b: 0 });
    }

    #[test]
    fn tall_rule_tolerates_single_failures_from_four_nodes() {
        let rule = GridCoterie::tall();
        for n in 4..=30usize {
            let view = View::first_n(n);
            for &victim in view.members() {
                let mut survivors = view.set();
                survivors.remove(victim);
                assert!(
                    rule.is_write_quorum(&view, survivors),
                    "tall grid of {n} must survive any single failure (victim {victim:?})"
                );
            }
        }
        // And quorum selection works.
        for n in [4usize, 5, 9, 14] {
            let view = View::first_n(n);
            let q = rule
                .pick_quorum(&view, view.set(), 3, QuorumKind::Write)
                .unwrap();
            assert!(rule.is_write_quorum(&view, q));
        }
    }

    #[test]
    fn render_shows_holes() {
        let rule = GridCoterie::new();
        let art = rule.render(&View::first_n(14));
        assert!(art.contains('-'));
        assert!(art.contains("4 rows x 4 columns"));
    }
}
