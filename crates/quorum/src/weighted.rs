//! Weighted voting (Gifford \[6\], Garcia-Molina & Barbara \[8\]): each node
//! carries a vote weight; a write quorum needs more than half the total view
//! weight and a read quorum needs `total + 1 - w` votes.

use crate::node::{NodeId, NodeSet, View};
use crate::plan::QuorumPlan;
use crate::rule::{CoterieRule, QuorumKind};

/// A weighted voting coterie. Nodes without an explicit weight get
/// the default weight (1, see [`with_default_weight`](WeightedCoterie::with_default_weight)).
///
/// Thresholds over a view with total weight `T`: write quorums gather
/// `W = ⌊T/2⌋ + 1` votes and read quorums `R = T + 1 - W`, so `R + W > T`
/// and `2W > T` hold and both intersection properties follow.
#[derive(Clone, Debug)]
pub struct WeightedCoterie {
    weights: Vec<(NodeId, u64)>,
    default_weight: u64,
}

impl WeightedCoterie {
    /// Creates a weighted coterie with the given explicit weights; all other
    /// nodes weigh 1. Zero-weight nodes ("witness-less" replicas) are
    /// allowed and simply never contribute votes.
    pub fn new<I: IntoIterator<Item = (NodeId, u64)>>(weights: I) -> Self {
        let mut weights: Vec<(NodeId, u64)> = weights.into_iter().collect();
        weights.sort_by_key(|(n, _)| *n);
        weights.dedup_by_key(|(n, _)| *n);
        WeightedCoterie {
            weights,
            default_weight: 1,
        }
    }

    /// Changes the weight assigned to nodes with no explicit entry.
    pub fn with_default_weight(mut self, w: u64) -> Self {
        self.default_weight = w;
        self
    }

    /// The vote weight of `node`.
    pub fn weight(&self, node: NodeId) -> u64 {
        match self.weights.binary_search_by_key(&node, |(n, _)| *n) {
            Ok(i) => self.weights[i].1,
            Err(_) => self.default_weight,
        }
    }

    /// Total vote weight of a view.
    pub fn total_weight(&self, view: &View) -> u64 {
        view.members().iter().map(|&n| self.weight(n)).sum()
    }

    /// Vote weight of `s ∩ view`.
    pub fn set_weight(&self, view: &View, s: NodeSet) -> u64 {
        s.intersection(view.set())
            .iter()
            .map(|n| self.weight(n))
            .sum()
    }

    fn threshold(&self, view: &View, kind: QuorumKind) -> u64 {
        let total = self.total_weight(view);
        let write = total / 2 + 1;
        match kind {
            QuorumKind::Write => write,
            QuorumKind::Read => total + 1 - write,
        }
    }
}

impl CoterieRule for WeightedCoterie {
    fn name(&self) -> &'static str {
        "weighted-voting"
    }

    fn includes_quorum(&self, view: &View, s: NodeSet, kind: QuorumKind) -> bool {
        if view.is_empty() || self.total_weight(view) == 0 {
            return false;
        }
        self.set_weight(view, s) >= self.threshold(view, kind)
    }

    fn compile(&self, view: &View) -> QuorumPlan {
        if view.is_empty() || self.total_weight(view) == 0 {
            return QuorumPlan::never(view);
        }
        let weights: Vec<(u128, u64)> = view
            .members()
            .iter()
            .map(|&n| (1u128 << n.index(), self.weight(n)))
            .filter(|&(_, w)| w > 0)
            .collect();
        QuorumPlan::weighted(
            view,
            weights,
            self.threshold(view, QuorumKind::Read),
            self.threshold(view, QuorumKind::Write),
        )
    }

    fn pick_quorum(
        &self,
        view: &View,
        prefer: NodeSet,
        seed: u64,
        kind: QuorumKind,
    ) -> Option<NodeSet> {
        if view.is_empty() || self.total_weight(view) == 0 {
            return None;
        }
        let need = self.threshold(view, kind);
        let candidates = prefer.intersection(view.set()).to_vec();
        if candidates.is_empty() {
            return None;
        }
        // Greedy: walk the candidate ring from a seed-dependent start,
        // heaviest-first within the rotation, until the threshold is met.
        let start = (seed as usize) % candidates.len();
        let mut rotated: Vec<NodeId> = candidates[start..]
            .iter()
            .chain(&candidates[..start])
            .copied()
            .collect();
        rotated.sort_by_key(|&n| std::cmp::Reverse(self.weight(n)));
        let mut quorum = NodeSet::new();
        let mut votes = 0u64;
        for node in candidates[start..].iter().chain(&candidates[..start]) {
            if votes >= need {
                break;
            }
            quorum.insert(*node);
            votes += self.weight(*node);
        }
        if votes < need {
            // Ring walk fell short (zero-weight members); fall back to
            // heaviest-first to use the fewest nodes.
            quorum = NodeSet::new();
            votes = 0;
            for node in rotated {
                if votes >= need {
                    break;
                }
                quorum.insert(node);
                votes += self.weight(node);
            }
        }
        if votes >= need {
            debug_assert!(self.includes_quorum(view, quorum, kind));
            Some(quorum)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> NodeSet {
        NodeSet::from_iter(v.iter().map(|&x| NodeId(x)))
    }

    #[test]
    fn unit_weights_behave_like_majority() {
        let c = WeightedCoterie::new([]);
        let view = View::first_n(5);
        assert!(c.is_write_quorum(&view, ids(&[0, 1, 2])));
        assert!(!c.is_write_quorum(&view, ids(&[0, 1])));
        assert!(c.is_read_quorum(&view, ids(&[2, 3, 4])));
    }

    #[test]
    fn heavy_node_dominates() {
        // Node 0 has 3 votes, others 1 each: total = 7, W = 4.
        let c = WeightedCoterie::new([(NodeId(0), 3)]);
        let view = View::first_n(5);
        assert!(c.is_write_quorum(&view, ids(&[0, 1]))); // 4 votes
        assert!(!c.is_write_quorum(&view, ids(&[1, 2, 3]))); // 3 votes
        assert!(c.is_write_quorum(&view, ids(&[1, 2, 3, 4]))); // 4 votes
    }

    #[test]
    fn zero_weight_nodes_never_vote() {
        let c = WeightedCoterie::new([(NodeId(4), 0)]);
        let view = View::first_n(5); // total = 4, W = 3
        assert!(!c.is_write_quorum(&view, ids(&[0, 1, 4])));
        assert!(c.is_write_quorum(&view, ids(&[0, 1, 2])));
    }

    #[test]
    fn all_zero_weights_mean_no_quorum() {
        let c = WeightedCoterie::new([]).with_default_weight(0);
        let view = View::first_n(3);
        assert!(!c.is_write_quorum(&view, view.set()));
        assert!(c
            .pick_quorum(&view, view.set(), 0, QuorumKind::Write)
            .is_none());
    }

    #[test]
    fn pick_quorum_meets_threshold() {
        let c = WeightedCoterie::new([(NodeId(0), 5), (NodeId(1), 2)]);
        let view = View::first_n(6); // total = 5+2+4 = 11, W = 6
        for seed in 0..6 {
            let q = c
                .pick_quorum(&view, view.set(), seed, QuorumKind::Write)
                .unwrap();
            assert!(c.is_write_quorum(&view, q), "seed {seed}");
        }
        // Without the heavy node, remaining weight is 6 = W: still possible.
        let mut alive = view.set();
        alive.remove(NodeId(0));
        assert!(c.pick_quorum(&view, alive, 0, QuorumKind::Write).is_some());
        // Without nodes 0 and 1, weight is 4 < 6: impossible.
        alive.remove(NodeId(1));
        assert!(c.pick_quorum(&view, alive, 0, QuorumKind::Write).is_none());
    }

    #[test]
    fn weights_follow_view_membership() {
        let c = WeightedCoterie::new([(NodeId(9), 10)]);
        let small_view = View::first_n(3); // node 9 absent: total 3, W 2
        assert!(c.is_write_quorum(&small_view, ids(&[0, 1])));
        let big_view = View::new((0..10).map(NodeId)); // total 19, W 10
        assert!(c.is_write_quorum(&big_view, ids(&[9])));
        assert!(!c.is_write_quorum(&big_view, ids(&[0, 1, 2, 3, 4, 5, 6, 7, 8])));
    }
}
