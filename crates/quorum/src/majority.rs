//! Voting coteries with unit votes (Gifford \[6\]): majority quorums and
//! general read/write threshold pairs with `r + w > N` and `2w > N`.

use crate::node::{NodeSet, View};
use crate::plan::QuorumPlan;
use crate::rule::{CoterieRule, QuorumKind};

/// How the write quorum size is derived from the view size `N`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteSize {
    /// `⌊N/2⌋ + 1` — plain majority.
    Majority,
    /// `max(⌊N/2⌋ + 1, ⌈pct·N/100⌉)` — a biased write quorum; the read
    /// quorum shrinks correspondingly (`r = N + 1 - w`).
    Percent(u8),
    /// `max(⌊N/2⌋ + 1, min(k, N))` — a fixed target size, clamped to stay a
    /// legal write quorum.
    AtLeast(usize),
}

/// A voting coterie with one vote per node.
///
/// Write quorums are any `w` nodes and read quorums any `r = N + 1 - w`
/// nodes, which guarantees both intersection properties. This is the
/// protocol the paper contrasts with structured coteries: "the voting
/// protocol \[6\], where the quorum size in the simplest case is ⌊(N+1)/2⌋".
#[derive(Clone, Copy, Debug)]
pub struct VotingCoterie {
    write_size: WriteSize,
}

impl VotingCoterie {
    /// Majority read and write quorums.
    pub fn majority() -> Self {
        VotingCoterie {
            write_size: WriteSize::Majority,
        }
    }

    /// A voting coterie with the given write-size policy.
    pub fn with_write_size(write_size: WriteSize) -> Self {
        VotingCoterie { write_size }
    }

    /// Write quorum size for a view of `n` nodes.
    pub fn write_quorum_size(&self, n: usize) -> usize {
        let majority = n / 2 + 1;
        match self.write_size {
            WriteSize::Majority => majority,
            WriteSize::Percent(pct) => {
                let target = (n * pct as usize).div_ceil(100);
                target.clamp(majority, n)
            }
            WriteSize::AtLeast(k) => k.clamp(majority, n),
        }
    }

    /// Read quorum size for a view of `n` nodes: `N + 1 - w`.
    pub fn read_quorum_size(&self, n: usize) -> usize {
        n + 1 - self.write_quorum_size(n)
    }

    fn quorum_size(&self, n: usize, kind: QuorumKind) -> usize {
        match kind {
            QuorumKind::Read => self.read_quorum_size(n),
            QuorumKind::Write => self.write_quorum_size(n),
        }
    }
}

/// The common case: majority voting.
pub type MajorityCoterie = VotingCoterie;

impl MajorityCoterie {
    /// Alias for [`VotingCoterie::majority`].
    pub fn new() -> Self {
        VotingCoterie::majority()
    }
}

impl Default for VotingCoterie {
    fn default() -> Self {
        VotingCoterie::majority()
    }
}

impl CoterieRule for VotingCoterie {
    fn name(&self) -> &'static str {
        match self.write_size {
            WriteSize::Majority => "majority",
            _ => "voting",
        }
    }

    fn includes_quorum(&self, view: &View, s: NodeSet, kind: QuorumKind) -> bool {
        if view.is_empty() {
            return false;
        }
        let present = s.intersection(view.set()).len();
        present >= self.quorum_size(view.len(), kind)
    }

    fn compile(&self, view: &View) -> QuorumPlan {
        if view.is_empty() {
            return QuorumPlan::never(view);
        }
        let n = view.len();
        QuorumPlan::threshold(view, self.read_quorum_size(n), self.write_quorum_size(n))
    }

    fn pick_quorum(
        &self,
        view: &View,
        prefer: NodeSet,
        seed: u64,
        kind: QuorumKind,
    ) -> Option<NodeSet> {
        if view.is_empty() {
            return None;
        }
        let need = self.quorum_size(view.len(), kind);
        let candidates = prefer.intersection(view.set()).to_vec();
        if candidates.len() < need {
            return None;
        }
        // Rotate the candidate ring by the seed for load sharing.
        let start = (seed as usize) % candidates.len();
        let mut quorum = NodeSet::new();
        for off in 0..need {
            quorum.insert(candidates[(start + off) % candidates.len()]);
        }
        debug_assert!(self.includes_quorum(view, quorum, kind));
        Some(quorum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    #[test]
    fn majority_sizes() {
        let m = MajorityCoterie::new();
        assert_eq!(m.write_quorum_size(5), 3);
        assert_eq!(m.read_quorum_size(5), 3);
        assert_eq!(m.write_quorum_size(6), 4);
        assert_eq!(m.read_quorum_size(6), 3);
        assert_eq!(m.write_quorum_size(1), 1);
    }

    #[test]
    fn thresholds_respect_invariants() {
        for pct in [0u8, 30, 50, 75, 100] {
            let c = VotingCoterie::with_write_size(WriteSize::Percent(pct));
            for n in 1..=40 {
                let w = c.write_quorum_size(n);
                let r = c.read_quorum_size(n);
                assert!(2 * w > n, "2w > N violated: n={n} pct={pct}");
                assert!(r + w > n, "r+w > N violated: n={n} pct={pct}");
                assert!(w <= n && r >= 1 && r <= n);
            }
        }
        for k in [0usize, 2, 7, 100] {
            let c = VotingCoterie::with_write_size(WriteSize::AtLeast(k));
            for n in 1..=40 {
                let w = c.write_quorum_size(n);
                assert!(2 * w > n && w <= n);
            }
        }
    }

    #[test]
    fn quorum_predicate_counts_view_members_only() {
        let c = MajorityCoterie::new();
        let view = View::first_n(5);
        let mut s = NodeSet::from_iter([NodeId(0), NodeId(1)]);
        s.insert(NodeId(70)); // outside the view
        assert!(!c.is_write_quorum(&view, s));
        s.insert(NodeId(2));
        assert!(c.is_write_quorum(&view, s));
    }

    #[test]
    fn pick_quorum_is_valid_and_spreads() {
        let c = MajorityCoterie::new();
        let view = View::first_n(7);
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..7 {
            let q = c
                .pick_quorum(&view, view.set(), seed, QuorumKind::Write)
                .unwrap();
            assert_eq!(q.len(), 4);
            assert!(c.is_write_quorum(&view, q));
            seen.insert(q);
        }
        assert!(seen.len() > 1);
    }

    #[test]
    fn pick_quorum_fails_without_enough_alive() {
        let c = MajorityCoterie::new();
        let view = View::first_n(5);
        let alive = NodeSet::from_iter([NodeId(0), NodeId(1)]);
        assert!(c.pick_quorum(&view, alive, 0, QuorumKind::Write).is_none());
        let alive3 = NodeSet::from_iter([NodeId(0), NodeId(1), NodeId(4)]);
        let q = c.pick_quorum(&view, alive3, 0, QuorumKind::Write).unwrap();
        assert!(q.is_subset_of(alive3));
    }
}
