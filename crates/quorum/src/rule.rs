//! The coterie rule abstraction (§4 of the paper).
//!
//! "We assume that all nodes agree on a *coterie rule* which defines a
//! coterie over an arbitrary ordered set of nodes. Given two sets of nodes V
//! and S, coterie-rule(V, S) is true if S includes a write (read) quorum over
//! V, and false otherwise. We also assume that there is a *quorum function*
//! that, given a set of nodes V and a node name, yields a list of nodes
//! representing some quorum over V."

use crate::node::{NodeId, NodeSet, View};
use crate::plan::QuorumPlan;

/// Which kind of quorum is being asked about.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum QuorumKind {
    /// A read quorum: must intersect every write quorum.
    Read,
    /// A write quorum: must intersect every read and every write quorum.
    Write,
}

/// A rule that unambiguously imposes a coterie on any ordered node set.
///
/// Implementations must satisfy, for every view `V`:
///
/// 1. **Write/write intersection**: any two sets for which
///    [`is_write_quorum`](CoterieRule::is_write_quorum) holds intersect.
/// 2. **Read/write intersection**: any set for which
///    [`is_read_quorum`](CoterieRule::is_read_quorum) holds intersects every
///    write quorum.
/// 3. **Monotonicity**: if `S ⊆ T` and `S` includes a quorum, so does `T`
///    (the predicate tests "includes a quorum", not "is a minimal quorum").
///
/// These are exactly the properties the paper's correctness proof (§4.4)
/// relies on; the property-based tests in this crate check them for every
/// shipped rule.
pub trait CoterieRule: Send + Sync + std::fmt::Debug {
    /// Human-readable rule name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// The paper's `coterie-rule(V, S)` for the given quorum kind. `S` is
    /// implicitly intersected with `V`: members of `S` outside the view never
    /// help form a quorum.
    fn includes_quorum(&self, view: &View, s: NodeSet, kind: QuorumKind) -> bool;

    /// The paper's *quorum function*: yields some quorum over `view`,
    /// preferring members of `prefer` (believed-up nodes) and varying the
    /// choice with `seed` for load sharing ("it is desirable ... that the
    /// quorum function yield different quorums for different node names").
    ///
    /// Returns `None` if no quorum can be drawn from `prefer ∩ view`; callers
    /// may retry with `prefer = view.set()` to get an optimistic quorum.
    fn pick_quorum(
        &self,
        view: &View,
        prefer: NodeSet,
        seed: u64,
        kind: QuorumKind,
    ) -> Option<NodeSet>;

    /// Compiles this rule against a fixed view into a [`QuorumPlan`]: a
    /// bitmask evaluator answering `coterie-rule(V, S)` for that view with
    /// a few word operations and no allocation. Callers that test many
    /// candidate sets against one view (response classification,
    /// availability models, quorum enumeration) should compile once per
    /// view and evaluate through the plan.
    ///
    /// The default implementation returns a fallback plan that retains the
    /// view and answers through the legacy
    /// [`includes_quorum`](CoterieRule::includes_quorum) predicate (via
    /// [`QuorumPlan::includes_quorum_with`]), so every rule is compilable;
    /// the shipped rules all override this with genuinely compiled forms.
    ///
    /// Implementations must be *observationally equivalent*: for every
    /// `S` and kind, the plan's answer must equal
    /// `self.includes_quorum(view, s, kind)`.
    fn compile(&self, view: &View) -> QuorumPlan {
        QuorumPlan::fallback(view)
    }

    /// Convenience: `coterie-rule` restricted to read quorums.
    fn is_read_quorum(&self, view: &View, s: NodeSet) -> bool {
        self.includes_quorum(view, s, QuorumKind::Read)
    }

    /// Convenience: `coterie-rule` restricted to write quorums.
    fn is_write_quorum(&self, view: &View, s: NodeSet) -> bool {
        self.includes_quorum(view, s, QuorumKind::Write)
    }
}

/// Deterministically derives a per-coordinator seed for the quorum function
/// from a node name and an operation counter, so that different coordinators
/// spread load over different quorums while remaining reproducible.
pub fn quorum_seed(coordinator: NodeId, op_seq: u64) -> u64 {
    // SplitMix64 finalizer: cheap, well-mixed, dependency-free.
    let mut z = (coordinator.0 as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(op_seq);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Checks whether `quorum` is a *minimal* quorum: removing any member
/// destroys the quorum property. Useful for tests and enumeration.
pub fn is_minimal_quorum(
    rule: &dyn CoterieRule,
    view: &View,
    quorum: NodeSet,
    kind: QuorumKind,
) -> bool {
    if !rule.includes_quorum(view, quorum, kind) {
        return false;
    }
    for node in quorum.iter() {
        let mut reduced = quorum;
        reduced.remove(node);
        if rule.includes_quorum(view, reduced, kind) {
            return false;
        }
    }
    true
}

/// Shrinks `s` to a minimal quorum by greedily dropping members (highest
/// names first) while the quorum property is preserved. Returns `None` if `s`
/// does not include a quorum to begin with.
pub fn minimize_quorum(
    rule: &dyn CoterieRule,
    view: &View,
    s: NodeSet,
    kind: QuorumKind,
) -> Option<NodeSet> {
    if !rule.includes_quorum(view, s, kind) {
        return None;
    }
    let mut q = s;
    let mut members = q.to_vec();
    members.reverse();
    for node in members {
        let mut reduced = q;
        reduced.remove(node);
        if rule.includes_quorum(view, reduced, kind) {
            q = reduced;
        }
    }
    Some(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::majority::MajorityCoterie;

    #[test]
    fn quorum_seed_spreads() {
        let a = quorum_seed(NodeId(0), 0);
        let b = quorum_seed(NodeId(1), 0);
        let c = quorum_seed(NodeId(0), 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Deterministic.
        assert_eq!(a, quorum_seed(NodeId(0), 0));
    }

    #[test]
    fn minimize_yields_minimal() {
        let rule = MajorityCoterie::new();
        let view = View::first_n(5);
        let all = view.set();
        let q = minimize_quorum(&rule, &view, all, QuorumKind::Write).unwrap();
        assert_eq!(q.len(), 3);
        assert!(is_minimal_quorum(&rule, &view, q, QuorumKind::Write));
        assert!(!is_minimal_quorum(&rule, &view, all, QuorumKind::Write));
    }

    #[test]
    fn minimize_rejects_non_quorum() {
        let rule = MajorityCoterie::new();
        let view = View::first_n(5);
        let s = NodeSet::from_iter([NodeId(0), NodeId(1)]);
        assert!(minimize_quorum(&rule, &view, s, QuorumKind::Write).is_none());
    }
}
