//! Hierarchical quorum consensus (Kumar, cited as \[10\] in the paper):
//! nodes are organized into a recursive hierarchy of groups and a quorum
//! must satisfy a majority of subgroups at every level. Quorum sizes grow as
//! roughly `N^0.63`, between the grid's `O(√N)` and voting's `O(N)`.
//!
//! Like the grid, the hierarchy is derived deterministically from the
//! ordered view, so the rule plugs directly into the dynamic epoch protocol.

use crate::node::{NodeSet, View};
use crate::plan::{QuorumPlan, TreeGroup};
use crate::rule::{CoterieRule, QuorumKind};

/// Hierarchical (tree) quorum coterie with a configurable branching factor.
///
/// Read and write quorums coincide (majority-of-majorities at every level),
/// which satisfies both intersection properties: two quorums each satisfy
/// strict majorities of the same group's children and therefore share a
/// child, recursively down to a shared leaf.
#[derive(Clone, Copy, Debug)]
pub struct TreeCoterie {
    branching: usize,
}

impl TreeCoterie {
    /// Creates a tree coterie with the classic branching factor of 3.
    pub fn new() -> Self {
        TreeCoterie { branching: 3 }
    }

    /// Creates a tree coterie with the given branching factor (≥ 2).
    pub fn with_branching(branching: usize) -> Self {
        assert!(branching >= 2, "branching factor must be at least 2");
        TreeCoterie { branching }
    }

    /// Recursively checks whether the members of `present` (given as
    /// positions `lo..hi` within the ordered view) satisfy the hierarchy.
    fn check(&self, view: &View, present: NodeSet, lo: usize, hi: usize) -> bool {
        let len = hi - lo;
        debug_assert!(len >= 1);
        if len == 1 {
            let node = view.members()[lo];
            return present.contains(node);
        }
        if len <= self.branching {
            // Leaf group: strict majority of its members.
            let have = (lo..hi)
                .filter(|&i| present.contains(view.members()[i]))
                .count();
            return have > len / 2;
        }
        // Internal group: split into `branching` nearly equal children and
        // require a strict majority of satisfied children.
        let children = self.split(lo, hi);
        let satisfied = children
            .iter()
            .filter(|&&(clo, chi)| self.check(view, present, clo, chi))
            .count();
        satisfied > children.len() / 2
    }

    /// Splits positions `lo..hi` into `branching` contiguous, nearly equal,
    /// non-empty ranges.
    fn split(&self, lo: usize, hi: usize) -> Vec<(usize, usize)> {
        let len = hi - lo;
        let k = self.branching.min(len);
        let base = len / k;
        let extra = len % k;
        let mut out = Vec::with_capacity(k);
        let mut start = lo;
        for c in 0..k {
            let sz = base + usize::from(c < extra);
            out.push((start, start + sz));
            start += sz;
        }
        debug_assert_eq!(start, hi);
        out
    }

    /// Flattens the hierarchy for positions `lo..hi` into `out` (children
    /// before parents), returning the index of the group for this range.
    fn flatten(&self, view: &View, lo: usize, hi: usize, out: &mut Vec<TreeGroup>) -> usize {
        let len = hi - lo;
        debug_assert!(len >= 1);
        if len <= self.branching {
            let mut mask = 0u128;
            for i in lo..hi {
                mask |= 1u128 << view.members()[i].index();
            }
            out.push(TreeGroup::Leaf {
                mask,
                need: (len / 2 + 1) as u32,
            });
        } else {
            let children: Vec<usize> = self
                .split(lo, hi)
                .into_iter()
                .map(|(clo, chi)| self.flatten(view, clo, chi, out))
                .collect();
            let need = (children.len() / 2 + 1) as u32;
            out.push(TreeGroup::Inner { children, need });
        }
        out.len() - 1
    }

    /// Greedily assembles a quorum from preferred nodes for positions
    /// `lo..hi`, returning the chosen set or `None` if impossible.
    fn build(
        &self,
        view: &View,
        prefer: NodeSet,
        seed: u64,
        lo: usize,
        hi: usize,
    ) -> Option<NodeSet> {
        let len = hi - lo;
        if len == 1 {
            let node = view.members()[lo];
            return prefer.contains(node).then(|| NodeSet::singleton(node));
        }
        if len <= self.branching {
            let need = len / 2 + 1;
            let mut picked = NodeSet::new();
            let mut have = 0;
            for off in 0..len {
                let i = lo + (off + seed as usize) % len;
                let node = view.members()[i];
                if prefer.contains(node) {
                    picked.insert(node);
                    have += 1;
                    if have == need {
                        return Some(picked);
                    }
                }
            }
            return None;
        }
        let children = self.split(lo, hi);
        let need = children.len() / 2 + 1;
        let mut picked = NodeSet::new();
        let mut have = 0;
        for off in 0..children.len() {
            let (clo, chi) = children[(off + seed as usize) % children.len()];
            if let Some(sub) = self.build(view, prefer, seed.rotate_left(7), clo, chi) {
                picked = picked.union(sub);
                have += 1;
                if have == need {
                    return Some(picked);
                }
            }
        }
        None
    }
}

impl Default for TreeCoterie {
    fn default() -> Self {
        TreeCoterie::new()
    }
}

impl CoterieRule for TreeCoterie {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn includes_quorum(&self, view: &View, s: NodeSet, _kind: QuorumKind) -> bool {
        if view.is_empty() {
            return false;
        }
        self.check(view, s.intersection(view.set()), 0, view.len())
    }

    fn compile(&self, view: &View) -> QuorumPlan {
        if view.is_empty() {
            return QuorumPlan::never(view);
        }
        let mut groups = Vec::new();
        self.flatten(view, 0, view.len(), &mut groups);
        QuorumPlan::tree(view, groups)
    }

    fn pick_quorum(
        &self,
        view: &View,
        prefer: NodeSet,
        seed: u64,
        _kind: QuorumKind,
    ) -> Option<NodeSet> {
        if view.is_empty() {
            return None;
        }
        let q = self.build(view, prefer.intersection(view.set()), seed, 0, view.len())?;
        debug_assert!(self.includes_quorum(view, q, QuorumKind::Write));
        Some(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn ids(v: &[u32]) -> NodeSet {
        NodeSet::from_iter(v.iter().map(|&x| NodeId(x)))
    }

    #[test]
    fn singleton_view() {
        let t = TreeCoterie::new();
        let view = View::first_n(1);
        assert!(t.is_write_quorum(&view, ids(&[0])));
        assert!(!t.is_write_quorum(&view, NodeSet::EMPTY));
    }

    #[test]
    fn leaf_group_majority() {
        let t = TreeCoterie::new();
        let view = View::first_n(3);
        assert!(t.is_write_quorum(&view, ids(&[0, 1])));
        assert!(!t.is_write_quorum(&view, ids(&[2])));
    }

    #[test]
    fn nine_nodes_majority_of_majorities() {
        // 9 nodes split 3/3/3: need majorities in 2 of 3 groups.
        let t = TreeCoterie::new();
        let view = View::first_n(9);
        // Groups {0,1,2}, {3,4,5}, {6,7,8}.
        assert!(t.is_write_quorum(&view, ids(&[0, 1, 3, 4])));
        assert!(!t.is_write_quorum(&view, ids(&[0, 1, 3])));
        assert!(!t.is_write_quorum(&view, ids(&[0, 3, 6])));
        assert!(t.is_write_quorum(&view, ids(&[1, 2, 7, 8])));
    }

    #[test]
    fn any_two_quorums_intersect_exhaustively() {
        // Brute force the intersection property for small views.
        let t = TreeCoterie::new();
        for n in 1..=9usize {
            let view = View::first_n(n);
            let mut quorums = Vec::new();
            for mask in 0u32..(1 << n) {
                let s = NodeSet(mask as u128);
                if t.is_write_quorum(&view, s) {
                    quorums.push(s);
                }
            }
            for &a in &quorums {
                for &b in &quorums {
                    assert!(a.intersects(b), "disjoint quorums at n={n}: {a:?} {b:?}");
                }
            }
        }
    }

    #[test]
    fn quorum_smaller_than_majority_for_large_n() {
        let t = TreeCoterie::new();
        let view = View::first_n(27);
        let q = t
            .pick_quorum(&view, view.set(), 0, QuorumKind::Write)
            .unwrap();
        // Hierarchical quorum over 27 nodes needs 2*2*2 = 8 < 14 nodes.
        assert!(
            q.len() <= 8,
            "expected compact tree quorum, got {}",
            q.len()
        );
        assert!(t.is_write_quorum(&view, q));
    }

    #[test]
    fn pick_quorum_avoids_down_nodes() {
        let t = TreeCoterie::new();
        let view = View::first_n(9);
        let mut alive = view.set();
        // Kill group {0,1,2} entirely: quorum must come from other groups.
        alive.remove(NodeId(0));
        alive.remove(NodeId(1));
        alive.remove(NodeId(2));
        let q = t.pick_quorum(&view, alive, 0, QuorumKind::Write).unwrap();
        assert!(q.is_subset_of(alive));
        // Kill majorities of two groups: no quorum.
        let mut dead2 = view.set();
        for id in [0, 1, 3, 4] {
            dead2.remove(NodeId(id));
        }
        assert!(t.pick_quorum(&view, dead2, 0, QuorumKind::Write).is_none());
    }

    #[test]
    fn branching_factor_two_still_intersects() {
        let t = TreeCoterie::with_branching(2);
        for n in 1..=8usize {
            let view = View::first_n(n);
            let mut quorums = Vec::new();
            for mask in 0u32..(1 << n) {
                let s = NodeSet(mask as u128);
                if t.is_write_quorum(&view, s) {
                    quorums.push(s);
                }
            }
            for &a in &quorums {
                for &b in &quorums {
                    assert!(a.intersects(b), "disjoint at n={n}");
                }
            }
        }
    }
}
