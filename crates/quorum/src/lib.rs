//! # coterie-quorum
//!
//! Coterie rules over ordered node sets, as required by the dynamic
//! structured coterie protocol of Rabinovich & Lazowska (SIGMOD 1992,
//! "Improving Fault Tolerance and Supporting Partial Writes in Structured
//! Coterie Protocols for Replicated Objects").
//!
//! A *coterie* over a node set `V` is a pair of quorum families `(W, R)`
//! such that write quorums pairwise intersect and every read quorum
//! intersects every write quorum (§3 of the paper). A *coterie rule*
//! (the [`CoterieRule`] trait) derives such a coterie from **any** ordered
//! node set, which is what lets the protocol re-derive quorums over the
//! current epoch instead of a static network structure.
//!
//! Shipped rules:
//!
//! * [`GridCoterie`] — the paper's worked example (§5): nodes arranged in a
//!   rectangular grid via `DefineGrid`; read quorums cover every column,
//!   write quorums additionally contain a full (physical) column.
//! * [`VotingCoterie`] / [`MajorityCoterie`] — Gifford-style voting with
//!   unit votes.
//! * [`WeightedCoterie`] — weighted voting.
//! * [`TreeCoterie`] — hierarchical quorum consensus (Kumar).
//! * [`RowaCoterie`] — read-one/write-all.
//!
//! The [`availability`] module supplies the closed forms used to reproduce
//! the static-grid column of the paper's Table 1.
//!
//! ```
//! use coterie_quorum::{CoterieRule, GridCoterie, NodeSet, QuorumKind, View};
//!
//! let rule = GridCoterie::new();
//! let epoch = View::first_n(9); // a 3 x 3 grid
//! let quorum = rule
//!     .pick_quorum(&epoch, epoch.set(), 42, QuorumKind::Write)
//!     .unwrap();
//! assert!(rule.is_write_quorum(&epoch, quorum));
//! assert_eq!(quorum.len(), 5); // 2 * sqrt(9) - 1
//! ```

pub mod availability;
pub mod grid;
pub mod majority;
pub mod node;
pub mod plan;
pub mod rowa;
pub mod rule;
pub mod tree;
pub mod weighted;

pub use grid::{GridCoterie, GridOrientation, GridShape};
pub use majority::{MajorityCoterie, VotingCoterie, WriteSize};
pub use node::{NodeId, NodeSet, View, MAX_NODES};
pub use plan::{PlanCache, QuorumPlan};
pub use rowa::RowaCoterie;
pub use rule::{is_minimal_quorum, minimize_quorum, quorum_seed, CoterieRule, QuorumKind};
pub use tree::TreeCoterie;
pub use weighted::WeightedCoterie;
