//! The paper's §6 availability model for dynamic (epoch-based) protocols:
//! the Figure 3 state diagram, generalized over the minimum epoch size.
//!
//! Site-model assumptions (Paris \[13\], as adopted by the paper):
//! 1. links are reliable — only sites fail;
//! 2. failures and repairs are independent Poisson processes with rates
//!    `lambda` and `mu`;
//! 3. operations are instantaneous;
//! 4. epoch checking runs between any two failure/repair events, so the
//!    epoch always equals the up-set while the system is available.
//!
//! Under these assumptions the epoch shrinks and grows with the up-set as
//! long as each single failure leaves a write quorum of the previous epoch.
//! For the grid rule the paper argues this holds down to epochs of **three**
//! nodes: "the above process of epoch changes continues successfully unless
//! the system comes to the point when there are only three nodes in the
//! latest epoch and one of them fails", after which "subsequent epoch
//! checking operations will fail ... until all three nodes become
//! simultaneously available again".

use crate::chain::{Ctmc, CtmcBuilder};
use crate::solve::{probability_of, stationary, SolveError};

/// A state of the Figure 3 diagram. The paper writes `(x, y, z)`: the
/// latest epoch contains `y` nodes, `x` of which are up, and `z` of the
/// `N - y` remaining nodes are up. While available, `x = y` and the epoch
/// tracks the up-set, so available states are `(y, y, z)`; the paper draws
/// them as the upper row. Once a failure hits an epoch of the minimum size,
/// the epoch freezes (at size `y = min_epoch`) and the system is blocked
/// until all its members are simultaneously up.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EpochState {
    /// Epoch = up-set of size `up`; system available.
    Available {
        /// Number of up nodes (= epoch size).
        up: usize,
    },
    /// Epoch frozen at `min_epoch` members, only `epoch_up < min_epoch` of
    /// them up, `outside_up` of the other `N - min_epoch` nodes up.
    Blocked {
        /// Up members of the frozen epoch.
        epoch_up: usize,
        /// Up nodes outside the frozen epoch.
        outside_up: usize,
    },
}

impl EpochState {
    /// Whether the data item is available for writes in this state.
    pub fn is_available(self) -> bool {
        matches!(self, EpochState::Available { .. })
    }
}

/// Parameters of the dynamic availability chain.
#[derive(Clone, Copy, Debug)]
pub struct DynamicModel {
    /// Total number of replicas `N`.
    pub n: usize,
    /// Per-node failure rate `lambda`.
    pub lambda: f64,
    /// Per-node repair rate `mu`.
    pub mu: f64,
    /// Smallest epoch size that is still available but cannot survive any
    /// further failure: 3 for the grid rule (paper §6), 2 for plain
    /// majority voting.
    pub min_epoch: usize,
}

impl DynamicModel {
    /// The paper's dynamic grid model.
    pub fn grid(n: usize, lambda: f64, mu: f64) -> Self {
        DynamicModel {
            n,
            lambda,
            mu,
            min_epoch: 3.min(n),
        }
    }

    /// Dynamic majority voting (epochs shrink while a majority of the
    /// previous epoch survives; an epoch of 2 blocks on any failure).
    pub fn majority(n: usize, lambda: f64, mu: f64) -> Self {
        DynamicModel {
            n,
            lambda,
            mu,
            min_epoch: 2.min(n),
        }
    }

    /// Convenience: rates from a steady-state node-up probability `p`
    /// (`p = mu / (mu + lambda)`), fixing `lambda = 1`.
    pub fn with_p(mut self, p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
        self.lambda = 1.0;
        self.mu = p / (1.0 - p);
        self
    }

    /// Builds the Figure 3 CTMC.
    pub fn chain(&self) -> Ctmc<EpochState> {
        let DynamicModel {
            n,
            lambda,
            mu,
            min_epoch,
        } = *self;
        assert!(n >= 1 && min_epoch >= 1 && min_epoch <= n);
        assert!(lambda > 0.0 && mu > 0.0);
        let mut b = CtmcBuilder::new();
        let avail = |up: usize| EpochState::Available { up };

        // Upper row: available states, epoch tracking the up-set.
        for y in min_epoch..=n {
            if y > min_epoch {
                // One failure: epoch change succeeds (y-1 survivors still
                // include a write quorum of the y-epoch).
                b.transition(avail(y), avail(y - 1), y as f64 * lambda);
            }
            if y < n {
                // One repair: the epoch absorbs the recovered node.
                b.transition(avail(y), avail(y + 1), (n - y) as f64 * mu);
            }
        }
        // Failure at the minimum epoch: freeze.
        b.transition(
            avail(min_epoch),
            EpochState::Blocked {
                epoch_up: min_epoch - 1,
                outside_up: 0,
            },
            min_epoch as f64 * lambda,
        );

        // Blocked lattice: epoch members and outsiders fail/recover
        // independently; recovery of the last down epoch member unfreezes
        // into an available epoch of all up nodes.
        let outside_total = n - min_epoch;
        for x in 0..min_epoch {
            for z in 0..=outside_total {
                let s = EpochState::Blocked {
                    epoch_up: x,
                    outside_up: z,
                };
                if x > 0 {
                    b.transition(
                        s,
                        EpochState::Blocked {
                            epoch_up: x - 1,
                            outside_up: z,
                        },
                        x as f64 * lambda,
                    );
                }
                let down_members = min_epoch - x;
                if down_members > 1 {
                    b.transition(
                        s,
                        EpochState::Blocked {
                            epoch_up: x + 1,
                            outside_up: z,
                        },
                        down_members as f64 * mu,
                    );
                } else {
                    // The last down member returns: all min_epoch members
                    // up, epoch check reforms the epoch over every up node.
                    b.transition(s, avail(min_epoch + z), mu);
                }
                if z > 0 {
                    b.transition(
                        s,
                        EpochState::Blocked {
                            epoch_up: x,
                            outside_up: z - 1,
                        },
                        z as f64 * lambda,
                    );
                }
                if z < outside_total {
                    b.transition(
                        s,
                        EpochState::Blocked {
                            epoch_up: x,
                            outside_up: z + 1,
                        },
                        (outside_total - z) as f64 * mu,
                    );
                }
            }
        }
        b.build()
    }

    /// Steady-state write availability of the dynamic protocol.
    pub fn availability(&self) -> Result<f64, SolveError> {
        let chain = self.chain();
        let pi = stationary(&chain)?;
        Ok(probability_of(&chain, &pi, |s| s.is_available()))
    }

    /// Steady-state write unavailability (`1 - availability`, computed as a
    /// direct sum of blocked-state probabilities so that values as small as
    /// `1e-14` keep full relative accuracy — see the paper's Table 1).
    pub fn unavailability(&self) -> Result<f64, SolveError> {
        let chain = self.chain();
        let pi = stationary(&chain)?;
        Ok(probability_of(&chain, &pi, |s| !s.is_available()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P95: f64 = 0.95; // mu/lambda = 19, as in the paper's Table 1.

    fn grid_unavail(n: usize) -> f64 {
        DynamicModel::grid(n, 1.0, 19.0).unavailability().unwrap()
    }

    #[test]
    fn table1_dynamic_grid_column() {
        // Paper Table 1, "Dynamic Grid unavailability", p = 0.95:
        //   N=9  -> 0.18e-6, N=12 -> 0.6e-10, N=15 -> 1.564e-14,
        //   N=16 -> negligible.
        let u9 = grid_unavail(9);
        assert!(
            (u9 - 0.18e-6).abs() / 0.18e-6 < 0.05,
            "N=9: got {u9:e}, paper 1.8e-7"
        );
        let u12 = grid_unavail(12);
        assert!(
            (u12 - 0.6e-10).abs() / 0.6e-10 < 0.1,
            "N=12: got {u12:e}, paper 0.6e-10"
        );
        let u15 = grid_unavail(15);
        assert!(
            (u15 - 1.564e-14).abs() / 1.564e-14 < 0.05,
            "N=15: got {u15:e}, paper 1.564e-14"
        );
        let u16 = grid_unavail(16);
        assert!(u16 < 1e-15, "N=16 should be negligible, got {u16:e}");
    }

    #[test]
    fn with_p_matches_explicit_rates() {
        let a = DynamicModel::grid(9, 1.0, 19.0).unavailability().unwrap();
        let b = DynamicModel::grid(9, 0.0, 0.0)
            .with_p(P95)
            .unavailability()
            .unwrap();
        assert!((a - b).abs() / a < 1e-12);
    }

    #[test]
    fn unavailability_decreases_with_n() {
        let mut prev = f64::INFINITY;
        for n in [4usize, 6, 9, 12, 15] {
            let u = grid_unavail(n);
            assert!(
                u < prev,
                "unavailability should fall with N: {u:e} at N={n}"
            );
            prev = u;
        }
    }

    #[test]
    fn dynamic_beats_static_by_orders_of_magnitude() {
        use coterie_quorum::availability::grid_write_availability;
        use coterie_quorum::GridShape;
        for n in [9usize, 12, 15] {
            let stat = 1.0 - grid_write_availability(GridShape::define(n), P95);
            let dynm = grid_unavail(n);
            assert!(
                stat / dynm > 1e3,
                "N={n}: dynamic ({dynm:e}) should beat static ({stat:e}) by >=3 orders"
            );
        }
    }

    #[test]
    fn majority_model_beats_grid_model_slightly() {
        // min_epoch = 2 blocks later than min_epoch = 3.
        for n in [5usize, 9] {
            let g = DynamicModel::grid(n, 1.0, 19.0).unavailability().unwrap();
            let m = DynamicModel::majority(n, 1.0, 19.0)
                .unavailability()
                .unwrap();
            assert!(m < g, "N={n}: majority {m:e} vs grid {g:e}");
        }
    }

    #[test]
    fn availability_plus_unavailability_is_one() {
        let model = DynamicModel::grid(9, 1.0, 19.0);
        let a = model.availability().unwrap();
        let u = model.unavailability().unwrap();
        assert!((a + u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_system_edge_cases() {
        // N = 3 with min_epoch = 3: available only in the all-up state?
        // Not quite: available whenever the single available state (3,3,0)
        // holds; any failure blocks until all three return.
        let u3 = grid_unavail(3);
        // p(all 3 up) = 0.857375; blocked mass must far exceed the
        // larger-N cases but stay below 1 - p^3 at equilibrium... sanity:
        assert!(u3 > 0.05 && u3 < 0.2, "N=3 unavailability {u3}");
        // N = 1: single node, min_epoch = 1: available iff up.
        let m1 = DynamicModel::grid(1, 1.0, 19.0);
        let a1 = m1.availability().unwrap();
        assert!((a1 - 0.95).abs() < 1e-12);
    }

    #[test]
    fn chain_size_matches_formula() {
        // (n - min_epoch + 1) available + min_epoch * (n - min_epoch + 1)
        // blocked states.
        let model = DynamicModel::grid(9, 1.0, 19.0);
        let chain = model.chain();
        let n = 9;
        let me = 3;
        let expect = (n - me + 1) + me * (n - me + 1);
        assert_eq!(chain.len(), expect);
    }

    #[test]
    fn figure3_dot_renders() {
        let chain = DynamicModel::grid(5, 1.0, 19.0).chain();
        let dot = chain.to_dot(|s| s.is_available());
        assert!(dot.contains("digraph"));
        assert!(dot.contains("Available"));
        assert!(dot.contains("Blocked"));
    }
}
