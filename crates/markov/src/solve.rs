//! Steady-state solution of CTMCs.
//!
//! The workhorse is the Grassmann–Taksar–Heyman (GTH) algorithm: a
//! subtraction-free variant of Gaussian elimination for stationary
//! distributions. Because it never subtracts, it computes tiny component
//! probabilities with full *relative* accuracy — essential here, since the
//! paper's Table 1 reports unavailabilities down to `1.5e-14`, far below
//! what `1 - availability` could resolve in `f64` if computed naively.
//!
//! A uniformized power-iteration solver is included as an independent
//! cross-check used by the test-suite.

use crate::chain::Ctmc;
use std::fmt::Debug;
use std::hash::Hash;

/// Errors from the steady-state solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The chain has no states.
    Empty,
    /// The chain is reducible from the numerical point of view: during
    /// elimination a state had no remaining exit rate, so the stationary
    /// distribution is not unique. Contains the offending state index.
    Reducible(usize),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Empty => write!(f, "chain has no states"),
            SolveError::Reducible(i) => {
                write!(
                    f,
                    "chain is not irreducible (state index {i} is absorbing a class)"
                )
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// The GTH elimination. Works on a copy of the rate matrix: states
/// `n-1, n-2, ..., 1` are eliminated in turn, each eliminated state's flow
/// redistributed among the survivors, then the stationary vector is
/// recovered by back substitution. Every update is an addition,
/// multiplication, or division of non-negative numbers — no cancellation
/// anywhere, which is what preserves the relative accuracy of tiny
/// probabilities.
#[allow(clippy::needless_range_loop)] // index symmetry mirrors the math
fn gth(rates: &[Vec<f64>]) -> Result<Vec<f64>, SolveError> {
    let n = rates.len();
    let mut q: Vec<Vec<f64>> = rates.to_vec();
    let mut exit_sums = vec![0.0f64; n];
    for k in (1..n).rev() {
        let s: f64 = q[k][..k].iter().sum();
        if s <= 0.0 || !s.is_finite() {
            return Err(SolveError::Reducible(k));
        }
        exit_sums[k] = s;
        for j in 0..k {
            q[k][j] /= s;
        }
        for i in 0..k {
            let qik = q[i][k];
            if qik > 0.0 {
                for j in 0..k {
                    if i != j {
                        q[i][j] += qik * q[k][j];
                    }
                }
            }
        }
    }
    // Back substitution.
    let mut pi = vec![0.0f64; n];
    pi[0] = 1.0;
    for k in 1..n {
        let mut acc = 0.0;
        for i in 0..k {
            acc += pi[i] * q[i][k];
        }
        pi[k] = acc / exit_sums[k];
    }
    let total: f64 = pi.iter().sum();
    for p in &mut pi {
        *p /= total;
    }
    Ok(pi)
}

/// Power iteration on the uniformized DTMC: an independent (slower, less
/// precise) solver used to cross-check GTH.
#[allow(clippy::needless_range_loop)] // index symmetry mirrors the math
pub fn steady_state_power<S: Clone + Eq + Hash + Debug>(
    chain: &Ctmc<S>,
    iterations: usize,
) -> Result<Vec<f64>, SolveError> {
    let n = chain.len();
    if n == 0 {
        return Err(SolveError::Empty);
    }
    if n == 1 {
        return Ok(vec![1.0]);
    }
    let max_exit = (0..n).map(|i| chain.exit_rate(i)).fold(0.0f64, f64::max);
    if max_exit <= 0.0 {
        return Err(SolveError::Reducible(0));
    }
    let gamma = max_exit * 1.05;
    // P = I + Q/gamma
    let mut pi = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        for x in next.iter_mut() {
            *x = 0.0;
        }
        for i in 0..n {
            let stay = 1.0 - chain.exit_rate(i) / gamma;
            next[i] += pi[i] * stay;
            for j in 0..n {
                let r = chain.rate(i, j);
                if r > 0.0 {
                    next[j] += pi[i] * r / gamma;
                }
            }
        }
        std::mem::swap(&mut pi, &mut next);
    }
    let total: f64 = pi.iter().sum();
    for p in &mut pi {
        *p /= total;
    }
    Ok(pi)
}

/// Public GTH entry point (see module docs).
pub fn stationary<S: Clone + Eq + Hash + Debug>(chain: &Ctmc<S>) -> Result<Vec<f64>, SolveError> {
    if chain.is_empty() {
        return Err(SolveError::Empty);
    }
    if chain.len() == 1 {
        return Ok(vec![1.0]);
    }
    gth(chain.rate_matrix())
}

/// Sums the stationary probability of all states matching `pred`.
pub fn probability_of<S: Clone + Eq + Hash + Debug>(
    chain: &Ctmc<S>,
    pi: &[f64],
    pred: impl Fn(&S) -> bool,
) -> f64 {
    chain
        .states()
        .iter()
        .zip(pi)
        .filter(|(s, _)| pred(s))
        .map(|(_, &p)| p)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::CtmcBuilder;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs().max(f64::MIN_POSITIVE)
    }

    #[test]
    fn two_state_up_down() {
        // Failure rate l, repair mu: pi_up = mu/(mu+l).
        let (l, mu) = (1.0, 19.0);
        let mut b = CtmcBuilder::new();
        b.transition("up", "down", l);
        b.transition("down", "up", mu);
        let chain = b.build();
        let pi = stationary(&chain).unwrap();
        let p_up = probability_of(&chain, &pi, |s| *s == "up");
        assert!(close(p_up, 0.95, 1e-14), "got {p_up}");
    }

    #[test]
    fn birth_death_matches_closed_form() {
        // M/M/1/K queue: pi_k proportional to rho^k.
        let (lambda, mu, k) = (2.0, 5.0, 8usize);
        let mut b = CtmcBuilder::new();
        for i in 0..k {
            b.transition(i, i + 1, lambda);
            b.transition(i + 1, i, mu);
        }
        let chain = b.build();
        let pi = stationary(&chain).unwrap();
        let rho: f64 = lambda / mu;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for i in 0..=k {
            let expect = rho.powi(i as i32) / norm;
            let idx = chain.states().iter().position(|&s| s == i).unwrap();
            assert!(
                close(pi[idx], expect, 1e-12),
                "state {i}: {} vs {expect}",
                pi[idx]
            );
        }
    }

    #[test]
    fn gth_resolves_tiny_probabilities() {
        // A chain engineered so one state has probability ~1e-30: a chain of
        // 10 states each 1000x less likely than the previous.
        let mut b = CtmcBuilder::new();
        for i in 0..10u32 {
            b.transition(i, i + 1, 1.0);
            b.transition(i + 1, i, 1000.0);
        }
        let chain = b.build();
        let pi = stationary(&chain).unwrap();
        let idx_last = chain.states().iter().position(|&s| s == 10).unwrap();
        // Birth-death closed form: pi_i proportional to (1/1000)^i.
        let ratio: f64 = 1e-3;
        let norm: f64 = (0..=10).map(|i| ratio.powi(i)).sum();
        let expect = ratio.powi(10) / norm;
        assert!(
            close(pi[idx_last], expect, 1e-9),
            "tiny pi lost precision: {} vs {expect}",
            pi[idx_last]
        );
    }

    #[test]
    fn power_iteration_agrees_with_gth() {
        let mut b = CtmcBuilder::new();
        // A small random-ish strongly connected chain.
        let edges = [
            (0, 1, 1.0),
            (1, 2, 0.7),
            (2, 0, 2.0),
            (2, 3, 0.3),
            (3, 1, 5.0),
            (0, 3, 0.2),
        ];
        for (f, t, r) in edges {
            b.transition(f, t, r);
        }
        let chain = b.build();
        let pi_gth = stationary(&chain).unwrap();
        let pi_pow = steady_state_power(&chain, 20_000).unwrap();
        for (a, b) in pi_gth.iter().zip(&pi_pow) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn reducible_chain_detected() {
        let mut b = CtmcBuilder::new();
        b.transition("a", "b", 1.0); // b is absorbing
        let chain = b.build();
        assert!(matches!(stationary(&chain), Err(SolveError::Reducible(_))));
    }

    #[test]
    fn empty_and_singleton() {
        let empty: CtmcBuilder<u8> = CtmcBuilder::new();
        assert_eq!(stationary(&empty.build()), Err(SolveError::Empty));
        let mut one = CtmcBuilder::new();
        one.state("only");
        assert_eq!(stationary(&one.build()).unwrap(), vec![1.0]);
    }

    #[test]
    fn distribution_sums_to_one() {
        let mut b = CtmcBuilder::new();
        for i in 0..20 {
            b.transition(i, (i + 1) % 20, 1.0 + i as f64);
            b.transition(i, (i + 7) % 20, 0.3);
        }
        let chain = b.build();
        let pi = stationary(&chain).unwrap();
        let total: f64 = pi.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|&p| p > 0.0));
    }
}
