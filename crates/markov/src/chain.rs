//! Continuous-time Markov chain construction over arbitrary state types.
//!
//! The paper's §6 analysis "uses Markov chains and goes along the lines of
//! [Jajodia & Mutchler]" and solves the state diagram with "the classical
//! global balance technique". [`CtmcBuilder`] assembles the generator from
//! named states and rates; [`crate::solve`] computes the stationary
//! distribution.

// Offline analysis: state-index interning is order-insensitive.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// A continuous-time Markov chain over states of type `S`, stored as a
/// dense rate matrix plus a state index.
#[derive(Clone, Debug)]
pub struct Ctmc<S> {
    states: Vec<S>,
    /// `rates[i][j]` is the transition rate from state `i` to state `j`
    /// (`i != j`); diagonal entries are unused and kept at zero.
    rates: Vec<Vec<f64>>,
}

impl<S: Clone + Eq + Hash + Debug> Ctmc<S> {
    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the chain has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The states, in index order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The rate from state index `i` to state index `j`.
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        self.rates[i][j]
    }

    /// Total exit rate of state `i`.
    pub fn exit_rate(&self, i: usize) -> f64 {
        self.rates[i].iter().sum()
    }

    /// Dense rate matrix (row = from).
    pub fn rate_matrix(&self) -> &[Vec<f64>] {
        &self.rates
    }

    /// All transitions as `(from, to, rate)` triples.
    pub fn transitions(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rates.iter().enumerate().flat_map(|(i, row)| {
            row.iter()
                .enumerate()
                .filter(|&(_, &r)| r > 0.0)
                .map(move |(j, &r)| (i, j, r))
        })
    }

    /// Renders the chain in Graphviz DOT syntax (used to regenerate the
    /// paper's Figure 3 as a diagram).
    pub fn to_dot(&self, highlight: impl Fn(&S) -> bool) -> String {
        let mut out = String::from("digraph ctmc {\n  rankdir=LR;\n");
        for (i, s) in self.states.iter().enumerate() {
            let shape = if highlight(s) {
                "doublecircle"
            } else {
                "circle"
            };
            out.push_str(&format!("  s{i} [label=\"{s:?}\", shape={shape}];\n"));
        }
        for (i, j, r) in self.transitions() {
            out.push_str(&format!("  s{i} -> s{j} [label=\"{r:.4}\"];\n"));
        }
        out.push_str("}\n");
        out
    }
}

/// Incremental CTMC builder keyed by state values.
#[derive(Clone, Debug)]
pub struct CtmcBuilder<S> {
    index: HashMap<S, usize>,
    states: Vec<S>,
    transitions: Vec<(usize, usize, f64)>,
}

impl<S: Clone + Eq + Hash + Debug> Default for CtmcBuilder<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Clone + Eq + Hash + Debug> CtmcBuilder<S> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CtmcBuilder {
            index: HashMap::new(),
            states: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Interns `state`, returning its index.
    pub fn state(&mut self, state: S) -> usize {
        if let Some(&i) = self.index.get(&state) {
            return i;
        }
        let i = self.states.len();
        self.states.push(state.clone());
        self.index.insert(state, i);
        i
    }

    /// Looks up a state's index without creating it.
    pub fn find(&self, state: &S) -> Option<usize> {
        self.index.get(state).copied()
    }

    /// Adds a transition `from -> to` at `rate` (> 0). Parallel transitions
    /// between the same pair accumulate. Self-loops are rejected: they are
    /// meaningless in a CTMC.
    pub fn transition(&mut self, from: S, to: S, rate: f64) {
        assert!(rate > 0.0 && rate.is_finite(), "rates must be positive");
        let f = self.state(from);
        let t = self.state(to);
        assert_ne!(f, t, "self-loop in CTMC");
        self.transitions.push((f, t, rate));
    }

    /// Number of states interned so far.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if no states have been interned.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Finalizes the chain.
    pub fn build(self) -> Ctmc<S> {
        let n = self.states.len();
        let mut rates = vec![vec![0.0; n]; n];
        for (f, t, r) in self.transitions {
            rates[f][t] += r;
        }
        Ctmc {
            states: self.states,
            rates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_states_once() {
        let mut b = CtmcBuilder::new();
        let a = b.state("a");
        let a2 = b.state("a");
        assert_eq!(a, a2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.find(&"a"), Some(0));
        assert_eq!(b.find(&"zzz"), None);
    }

    #[test]
    fn parallel_transitions_accumulate() {
        let mut b = CtmcBuilder::new();
        b.transition("a", "b", 1.0);
        b.transition("a", "b", 2.5);
        let c = b.build();
        assert_eq!(c.rate(0, 1), 3.5);
        assert_eq!(c.exit_rate(0), 3.5);
        assert_eq!(c.exit_rate(1), 0.0);
        assert_eq!(c.transitions().count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut b = CtmcBuilder::new();
        b.transition(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let mut b = CtmcBuilder::new();
        b.transition(1, 2, 0.0);
    }

    #[test]
    fn dot_output_mentions_states() {
        let mut b = CtmcBuilder::new();
        b.transition("up", "down", 0.5);
        b.transition("down", "up", 9.5);
        let dot = b.build().to_dot(|s| *s == "up");
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("\"up\""));
        assert!(dot.contains("->"));
    }
}
