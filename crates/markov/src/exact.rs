//! Structure-aware exact availability chain.
//!
//! The paper's Figure 3 model idealizes the grid: it assumes every epoch of
//! more than three nodes survives any single failure and that an epoch of
//! three blocks on any failure. The *published* coterie rule behaves
//! slightly differently (DESIGN.md §5): e.g. the `DefineGrid` layout for
//! N = 5 has a single-node column whose failure blocks even a 5-node epoch,
//! while a 3-node epoch actually survives two of its three possible single
//! failures. This module builds the exact continuous-time chain over
//! `(epoch, up-set)` states for a concrete [`CoterieRule`], so the idealized
//! and exact models can be compared (experiment E10).

// Offline analysis: visited-set membership is order-insensitive.
#![allow(clippy::disallowed_types)]

use crate::chain::{Ctmc, CtmcBuilder};
use crate::solve::{probability_of, stationary, SolveError};
use coterie_quorum::{CoterieRule, NodeId, NodeSet, PlanCache, QuorumKind};
use std::cell::RefCell;
use std::collections::VecDeque;

/// A state of the exact chain.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExactState {
    /// Epoch equals the up-set `up`; available (assumption 4 keeps the epoch
    /// glued to the up-set while epoch changes keep succeeding).
    Available {
        /// The current epoch = set of up nodes.
        up: NodeSet,
    },
    /// An epoch change failed: the epoch is frozen at `epoch`, the up-set is
    /// `up`, and `up ∩ epoch` does not include a write quorum over `epoch`.
    Blocked {
        /// The frozen epoch.
        epoch: NodeSet,
        /// Currently-up nodes (inside and outside the epoch).
        up: NodeSet,
    },
}

impl ExactState {
    /// Whether writes are possible in this state.
    pub fn is_available(self) -> bool {
        matches!(self, ExactState::Available { .. })
    }
}

/// Builds the exact `(epoch, up-set)` chain for `rule` over `n` nodes with
/// per-node failure rate `lambda` and repair rate `mu`. Restricted to
/// `n <= 6` to keep the dense solve tractable.
pub fn exact_chain(rule: &dyn CoterieRule, n: usize, lambda: f64, mu: f64) -> Ctmc<ExactState> {
    assert!((1..=6).contains(&n), "exact chain limited to 6 nodes");
    assert!(lambda > 0.0 && mu > 0.0);
    let all = NodeSet::first_n(n);
    let nodes: Vec<NodeId> = all.to_vec();
    let mut b = CtmcBuilder::new();
    let start = ExactState::Available { up: all };
    b.state(start);
    let mut queue = VecDeque::from([start]);
    let mut seen = std::collections::HashSet::from([start]);
    // The BFS revisits the same epoch view for many up-sets; compile each
    // epoch's quorum plan once instead of re-deriving the rule structure
    // on every transition.
    let mut plans = PlanCache::new();
    let push = |b: &mut CtmcBuilder<ExactState>,
                queue: &mut VecDeque<ExactState>,
                seen: &mut std::collections::HashSet<ExactState>,
                from: ExactState,
                to: ExactState,
                rate: f64| {
        b.transition(from, to, rate);
        if seen.insert(to) {
            queue.push_back(to);
        }
    };

    while let Some(state) = queue.pop_front() {
        match state {
            ExactState::Available { up } => {
                let plan = plans.plan_for_set(rule, up);
                for &v in &nodes {
                    if up.contains(v) {
                        // Failure of an epoch member: the instantaneous
                        // epoch check succeeds iff the survivors include a
                        // write quorum over the old epoch.
                        let mut survivors = up;
                        survivors.remove(v);
                        let next = if plan.includes_quorum_with(rule, survivors, QuorumKind::Write)
                        {
                            ExactState::Available { up: survivors }
                        } else {
                            ExactState::Blocked {
                                epoch: up,
                                up: survivors,
                            }
                        };
                        push(&mut b, &mut queue, &mut seen, state, next, lambda);
                    } else {
                        // Repair of an outsider: the current (fully up)
                        // epoch is itself a write quorum, so the epoch
                        // check absorbs the newcomer.
                        let mut grown = up;
                        grown.insert(v);
                        push(
                            &mut b,
                            &mut queue,
                            &mut seen,
                            state,
                            ExactState::Available { up: grown },
                            mu,
                        );
                    }
                }
            }
            ExactState::Blocked { epoch, up } => {
                let plan = plans.plan_for_set(rule, epoch);
                for &v in &nodes {
                    if up.contains(v) {
                        // Further failures keep the system blocked
                        // (quorum predicates are monotone).
                        let mut fewer = up;
                        fewer.remove(v);
                        push(
                            &mut b,
                            &mut queue,
                            &mut seen,
                            state,
                            ExactState::Blocked { epoch, up: fewer },
                            lambda,
                        );
                    } else {
                        let mut grown = up;
                        grown.insert(v);
                        let next = if plan.includes_quorum_with(
                            rule,
                            grown.intersection(epoch),
                            QuorumKind::Write,
                        ) {
                            // Epoch check succeeds and installs all up
                            // nodes as the new epoch.
                            ExactState::Available { up: grown }
                        } else {
                            ExactState::Blocked { epoch, up: grown }
                        };
                        push(&mut b, &mut queue, &mut seen, state, next, mu);
                    }
                }
            }
        }
    }
    b.build()
}

/// Steady-state write unavailability of the exact chain.
pub fn exact_unavailability(
    rule: &dyn CoterieRule,
    n: usize,
    lambda: f64,
    mu: f64,
) -> Result<f64, SolveError> {
    exact_unavailability_kind(rule, n, lambda, mu, QuorumKind::Write)
}

/// Steady-state unavailability for the requested operation kind. Writes
/// are impossible exactly in blocked states; reads additionally succeed in
/// blocked states whose up members still include a *read* quorum over the
/// frozen epoch (the paper notes the read analysis is "completely
/// analogous"; experiment E12).
pub fn exact_unavailability_kind(
    rule: &dyn CoterieRule,
    n: usize,
    lambda: f64,
    mu: f64,
    kind: QuorumKind,
) -> Result<f64, SolveError> {
    let chain = exact_chain(rule, n, lambda, mu);
    let pi = stationary(&chain)?;
    let plans = RefCell::new(PlanCache::new());
    Ok(probability_of(&chain, &pi, |s| match (s, kind) {
        (ExactState::Available { .. }, _) => false,
        (ExactState::Blocked { .. }, QuorumKind::Write) => true,
        (ExactState::Blocked { epoch, up }, QuorumKind::Read) => {
            let mut plans = plans.borrow_mut();
            let plan = plans.plan_for_set(rule, *epoch);
            !plan.includes_quorum_with(rule, up.intersection(*epoch), QuorumKind::Read)
        }
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynamicModel;
    use coterie_quorum::{GridCoterie, MajorityCoterie, RowaCoterie, View};

    #[test]
    fn exact_majority_matches_idealized_chain() {
        // For majority voting the idealized Figure-3-style chain with
        // min_epoch = 2 is exact: every epoch >= 3 survives any single
        // failure, an epoch of 2 blocks on any failure and unfreezes when
        // both members are up.
        let rule = MajorityCoterie::new();
        for n in [3usize, 4, 5] {
            let exact = exact_unavailability(&rule, n, 1.0, 19.0).unwrap();
            let ideal = DynamicModel::majority(n, 1.0, 19.0)
                .unavailability()
                .unwrap();
            assert!(
                (exact - ideal).abs() / ideal < 1e-10,
                "n={n}: exact {exact:e} vs ideal {ideal:e}"
            );
        }
    }

    #[test]
    fn exact_grid_diverges_from_idealized_chain_at_n5() {
        // DefineGrid's 2x3 layout for N=5 has a singleton column: the exact
        // chain blocks more often above the minimum epoch but can also ride
        // epochs down to 2 nodes. The models must disagree.
        let rule = GridCoterie::new();
        let exact = exact_unavailability(&rule, 5, 1.0, 19.0).unwrap();
        let ideal = DynamicModel::grid(5, 1.0, 19.0).unavailability().unwrap();
        assert!(
            (exact - ideal).abs() / ideal > 0.5,
            "expected a material gap: exact {exact:e} vs ideal {ideal:e}"
        );
    }

    #[test]
    fn tall_grid_makes_figure3_exact() {
        // With the corrected tall orientation every epoch of >= 4 nodes
        // tolerates any single failure and a 3-node epoch (a single
        // column) blocks on any failure and thaws only when all three are
        // up — exactly the paper's Figure 3 assumptions. The exact chain
        // must therefore coincide with the idealized one.
        let rule = GridCoterie::tall();
        for n in [3usize, 4, 5, 6] {
            let exact = exact_unavailability(&rule, n, 1.0, 19.0).unwrap();
            let ideal = DynamicModel::grid(n, 1.0, 19.0).unavailability().unwrap();
            assert!(
                (exact - ideal).abs() / ideal < 1e-10,
                "n={n}: tall exact {exact:e} vs idealized {ideal:e}"
            );
        }
    }

    #[test]
    fn exact_grid_n4_beats_idealized_model() {
        // For N=4 (2x2 exact grid) epochs of 3 tolerate 2 of 3 single
        // failures under the published rule, so the exact protocol is
        // strictly more available than the paper's conservative model.
        let rule = GridCoterie::new();
        let exact = exact_unavailability(&rule, 4, 1.0, 19.0).unwrap();
        let ideal = DynamicModel::grid(4, 1.0, 19.0).unavailability().unwrap();
        assert!(
            exact < ideal,
            "exact {exact:e} should be below idealized {ideal:e}"
        );
    }

    #[test]
    fn rowa_exact_chain_blocks_after_first_failure_recovery_cycle() {
        // Dynamic ROWA: any failure still leaves... nothing — the write
        // quorum is the whole epoch, so the epoch can never shrink; but the
        // frozen epoch unfreezes as soon as the failed member returns
        // (up ∩ epoch = epoch). Availability = P(reaching the all-up state
        // from blocked states) — strictly less than P(all up) + churn.
        let rule = RowaCoterie::new();
        let n = 3;
        let exact = exact_unavailability(&rule, n, 1.0, 19.0).unwrap();
        // The epoch never shrinks below the full set, so availability is
        // exactly P(all n up) = p^n.
        let p: f64 = 0.95;
        let expect = 1.0 - p.powi(n as i32);
        assert!(
            (exact - expect).abs() < 1e-10,
            "got {exact}, expected {expect}"
        );
    }

    #[test]
    fn exact_chain_state_counts_are_sane() {
        let rule = GridCoterie::new();
        let chain = exact_chain(&rule, 4, 1.0, 19.0);
        // All states reachable, every available state's up-set distinct.
        assert!(chain.len() >= 16, "at least the 2^4 available states");
        for (i, s) in chain.states().iter().enumerate() {
            if let ExactState::Blocked { epoch, up } = s {
                let view = View::from_set(*epoch);
                assert!(
                    !rule.is_write_quorum(&view, up.intersection(*epoch)),
                    "state {i} marked blocked but has a quorum"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "limited to 6")]
    fn exact_chain_size_guard() {
        let rule = GridCoterie::new();
        let _ = exact_chain(&rule, 7, 1.0, 19.0);
    }
}
