//! # coterie-markov
//!
//! Availability analysis for the dynamic structured coterie protocol,
//! reproducing §6 of Rabinovich & Lazowska (SIGMOD 1992).
//!
//! * [`chain`] — generic continuous-time Markov chain construction.
//! * [`solve`] — steady-state solvers: the subtraction-free GTH algorithm
//!   (full relative accuracy for the `1e-14`-scale unavailabilities of
//!   Table 1) plus a uniformized power-iteration cross-check.
//! * [`dynamic`] — the paper's Figure 3 state diagram, generalized over the
//!   minimum epoch size (grid: 3, majority voting: 2).
//! * [`exact`] — the structure-aware `(epoch, up-set)` chain for a concrete
//!   coterie rule, quantifying where the idealized model and the published
//!   pseudo-code disagree.
//!
//! ```
//! use coterie_markov::DynamicModel;
//!
//! // Table 1, N = 9, p = 0.95 (mu/lambda = 19): dynamic grid.
//! let u = DynamicModel::grid(9, 1.0, 19.0).unavailability().unwrap();
//! assert!((u - 0.18e-6).abs() / 0.18e-6 < 0.05);
//! ```

pub mod chain;
pub mod dynamic;
pub mod exact;
pub mod solve;

pub use chain::{Ctmc, CtmcBuilder};
pub use dynamic::{DynamicModel, EpochState};
pub use exact::{exact_chain, exact_unavailability, exact_unavailability_kind, ExactState};
pub use solve::{probability_of, stationary, steady_state_power, SolveError};
