//! Regenerates the paper's Figures 1-3 (experiments E2-E4).
//!
//! Usage: `figures [1|2|3] [n]` — with no argument, prints all three.

use coterie_harness::experiments::figures;

fn main() {
    let which = std::env::args().nth(1);
    let n: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(9);
    match which.as_deref() {
        Some("1") => print!("{}", figures::figure1()),
        Some("2") => print!("{}", figures::figure2()),
        Some("3") => print!("{}", figures::figure3(n)),
        _ => {
            println!("{}", figures::figure1());
            println!("{}", figures::figure2());
            println!("{}", figures::figure3(n));
        }
    }
}
