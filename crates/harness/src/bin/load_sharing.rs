//! Load sharing and message traffic by coterie rule (experiment E7).
//!
//! Usage: `load_sharing [n] [duration_secs] [seed]`

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(9);
    let dur: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(21);
    print!(
        "{}",
        coterie_harness::experiments::load_sharing::render(n, dur, seed)
    );
}
