//! Monte-Carlo validation of the availability models (experiment E5).
//!
//! Usage: `site_sim [horizon] [replications] [seed]`

fn main() {
    let mut args = std::env::args().skip(1);
    let horizon: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30_000.0);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);
    print!(
        "{}",
        coterie_harness::experiments::site_sim::render(horizon, reps, seed)
    );
}
