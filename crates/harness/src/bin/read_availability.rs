//! Read availability analysis (experiment E12).
//!
//! Usage: `read_availability [p]`

fn main() {
    let p: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.95);
    print!(
        "{}",
        coterie_harness::experiments::read_availability::render(&[3, 4, 5, 6, 9, 12, 16, 20], p)
    );
}
