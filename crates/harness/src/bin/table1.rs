//! Regenerates the paper's Table 1 (experiment E1): write unavailability of
//! the best static grid vs the dynamic grid protocol at p = 0.95.
//!
//! Usage: `table1 [p]`

fn main() {
    let p: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.95);
    print!("{}", coterie_harness::experiments::table1::render(p));
}
