//! Sensitivity to the epoch-check rate (experiment E9).
//!
//! Usage: `epoch_rate [n] [p] [horizon] [replications]`

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(9);
    let p: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.9);
    let horizon: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20_000.0);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    print!(
        "{}",
        coterie_harness::experiments::epoch_rate::render(n, p, horizon, reps, 17)
    );
}
