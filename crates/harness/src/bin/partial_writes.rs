//! Stale marking vs write-all-current (experiment E8), with and without
//! churn.
//!
//! Usage: `partial_writes [n] [duration_secs] [seed]`

use coterie_harness::experiments::partial_writes;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(9);
    let dur: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(31);
    println!("{}", partial_writes::render(n, dur, seed, false));
    println!("{}", partial_writes::render(n, dur, seed, true));
}
