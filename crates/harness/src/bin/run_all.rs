//! Runs every experiment (E1-E12) and prints all tables and figures.
//! Mirrors the per-experiment index in EXPERIMENTS.md.
//!
//! Usage: `run_all [--quick]` — `--quick` shortens the Monte-Carlo runs.

use coterie_harness::experiments::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (horizon, reps) = if quick { (4_000.0, 4) } else { (20_000.0, 8) };

    println!("{}", table1::render(0.95));
    println!("{}", figures::figure1());
    println!("{}", figures::figure2());
    println!("{}", figures::figure3(9));
    println!("{}", site_sim::render(horizon, reps, 7));
    println!("{}", quorum_sizes::render(&quorum_sizes::DEFAULT_NS));
    println!(
        "{}",
        load_sharing::render(9, if quick { 10 } else { 30 }, 21)
    );
    println!(
        "{}",
        partial_writes::render(9, if quick { 15 } else { 30 }, 31, true)
    );
    println!("{}", epoch_rate::render(9, 0.9, horizon, reps, 17));
    println!("{}", exact_availability::render(0.9, horizon, reps, 23));
    println!(
        "{}",
        dyn_compare::render(&dyn_compare::DEFAULT_NS, &dyn_compare::DEFAULT_PS)
    );
    println!(
        "{}",
        read_availability::render(&[3, 4, 5, 6, 9, 12, 16, 20], 0.95)
    );
    println!(
        "{}",
        safety_ablation::render(9, if quick { 20 } else { 40 }, 41)
    );
}
