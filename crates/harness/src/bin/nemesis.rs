//! Nemesis soak: long randomized crash / partition / storage-fault
//! schedules over grid and majority clusters, asserting zero epoch-safety,
//! coherence, or one-copy-serializability violations after every recovery
//! and at the end of every schedule.
//!
//! Usage: `nemesis [runs_per_rule] [base_seed] [steps] [rule]`
//!
//! `rule` restricts the sweep to one coterie family (`grid` or
//! `majority`); omitted, both are soaked.
//!
//! Exits non-zero if any run found a violation. Dirty runs dump their
//! flight recorder (the causally merged last-N trace records per node) to
//! `target/nemesis-seed{seed}-{cell}-trace.jsonl` plus a human-readable
//! `.txt` timeline.

use std::path::PathBuf;
use std::sync::Arc;

use coterie_harness::nemesis::{soak, NemesisConfig, NemesisReport};
use coterie_harness::recorder::write_dump;
use coterie_quorum::{CoterieRule, GridCoterie, MajorityCoterie};

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(25);
    let base_seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0x5EED);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3_000);
    let only_rule = args.next();

    let setups: [(&str, Arc<dyn CoterieRule>, usize); 2] = [
        ("grid", Arc::new(GridCoterie::new()), 4),
        ("majority", Arc::new(MajorityCoterie::new()), 5),
    ];

    // Each cluster soaks twice: the plain write path, then with all three
    // PR-6 write-path optimisations (coordinator batching, pipelined 2PC,
    // group commit) enabled — the optimised path must survive the same
    // fault schedule.
    let variants: [(&str, usize, u32, usize); 2] = [("", 1, 1, 1), ("+batch+pipeline+gc", 4, 3, 8)];

    let mut failed = false;
    let mut schedules = 0u64;
    for (name, rule, n_nodes) in setups {
        if only_rule.as_deref().is_some_and(|r| r != name) {
            continue;
        }
        for (suffix, write_batch, pipeline_window, group_commit) in variants {
            let cfg = NemesisConfig {
                n_nodes,
                steps,
                write_batch,
                pipeline_window,
                group_commit,
                ..Default::default()
            };
            let report = soak(rule.clone(), base_seed, runs, &cfg);
            print_report(&format!("{name}{suffix}"), n_nodes, runs, &report);
            schedules += runs;
            if !report.clean() {
                failed = true;
                for run in &report.dirty {
                    eprintln!("== seed {} ==", run.seed);
                    for v in &run.violations {
                        eprintln!("  {v}");
                    }
                    if let Some(dump) = &run.trace {
                        let prefix = PathBuf::from(format!(
                            "target/nemesis-seed{}-{name}{suffix}-trace",
                            run.seed
                        ));
                        match write_dump(dump, &prefix) {
                            Ok((jsonl, txt)) => eprintln!(
                                "  flight recorder ({} records, {} evicted): {} / {}",
                                dump.records,
                                dump.dropped,
                                jsonl.display(),
                                txt.display()
                            ),
                            Err(e) => eprintln!("  flight recorder dump failed: {e}"),
                        }
                    }
                }
            }
        }
    }
    if failed {
        eprintln!("nemesis: VIOLATIONS FOUND");
        std::process::exit(1);
    }
    println!("nemesis: all {schedules} schedules clean");
}

fn print_report(name: &str, n_nodes: usize, runs: u64, r: &NemesisReport) {
    println!(
        "{name} ({n_nodes} nodes, {runs} seeds): \
         {} crashes, {} recoveries ({} torn tails, {} quarantined), \
         {} storage faults fired, {} rejoins, \
         {} writes + {} reads checked, {} dirty runs",
        r.crashes,
        r.recoveries,
        r.torn_tails,
        r.quarantines,
        r.faults_fired,
        r.rejoined,
        r.writes_committed,
        r.reads_checked,
        r.dirty.len()
    );
}
