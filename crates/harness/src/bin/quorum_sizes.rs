//! Quorum-size comparison across coterie rules (experiment E6).

use coterie_harness::experiments::quorum_sizes;

fn main() {
    print!("{}", quorum_sizes::render(&quorum_sizes::DEFAULT_NS));
}
