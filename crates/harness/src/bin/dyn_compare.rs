//! Dynamic grid vs dynamic voting availability (experiment E11).

use coterie_harness::experiments::dyn_compare;

fn main() {
    print!(
        "{}",
        dyn_compare::render(&dyn_compare::DEFAULT_NS, &dyn_compare::DEFAULT_PS)
    );
}
