//! Safety-threshold ablation (experiment E13).
//!
//! Usage: `safety_ablation [n] [duration_secs] [seed]`

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(9);
    let dur: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(41);
    print!(
        "{}",
        coterie_harness::experiments::safety_ablation::render(n, dur, seed)
    );
}
