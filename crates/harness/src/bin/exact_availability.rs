//! Idealized Figure 3 model vs the published grid rule (experiment E10).
//!
//! Usage: `exact_availability [p] [horizon] [replications]`

fn main() {
    let mut args = std::env::args().skip(1);
    let p: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.9);
    let horizon: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(20_000.0);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    print!(
        "{}",
        coterie_harness::experiments::exact_availability::render(p, horizon, reps, 23)
    );
}
