//! Plain-text table rendering and JSON export for experiment reports.

use serde::Serialize;

/// A simple right-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its arity must match the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a small probability the way the paper's Table 1 does
/// (`3268.59e-6`-style scientific with sensible precision).
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    if x.abs() >= 1e-3 {
        format!("{x:.6}")
    } else {
        format!("{x:.4e}")
    }
}

/// Serializes any experiment record to pretty JSON.
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment records are serializable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo", &["n", "value"]);
        t.row(&["9".into(), "3268.59e-6".into()]);
        t.row(&["12".into(), "1e-10".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("n"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into()]);
    }

    #[test]
    fn sci_formatting() {
        assert_eq!(sci(0.0), "0");
        assert!(sci(3268.59e-6).contains("0.003269"));
        assert!(sci(1.8e-7).contains('e'));
    }

    #[test]
    fn json_roundtrip() {
        #[derive(Serialize)]
        struct R {
            n: u32,
        }
        assert!(to_json(&R { n: 5 }).contains("\"n\": 5"));
    }
}
