//! Fault-injection schedules: per-node Poisson crash/repair processes and
//! scripted partition timelines, pre-generated so runs stay reproducible.

use coterie_core::FaultKind;
use coterie_quorum::NodeId;
use coterie_simnet::{Partition, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault-injection parameters.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Per-node crash rate (per simulated second). Zero (or any
    /// non-finite or negative value) disables crashes.
    pub lambda_per_sec: f64,
    /// Per-node repair rate (per simulated second). Zero (or any
    /// non-finite or negative value) makes the first crash of each node
    /// final: it goes down and never recovers within the plan.
    pub mu_per_sec: f64,
    /// Horizon to pre-generate.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// Nodes exempt from crashes (e.g. keep the measured coordinator up).
    pub immune: Vec<NodeId>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            lambda_per_sec: 0.0,
            mu_per_sec: 1.0,
            duration: SimDuration::from_secs(60),
            seed: 0xDEAD,
            immune: Vec::new(),
        }
    }
}

/// One scheduled fault event.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultEvent {
    /// Crash `node`.
    Crash(NodeId),
    /// Recover `node`.
    Recover(NodeId),
    /// Replace the partition.
    Partition(Partition),
    /// Arm a one-shot storage fault at `node`'s next journal append
    /// (consumed by [`StepDriver`](coterie_core::StepDriver)-based
    /// harnesses such as the nemesis soak; simnet scenarios ignore it).
    StorageFault {
        /// The node whose journal misbehaves.
        node: NodeId,
        /// What the append does instead of succeeding.
        kind: FaultKind,
    },
}

/// A pre-generated, time-ordered fault schedule.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The schedule.
    pub events: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    /// Generates independent alternating crash/repair processes for each
    /// (non-immune) node.
    pub fn generate(config: &FaultConfig, n_nodes: usize) -> FaultPlan {
        let mut plan = FaultPlan::default();
        if !config.lambda_per_sec.is_finite() || config.lambda_per_sec <= 0.0 {
            return plan;
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let horizon = config.duration.as_secs_f64();
        for node in (0..n_nodes as u32).map(NodeId) {
            if config.immune.contains(&node) {
                continue;
            }
            let mut t = 0.0f64;
            let mut up = true;
            loop {
                let rate = if up {
                    config.lambda_per_sec
                } else {
                    config.mu_per_sec
                };
                // A non-positive (or NaN/infinite) rate means this state
                // is absorbing — the exponential inter-arrival time would
                // be infinite (or nonsense), so the process stops here
                // rather than emitting events at garbage timestamps.
                if !rate.is_finite() || rate <= 0.0 {
                    break;
                }
                t += -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / rate;
                if t >= horizon {
                    break;
                }
                let at = SimTime((t * 1e6) as u64);
                plan.events.push((
                    at,
                    if up {
                        FaultEvent::Crash(node)
                    } else {
                        FaultEvent::Recover(node)
                    },
                ));
                up = !up;
            }
        }
        plan.events.sort_by_key(|(t, _)| *t);
        plan
    }

    /// A scripted plan: explicit events.
    pub fn scripted(events: Vec<(SimTime, FaultEvent)>) -> FaultPlan {
        let mut plan = FaultPlan { events };
        plan.events.sort_by_key(|(t, _)| *t);
        plan
    }

    /// Adds a partition episode `[from, until)` isolating `island`.
    pub fn with_partition_episode(
        mut self,
        n_nodes: usize,
        island: &[NodeId],
        from: SimTime,
        until: SimTime,
    ) -> FaultPlan {
        self.events.push((
            from,
            FaultEvent::Partition(Partition::split(n_nodes, island)),
        ));
        self.events
            .push((until, FaultEvent::Partition(Partition::connected(n_nodes))));
        self.events.sort_by_key(|(t, _)| *t);
        self
    }

    /// Adds a one-shot storage fault at `node`'s next journal append
    /// after `at`.
    pub fn with_storage_fault(mut self, node: NodeId, at: SimTime, kind: FaultKind) -> FaultPlan {
        self.events
            .push((at, FaultEvent::StorageFault { node, kind }));
        self.events.sort_by_key(|(t, _)| *t);
        self
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the plan holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lambda_means_no_faults() {
        let plan = FaultPlan::generate(&FaultConfig::default(), 5);
        assert!(plan.is_empty());
    }

    #[test]
    fn processes_alternate_per_node() {
        let cfg = FaultConfig {
            lambda_per_sec: 0.5,
            mu_per_sec: 2.0,
            duration: SimDuration::from_secs(100),
            ..Default::default()
        };
        let plan = FaultPlan::generate(&cfg, 3);
        assert!(!plan.is_empty());
        for node in (0..3).map(NodeId) {
            let mine: Vec<_> = plan
                .events
                .iter()
                .filter(|(_, e)| matches!(e, FaultEvent::Crash(n) | FaultEvent::Recover(n) if *n == node))
                .collect();
            let mut expect_crash = true;
            for (_, e) in mine {
                match e {
                    FaultEvent::Crash(_) => {
                        assert!(expect_crash, "two crashes in a row for {node:?}");
                        expect_crash = false;
                    }
                    FaultEvent::Recover(_) => {
                        assert!(!expect_crash);
                        expect_crash = true;
                    }
                    FaultEvent::Partition(_) | FaultEvent::StorageFault { .. } => unreachable!(),
                }
            }
        }
        // Time-ordered overall.
        for pair in plan.events.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
    }

    #[test]
    fn immune_nodes_never_crash() {
        let cfg = FaultConfig {
            lambda_per_sec: 2.0,
            mu_per_sec: 2.0,
            duration: SimDuration::from_secs(50),
            immune: vec![NodeId(0)],
            ..Default::default()
        };
        let plan = FaultPlan::generate(&cfg, 3);
        assert!(plan.events.iter().all(|(_, e)| !matches!(
            e,
            FaultEvent::Crash(n) if *n == NodeId(0)
        )));
    }

    #[test]
    fn degenerate_rates_produce_no_garbage_events() {
        for lambda in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = FaultConfig {
                lambda_per_sec: lambda,
                ..Default::default()
            };
            assert!(
                FaultPlan::generate(&cfg, 4).is_empty(),
                "lambda={lambda} should disable crashes"
            );
        }
    }

    #[test]
    fn zero_mu_means_first_crash_is_final() {
        for mu in [0.0, -3.0, f64::NAN] {
            let cfg = FaultConfig {
                lambda_per_sec: 5.0,
                mu_per_sec: mu,
                duration: SimDuration::from_secs(200),
                ..Default::default()
            };
            let plan = FaultPlan::generate(&cfg, 3);
            for node in (0..3).map(NodeId) {
                let mine: Vec<_> = plan
                    .events
                    .iter()
                    .filter(|(_, e)| {
                        matches!(e, FaultEvent::Crash(n) | FaultEvent::Recover(n) if *n == node)
                    })
                    .collect();
                assert!(
                    mine.len() <= 1,
                    "mu={mu}: {node:?} has {} events",
                    mine.len()
                );
                if let Some((t, e)) = mine.first() {
                    assert!(matches!(e, FaultEvent::Crash(_)));
                    assert!(t.0 < 200_000_000, "event past the horizon");
                }
            }
        }
    }

    #[test]
    fn storage_fault_builder_inserts_in_time_order() {
        let plan = FaultPlan::scripted(vec![(SimTime(8), FaultEvent::Crash(NodeId(1)))])
            .with_storage_fault(NodeId(2), SimTime(3), FaultKind::TornWrite)
            .with_storage_fault(NodeId(0), SimTime(12), FaultKind::BitFlip);
        assert_eq!(plan.len(), 3);
        assert_eq!(
            plan.events[0].1,
            FaultEvent::StorageFault {
                node: NodeId(2),
                kind: FaultKind::TornWrite
            }
        );
        assert!(matches!(plan.events[1].1, FaultEvent::Crash(_)));
        assert_eq!(
            plan.events[2].1,
            FaultEvent::StorageFault {
                node: NodeId(0),
                kind: FaultKind::BitFlip
            }
        );
        for pair in plan.events.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
    }

    #[test]
    fn partition_episode_brackets() {
        let plan = FaultPlan::scripted(vec![]).with_partition_episode(
            4,
            &[NodeId(3)],
            SimTime(5),
            SimTime(10),
        );
        assert_eq!(plan.len(), 2);
        assert!(matches!(plan.events[0].1, FaultEvent::Partition(_)));
        assert!(plan.events[0].0 < plan.events[1].0);
    }
}
