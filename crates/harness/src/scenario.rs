//! The full-protocol scenario runner: builds a replica cluster on the
//! discrete-event simulator, injects a workload and a fault plan, collects
//! the outputs, runs the consistency checker, and aggregates metrics.

// Tool-side aggregation; hash maps never feed engine effects.
#![allow(clippy::disallowed_types)]

use crate::checker::{check_run, CheckReport};
use crate::faults::{FaultEvent, FaultPlan};
use crate::metrics::{LatencyStats, LoadStats};
use crate::workload::Workload;
use coterie_core::{MsgClass, ProtocolConfig, ProtocolEvent, ReplicaNode};
use coterie_quorum::NodeId;
use coterie_simnet::{Sim, SimConfig, SimDuration, SimTime};
use serde::Serialize;
use std::collections::HashMap;

/// Everything a scenario needs.
#[derive(Clone)]
pub struct Scenario {
    /// Protocol configuration shared by all replicas.
    pub protocol: ProtocolConfig,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Pre-generated workload.
    pub workload: Workload,
    /// Pre-generated faults.
    pub faults: FaultPlan,
    /// Extra settling time after the last scheduled event.
    pub drain: SimDuration,
}

/// Aggregated results of one scenario run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ScenarioResult {
    /// Operations issued.
    pub ops_issued: usize,
    /// Committed writes.
    pub writes_ok: u64,
    /// Failed writes.
    pub writes_failed: u64,
    /// Completed reads.
    pub reads_ok: u64,
    /// Failed reads.
    pub reads_failed: u64,
    /// Total messages put on the network.
    pub msgs_sent: u64,
    /// Messages received, by class name.
    pub msgs_by_class: HashMap<String, u64>,
    /// Messages per *completed* operation.
    pub msgs_per_op: f64,
    /// Write latency distribution.
    #[serde(skip)]
    pub write_latency: LatencyStats,
    /// Read latency distribution.
    #[serde(skip)]
    pub read_latency: LatencyStats,
    /// Per-node received-message load.
    pub load: LoadStats,
    /// Client-level retries.
    pub retries: u64,
    /// Heavy-procedure invocations.
    pub heavy_runs: u64,
    /// Epoch changes committed.
    pub epoch_changes: u64,
    /// Propagations completed.
    pub propagations: u64,
    /// Synchronous reconciliations (write-all-current baseline).
    pub sync_reconciliations: u64,
    /// Mean replicas touched per committed write.
    pub replicas_touched_avg: f64,
    /// Mean replicas marked stale per committed write.
    pub marked_stale_avg: f64,
    /// Consistency verdict.
    #[serde(skip)]
    pub check: CheckReport,
}

impl ScenarioResult {
    /// Fraction of issued writes that committed.
    pub fn write_success_rate(&self) -> f64 {
        let total = self.writes_ok + self.writes_failed;
        if total == 0 {
            return 1.0;
        }
        self.writes_ok as f64 / total as f64
    }

    /// Fraction of issued reads that completed.
    pub fn read_success_rate(&self) -> f64 {
        let total = self.reads_ok + self.reads_failed;
        if total == 0 {
            return 1.0;
        }
        self.reads_ok as f64 / total as f64
    }
}

/// Runs a scenario to completion.
pub fn run_scenario(scenario: &Scenario) -> ScenarioResult {
    let n = scenario.protocol.n_replicas;
    // Thread the run seed into the engine: protocol jitter is drawn from
    // the sans-I/O engine's own RNG, so distinct scenario seeds must reach
    // it for runs to decorrelate.
    let protocol = scenario.protocol.clone().rng_seed(scenario.sim.seed);
    let mut sim: Sim<ReplicaNode> = Sim::new(n, scenario.sim.clone(), |id| {
        ReplicaNode::new(id, protocol.clone())
    });

    // Schedule the workload.
    let mut last_event = SimTime::ZERO;
    for (at, node, req) in &scenario.workload.ops {
        sim.schedule_external(*at, *node, req.clone());
        last_event = last_event.max(*at);
    }
    // Schedule the faults.
    for (at, fault) in &scenario.faults.events {
        match fault {
            FaultEvent::Crash(node) => sim.schedule_crash(*at, *node),
            FaultEvent::Recover(node) => sim.schedule_recover(*at, *node),
            FaultEvent::Partition(p) => sim.schedule_partition(*at, p.clone()),
            // Storage faults need a journaling host; the simnet scenario
            // runs bare engines, so only the StepDriver-based nemesis
            // harness honors these events.
            FaultEvent::StorageFault { .. } => {}
        }
        last_event = last_event.max(*at);
    }

    sim.run_until(last_event + scenario.drain);
    let events = sim.take_outputs();

    // Aggregate.
    let mut result = ScenarioResult {
        ops_issued: scenario.workload.len(),
        ..Default::default()
    };
    for (t, _, e) in &events {
        match e {
            ProtocolEvent::WriteOk { id, .. } => {
                if let Some(op) = scenario.workload.issued.get(id) {
                    result.write_latency.record(t.since(op.at));
                }
            }
            ProtocolEvent::ReadOk { id, .. } => {
                if let Some(op) = scenario.workload.issued.get(id) {
                    result.read_latency.record(t.since(op.at));
                }
            }
            _ => {}
        }
    }
    for id in 0..n as u32 {
        let stats = &sim.node(NodeId(id)).stats;
        result.writes_ok += stats.writes_ok();
        result.writes_failed += stats.writes_failed();
        result.reads_ok += stats.reads_ok();
        result.reads_failed += stats.reads_failed();
        result.retries += stats.retries();
        result.heavy_runs += stats.heavy_runs();
        result.epoch_changes += stats.epoch_changes();
        result.propagations += stats.propagations_done();
        result.sync_reconciliations += stats.sync_reconciliations();
        for class in MsgClass::ALL {
            let count = stats.msgs_in(class);
            if count > 0 {
                *result
                    .msgs_by_class
                    .entry(format!("{class:?}"))
                    .or_insert(0) += count;
            }
        }
        if stats.writes_ok() > 0 {
            result.replicas_touched_avg += stats.replicas_touched_sum() as f64;
            result.marked_stale_avg += stats.marked_stale_sum() as f64;
        }
    }
    if result.writes_ok > 0 {
        result.replicas_touched_avg /= result.writes_ok as f64;
        result.marked_stale_avg /= result.writes_ok as f64;
    }
    result.msgs_sent = sim.counters().sent;
    let completed = result.writes_ok + result.reads_ok;
    result.msgs_per_op = if completed > 0 {
        result.msgs_sent as f64 / completed as f64
    } else {
        0.0
    };
    result.load = LoadStats::new(sim.counters().received_by.clone());
    result.check = check_run(
        &scenario.workload.issued,
        &events,
        scenario.protocol.n_pages,
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;
    use crate::workload::WorkloadConfig;
    use coterie_quorum::GridCoterie;
    use std::sync::Arc;

    fn base_scenario(seed: u64, faults: FaultPlan) -> Scenario {
        let n = 9;
        let protocol = ProtocolConfig::new(Arc::new(GridCoterie::new()), n)
            .check_period(SimDuration::from_secs(2));
        let workload = Workload::generate(
            &WorkloadConfig {
                ops_per_sec: 20.0,
                duration: SimDuration::from_secs(20),
                seed,
                ..Default::default()
            },
            n,
        );
        Scenario {
            protocol,
            sim: SimConfig {
                seed,
                ..Default::default()
            },
            workload,
            faults,
            drain: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn fault_free_run_is_consistent_and_complete() {
        let s = base_scenario(1, FaultPlan::default());
        let r = run_scenario(&s);
        assert!(r.check.consistent(), "{:?}", r.check.violations);
        assert!(r.write_success_rate() > 0.99, "{r:?}");
        assert!(r.read_success_rate() > 0.99);
        assert!(r.msgs_per_op > 1.0);
        assert!(r.epoch_changes == 0, "no failures, no epoch changes");
    }

    #[test]
    fn faulty_run_stays_consistent() {
        let n = 9;
        let faults = FaultPlan::generate(
            &FaultConfig {
                lambda_per_sec: 0.05,
                mu_per_sec: 0.5,
                duration: SimDuration::from_secs(20),
                seed: 99,
                ..Default::default()
            },
            n,
        );
        let s = base_scenario(2, faults);
        let r = run_scenario(&s);
        assert!(
            r.check.consistent(),
            "consistency violated under faults: {:?}",
            r.check.violations
        );
        assert!(r.writes_ok > 0);
        assert!(r.epoch_changes > 0, "faults should trigger epoch changes");
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let a = run_scenario(&base_scenario(7, FaultPlan::default()));
        let b = run_scenario(&base_scenario(7, FaultPlan::default()));
        assert_eq!(a.writes_ok, b.writes_ok);
        assert_eq!(a.msgs_sent, b.msgs_sent);
        assert_eq!(a.reads_ok, b.reads_ok);
    }
}
