//! # coterie-harness
//!
//! Experiment infrastructure for the dynamic structured coterie
//! reproduction: the §6 site-model Monte Carlo ([`sitemodel`]), a
//! full-protocol scenario runner over the discrete-event simulator
//! ([`scenario`]), Poisson workload and fault generators ([`workload`],
//! [`faults`]), a one-copy-serializability checker ([`checker`]), metrics
//! ([`metrics`]), report rendering ([`report`]), the nemesis storage-fault
//! soak ([`nemesis`]), and the per-experiment drivers ([`experiments`])
//! that regenerate every table and figure of the paper (see EXPERIMENTS.md
//! at the repository root).

pub mod checker;
pub mod experiments;
pub mod explore;
pub mod faults;
pub mod metrics;
pub mod nemesis;
pub mod recorder;
pub mod report;
pub mod scenario;
pub mod sitemodel;
pub mod workload;

pub use checker::{check_run, CheckReport, Violation};
pub use explore::{explore, ExploreReport, ExplorerConfig};
pub use faults::{FaultConfig, FaultEvent, FaultPlan};
pub use metrics::{LatencyStats, LoadStats};
pub use nemesis::{run_nemesis, soak, NemesisConfig, NemesisReport, NemesisRun};
pub use report::{sci, to_json, Table};
pub use scenario::{run_scenario, Scenario, ScenarioResult};
pub use sitemodel::{
    replicated_unavailability, simulate, AvailabilityEstimate, EpochDynamics, SiteModelConfig,
};
pub use workload::{IssuedOp, Workload, WorkloadConfig};
