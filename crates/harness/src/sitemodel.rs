//! Monte-Carlo simulation of the §6 *site model*: nodes fail and repair as
//! independent Poisson processes; links are reliable; operations are
//! instantaneous. Used to cross-validate the Markov-chain availabilities
//! (experiment E5), to relax the "epoch checking between any two events"
//! assumption (E9), and to measure the structure-aware dynamics at sizes
//! the exact chain cannot reach (E10).

use coterie_quorum::{CoterieRule, NodeId, NodeSet, PlanCache, QuorumKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// How the epoch reacts to failures and repairs.
#[derive(Clone)]
pub enum EpochDynamics {
    /// The paper's idealized Figure 3 model: any epoch larger than
    /// `min_epoch` survives a single failure; an epoch of exactly
    /// `min_epoch` freezes on any failure and thaws only when all its
    /// members are simultaneously up.
    Idealized {
        /// Smallest epoch size that blocks on failure (grid: 3).
        min_epoch: usize,
    },
    /// The published coterie rule decides: an epoch re-forms iff the up
    /// members of the current epoch include a write quorum over it.
    Exact {
        /// The coterie rule.
        rule: Arc<dyn CoterieRule>,
    },
    /// No epoch adjustment (the conventional static protocol): available
    /// iff the up set includes a write quorum over the full replica set.
    Static {
        /// The coterie rule.
        rule: Arc<dyn CoterieRule>,
    },
}

/// Site-model simulation parameters.
#[derive(Clone)]
pub struct SiteModelConfig {
    /// Number of replicas.
    pub n: usize,
    /// Per-node failure rate.
    pub lambda: f64,
    /// Per-node repair rate.
    pub mu: f64,
    /// Epoch dynamics under test.
    pub dynamics: EpochDynamics,
    /// Epoch-check rate. `None` = instantaneous checking after every event
    /// (site-model assumption 4); `Some(rate)` = Poisson epoch checks,
    /// relaxing the assumption (experiment E9).
    pub check_rate: Option<f64>,
    /// Total simulated time (in `1/lambda` units).
    pub horizon: f64,
    /// Warm-up time excluded from the estimate.
    pub warmup: f64,
    /// RNG seed.
    pub seed: u64,
}

/// The estimate produced by one run.
#[derive(Clone, Copy, Debug)]
pub struct AvailabilityEstimate {
    /// Fraction of (post-warm-up) time the object was writable.
    pub availability: f64,
    /// `1 - availability`.
    pub unavailability: f64,
    /// Number of failure/repair events simulated.
    pub events: u64,
    /// Number of epoch changes performed.
    pub epoch_changes: u64,
}

enum SimEvent {
    Fail(usize),
    Repair(usize),
    EpochCheck,
}

/// Runs one Monte-Carlo site-model simulation.
pub fn simulate(config: &SiteModelConfig) -> AvailabilityEstimate {
    let n = config.n;
    assert!(n >= 1);
    // The idealized dynamics' availability predicate (epoch == up-set)
    // is only meaningful under instantaneous checking; rate-limited
    // checking (E9) needs the structure-aware predicate.
    assert!(
        config.check_rate.is_none() || !matches!(config.dynamics, EpochDynamics::Idealized { .. }),
        "rate-limited epoch checking requires Exact or Static dynamics"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut up = NodeSet::first_n(n);
    let mut epoch = NodeSet::first_n(n);
    let mut t = 0.0f64;
    let mut available_time = 0.0f64;
    let mut measured_time = 0.0f64;
    let mut events = 0u64;
    let mut epoch_changes = 0u64;

    // Quorum predicates are evaluated on every event but always against
    // the current epoch; the cache compiles one plan per distinct epoch.
    let mut plans = PlanCache::new();
    let available = |plans: &mut PlanCache, epoch: NodeSet, up: NodeSet| -> bool {
        match &config.dynamics {
            EpochDynamics::Idealized { min_epoch } => {
                // Frozen epochs are exactly the case epoch ⊄ up; while the
                // epoch tracks the up set the system is available as long
                // as the epoch is at least the minimum size.
                epoch.is_subset_of(up) && epoch.len() >= (*min_epoch).min(n)
            }
            EpochDynamics::Exact { rule } | EpochDynamics::Static { rule } => plans
                .plan_for_set(&**rule, epoch)
                .includes_quorum_with(&**rule, up.intersection(epoch), QuorumKind::Write),
        }
    };
    let can_reform = |plans: &mut PlanCache, epoch: NodeSet, up: NodeSet| -> bool {
        match &config.dynamics {
            EpochDynamics::Idealized { min_epoch } => {
                let me = (*min_epoch).min(n);
                let survivors = up.intersection(epoch).len();
                // A write quorum of the idealized epoch: all members for
                // epochs at the minimum size, all-but-one above it.
                if epoch.len() <= me {
                    survivors == epoch.len()
                } else {
                    survivors + 1 >= epoch.len()
                }
            }
            EpochDynamics::Exact { rule } => plans
                .plan_for_set(&**rule, epoch)
                .includes_quorum_with(&**rule, up.intersection(epoch), QuorumKind::Write),
            EpochDynamics::Static { .. } => false,
        }
    };

    while t < config.horizon {
        let up_count = up.len() as f64;
        let down_count = (n - up.len()) as f64;
        let check = config.check_rate.unwrap_or(0.0);
        let total_rate = up_count * config.lambda + down_count * config.mu + check;
        debug_assert!(total_rate > 0.0);
        let dt = -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / total_rate;
        // Accrue availability over the sojourn [t, t+dt).
        if t >= config.warmup {
            measured_time += dt;
            if available(&mut plans, epoch, up) {
                available_time += dt;
            }
        } else if t + dt > config.warmup {
            let tail = t + dt - config.warmup;
            measured_time += tail;
            if available(&mut plans, epoch, up) {
                available_time += tail;
            }
        }
        t += dt;
        // Sample which event fired.
        let x = rng.gen::<f64>() * total_rate;
        let event = if x < up_count * config.lambda {
            let k = rng.gen_range(0..up.len());
            SimEvent::Fail(k)
        } else if x < up_count * config.lambda + down_count * config.mu {
            let k = rng.gen_range(0..(n - up.len()));
            SimEvent::Repair(k)
        } else {
            SimEvent::EpochCheck
        };
        let is_check_event = matches!(event, SimEvent::EpochCheck);
        match event {
            SimEvent::Fail(k) => {
                let node = up.iter().nth(k).expect("k < up.len()");
                up.remove(node);
                events += 1;
            }
            SimEvent::Repair(k) => {
                let down: Vec<NodeId> = NodeSet::first_n(n).difference(up).to_vec();
                up.insert(down[k]);
                events += 1;
            }
            SimEvent::EpochCheck => {}
        }
        // Epoch checking: instantaneous mode runs after every fail/repair;
        // rate mode only on EpochCheck events.
        let run_check = match config.check_rate {
            None => !is_check_event,
            Some(_) => is_check_event,
        };
        if run_check
            && !matches!(config.dynamics, EpochDynamics::Static { .. })
            && epoch != up
            && can_reform(&mut plans, epoch, up)
        {
            epoch = up;
            epoch_changes += 1;
        }
    }
    let availability = if measured_time > 0.0 {
        available_time / measured_time
    } else {
        1.0
    };
    AvailabilityEstimate {
        availability,
        unavailability: 1.0 - availability,
        events,
        epoch_changes,
    }
}

/// Runs `replications` independent simulations and returns the mean
/// unavailability plus its standard error.
pub fn replicated_unavailability(config: &SiteModelConfig, replications: usize) -> (f64, f64) {
    assert!(replications >= 1);
    let run = |i: usize| {
        let mut c = config.clone();
        c.seed = config.seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9);
        simulate(&c).unavailability
    };
    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1)
        .min(replications);
    // Replications are independent and each is seeded by its own index, so
    // the sample vector is identical to the sequential one no matter how
    // many worker threads carry them.
    let samples: Vec<f64> = if workers <= 1 {
        (0..replications).map(run).collect()
    } else {
        std::thread::scope(|scope| {
            let run = &run;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        (w..replications)
                            .step_by(workers)
                            .map(|i| (i, run(i)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut samples = vec![0.0; replications];
            for h in handles {
                for (i, s) in h.join().unwrap() {
                    samples[i] = s;
                }
            }
            samples
        })
    };
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
        / (samples.len().max(2) - 1) as f64;
    (mean, (var / samples.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_markov::DynamicModel;
    use coterie_quorum::availability::{grid_write_availability, majority_write_availability};
    use coterie_quorum::{GridCoterie, GridShape, MajorityCoterie};

    fn cfg(n: usize, mu: f64, dynamics: EpochDynamics) -> SiteModelConfig {
        SiteModelConfig {
            n,
            lambda: 1.0,
            mu,
            dynamics,
            check_rate: None,
            horizon: 30_000.0,
            warmup: 100.0,
            seed: 7,
        }
    }

    #[test]
    fn static_grid_mc_matches_closed_form() {
        // p = 0.6 (mu/lambda = 1.5) keeps unavailability large enough to
        // estimate accurately in a short run.
        let c = cfg(
            9,
            1.5,
            EpochDynamics::Static {
                rule: Arc::new(GridCoterie::new()),
            },
        );
        let (mc, se) = replicated_unavailability(&c, 8);
        let exact = 1.0 - grid_write_availability(GridShape::define(9), 0.6);
        assert!(
            (mc - exact).abs() < 5.0 * se.max(1e-3),
            "MC {mc:.4} vs exact {exact:.4} (se {se:.5})"
        );
    }

    #[test]
    fn static_majority_mc_matches_closed_form() {
        let c = cfg(
            5,
            1.5,
            EpochDynamics::Static {
                rule: Arc::new(MajorityCoterie::new()),
            },
        );
        let (mc, se) = replicated_unavailability(&c, 8);
        let exact = 1.0 - majority_write_availability(5, 0.6);
        assert!((mc - exact).abs() < 5.0 * se.max(1e-3), "{mc} vs {exact}");
    }

    #[test]
    fn idealized_mc_matches_figure3_chain() {
        let c = cfg(6, 1.5, EpochDynamics::Idealized { min_epoch: 3 });
        let (mc, se) = replicated_unavailability(&c, 8);
        let chain = DynamicModel::grid(6, 1.0, 1.5).unavailability().unwrap();
        assert!(
            (mc - chain).abs() < 6.0 * se.max(1e-3),
            "MC {mc:.5} vs chain {chain:.5} (se {se:.6})"
        );
    }

    #[test]
    fn exact_mc_matches_exact_chain_small_n() {
        let rule: Arc<dyn CoterieRule> = Arc::new(GridCoterie::new());
        let c = cfg(5, 1.5, EpochDynamics::Exact { rule: rule.clone() });
        let (mc, se) = replicated_unavailability(&c, 8);
        let chain = coterie_markov::exact_unavailability(&*rule, 5, 1.0, 1.5).unwrap();
        assert!(
            (mc - chain).abs() < 6.0 * se.max(1e-3),
            "MC {mc:.5} vs exact chain {chain:.5}"
        );
    }

    #[test]
    fn dynamic_beats_static_in_mc() {
        let stat = cfg(
            9,
            1.5,
            EpochDynamics::Static {
                rule: Arc::new(GridCoterie::new()),
            },
        );
        let dynm = cfg(9, 1.5, EpochDynamics::Idealized { min_epoch: 3 });
        let (us, _) = replicated_unavailability(&stat, 4);
        let (ud, _) = replicated_unavailability(&dynm, 4);
        assert!(ud < us, "dynamic {ud} should beat static {us}");
    }

    #[test]
    fn slower_epoch_checking_hurts_availability() {
        let mut fast = cfg(
            6,
            1.5,
            EpochDynamics::Exact {
                rule: Arc::new(GridCoterie::new()),
            },
        );
        fast.check_rate = Some(50.0);
        let mut slow = fast.clone();
        slow.check_rate = Some(0.2);
        let (uf, _) = replicated_unavailability(&fast, 6);
        let (us, _) = replicated_unavailability(&slow, 6);
        assert!(
            uf < us,
            "frequent checks ({uf:.4}) should beat rare checks ({us:.4})"
        );
    }

    #[test]
    fn estimate_fields_are_consistent() {
        let c = cfg(4, 2.0, EpochDynamics::Idealized { min_epoch: 3 });
        let est = simulate(&c);
        assert!((est.availability + est.unavailability - 1.0).abs() < 1e-12);
        assert!(est.events > 1000);
        assert!(est.epoch_changes > 0);
        assert!(est.availability > 0.0 && est.availability < 1.0);
    }
}
