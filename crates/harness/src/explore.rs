//! Bounded interleaving exploration over the sans-I/O engine.
//!
//! The simulator samples *one* schedule per seed; this module instead
//! walks the tree of schedules. From every reached cluster state it forks
//! the [`StepDriver`] and tries each enabled event — every pending message
//! delivery, every armed timer, and (under a budget) crashing or
//! recovering a replica — deduplicating revisited states by digest.
//!
//! At every state it asserts the **epoch-safety invariant** (two replicas
//! in the same epoch number agree on the epoch list, and two current
//! replicas at the same version hold identical objects); at the end of
//! every explored schedule it drains the cluster deterministically and
//! runs the **one-copy-serializability checker** over the complete output
//! history. A clean report therefore says: on every explored interleaving
//! of this workload, the protocol never tore an epoch and never produced a
//! non-serializable run.

// Explorer frontier/dedup tables are tool-side state (digests are already
// canonical strings); hash collections are fine here.
#![allow(clippy::disallowed_types)]

use std::collections::{HashMap, HashSet};

use coterie_core::{DriverEvent, StepDriver};
use coterie_quorum::NodeId;
use coterie_simnet::SimDuration;

use crate::checker::check_run;
use crate::workload::IssuedOp;

/// Exploration bounds and fault options.
#[derive(Clone, Debug)]
pub struct ExplorerConfig {
    /// Maximum schedule length (events from the root) before a branch is
    /// force-drained and checked.
    pub max_depth: usize,
    /// Maximum distinct states to visit; exploration truncates beyond it.
    pub max_states: usize,
    /// Crash events allowed per schedule.
    pub crash_budget: usize,
    /// Nodes the explorer may crash (and later recover).
    pub crashable: Vec<NodeId>,
    /// Pages per object (must match the protocol config; the checker
    /// replays writes against a fresh object of this size).
    pub n_pages: usize,
    /// How much driver time the deterministic drain at the end of each
    /// schedule simulates before the 1SR check runs.
    pub drain: SimDuration,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            max_depth: 24,
            max_states: 50_000,
            crash_budget: 0,
            crashable: Vec::new(),
            n_pages: 16,
            drain: SimDuration::from_secs(30),
        }
    }
}

/// What an exploration saw.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// Distinct cluster states visited (after dedup).
    pub distinct_states: usize,
    /// Schedules explored: every maximal path, whether it ended quiescent,
    /// hit the depth bound, merged into a visited state, or was truncated.
    pub schedules: usize,
    /// Schedules whose drained output history went through the 1SR checker.
    pub schedules_checked: usize,
    /// True if `max_states` stopped the walk before exhausting the tree.
    pub truncated: bool,
    /// Human-readable descriptions of every violation found.
    pub violations: Vec<String>,
}

impl ExploreReport {
    /// True when no invariant or serializability violation was found.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exhaustively (within bounds) explores schedules of `driver`'s cluster.
///
/// `driver` should already have the workload injected; `issued` is the
/// checker's view of that workload.
pub fn explore(
    driver: &StepDriver,
    issued: &HashMap<u64, IssuedOp>,
    config: &ExplorerConfig,
) -> ExploreReport {
    let mut report = ExploreReport::default();
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(driver.state_digest());
    report.distinct_states = 1;
    check_invariants(driver, &mut report);
    dfs(driver, 0, 0, &mut visited, issued, config, &mut report);
    report
}

/// Caps the violation list so a badly broken protocol doesn't drown the
/// report (and the explorer short-circuits once it is pointless).
const MAX_VIOLATIONS: usize = 32;

fn dfs(
    driver: &StepDriver,
    depth: usize,
    crashes_used: usize,
    visited: &mut HashSet<u64>,
    issued: &HashMap<u64, IssuedOp>,
    config: &ExplorerConfig,
    report: &mut ExploreReport,
) {
    if report.violations.len() >= MAX_VIOLATIONS {
        return;
    }

    let events = enabled_events(driver, crashes_used, config);
    if events.is_empty() || depth >= config.max_depth {
        finish_schedule(driver, issued, config, report);
        return;
    }

    for event in events {
        if visited.len() >= config.max_states {
            report.truncated = true;
            report.schedules += 1;
            return;
        }
        if report.violations.len() >= MAX_VIOLATIONS {
            return;
        }
        let mut next = driver.clone();
        next.perform(event);
        if visited.insert(next.state_digest()) {
            report.distinct_states += 1;
            check_invariants(&next, report);
            let crashed = matches!(event, DriverEvent::Crash(_)) as usize;
            dfs(
                &next,
                depth + 1,
                crashes_used + crashed,
                visited,
                issued,
                config,
                report,
            );
        } else {
            // This schedule merged into an already-explored state; its
            // future is covered by the first visit.
            report.schedules += 1;
        }
    }
}

fn enabled_events(
    driver: &StepDriver,
    crashes_used: usize,
    config: &ExplorerConfig,
) -> Vec<DriverEvent> {
    let mut events: Vec<DriverEvent> = Vec::new();
    for i in 0..driver.pending_messages().len() {
        events.push(DriverEvent::Deliver(i));
    }
    for i in 0..driver.pending_timers().len() {
        events.push(DriverEvent::Fire(i));
    }
    for &node in &config.crashable {
        if driver.is_down(node) {
            events.push(DriverEvent::Recover(node));
        } else if crashes_used < config.crash_budget {
            events.push(DriverEvent::Crash(node));
        }
    }
    events
}

/// Ends a schedule: deterministically drain the cluster (recovering any
/// downed nodes first, so blocked operations can resolve), then run the
/// 1SR checker over the complete output history.
fn finish_schedule(
    driver: &StepDriver,
    issued: &HashMap<u64, IssuedOp>,
    config: &ExplorerConfig,
    report: &mut ExploreReport,
) {
    report.schedules += 1;
    let mut fin = driver.clone();
    for &node in &config.crashable {
        if fin.is_down(node) {
            fin.recover(node);
        }
    }
    fin.run_for(config.drain);
    check_invariants(&fin, report);
    let check = check_run(issued, fin.outputs(), config.n_pages);
    report.schedules_checked += 1;
    for v in check.violations {
        if report.violations.len() < MAX_VIOLATIONS {
            report.violations.push(format!("1SR violation: {v:?}"));
        }
    }
}

/// Per-state safety invariants over all replicas' **durable** state (a
/// down replica's disk still exists and must stay consistent):
///
/// 1. *Epoch agreement*: replicas with equal epoch numbers have equal
///    epoch lists — the atomic-epoch-installation guarantee of §4.3.
/// 2. *Current-replica coherence*: two non-stale replicas at the same
///    version hold byte-identical objects — versions name object states.
///
/// Returns a description of every violated pair. Shared by the explorer
/// (checked at every distinct state) and the nemesis soak harness
/// (checked after every recovery and at the end of every schedule).
pub fn cluster_invariant_violations(driver: &StepDriver) -> Vec<String> {
    let mut violations = Vec::new();
    let n = driver.cluster_size();
    for a in 0..n {
        for b in (a + 1)..n {
            let (da, db) = (
                &driver.node(NodeId(a as u32)).durable,
                &driver.node(NodeId(b as u32)).durable,
            );
            if da.enumber == db.enumber && da.elist != db.elist {
                violations.push(format!(
                    "epoch safety: nodes {a} and {b} both in epoch {} but lists {:?} vs {:?}",
                    da.enumber, da.elist, db.elist
                ));
            }
            if da.version == db.version
                && !da.stale
                && !db.stale
                && da.object.digest() != db.object.digest()
            {
                violations.push(format!(
                    "coherence: nodes {a} and {b} both current at version {} with \
                     different contents",
                    da.version
                ));
            }
        }
    }
    violations
}

fn check_invariants(driver: &StepDriver, report: &mut ExploreReport) {
    for v in cluster_invariant_violations(driver) {
        push_violation(report, v);
    }
}

fn push_violation(report: &mut ExploreReport, v: String) {
    if report.violations.len() < MAX_VIOLATIONS {
        report.violations.push(v);
    }
}
