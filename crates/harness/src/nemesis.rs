//! Nemesis soak harness: long randomized crash / partition / storage-fault
//! schedules over a [`StepDriver`] cluster, with safety re-checked after
//! every recovery and a full one-copy-serializability audit at the end.
//!
//! Each seeded run drives one cluster through a weighted random schedule
//! of message deliveries, timer firings, client operations, fail-stops,
//! recoveries, single-node partitions, and storage faults at the journal
//! boundary (failed appends, torn appends, silent bit flips). Recoveries
//! go through the checked journal replay, so torn tails are truncated and
//! corrupted journals take the stale-rejoin path — the soak proves the
//! recovery machinery preserves the protocol's invariants, not just that
//! the happy path does.
//!
//! **Fault model**: any number of nodes may crash, lose un-acknowledged
//! torn tails, or be partitioned, but *silent corruption of acknowledged
//! state* (bit flips) is confined to one designated victim node per run.
//! Quorum intersection can repair one amnesiac replica — every committed
//! write is still known to an intact member of any responder quorum — but
//! no quorum protocol survives simultaneous corruption of every copy of a
//! record, so unconstrained multi-node corruption would "find" violations
//! that are really model limits (see DESIGN.md §9).

// Harness-side bookkeeping; hash maps never feed engine effects.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use coterie_core::{
    ClientRequest, FaultKind, PartialWrite, ProtocolConfig, ProtocolEvent, ReplayVerdict, Rng64,
    StepDriver,
};
use coterie_quorum::{CoterieRule, NodeId};
use coterie_simnet::SimDuration;

use crate::checker::check_run;
use crate::explore::cluster_invariant_violations;
use crate::recorder::{capture, TraceDump};
use crate::workload::IssuedOp;

/// Nemesis schedule parameters. The per-mille weights are per schedule
/// step; the remaining probability mass goes to ordinary progress
/// (deliveries, timer firings, client operations).
#[derive(Clone, Debug)]
pub struct NemesisConfig {
    /// Cluster size.
    pub n_nodes: usize,
    /// Schedule steps per run.
    pub steps: usize,
    /// Client operations injected over the schedule.
    pub client_ops: usize,
    /// Pages per object.
    pub n_pages: usize,
    /// Per-step chance (‰) of fail-stopping a node.
    pub crash_per_mille: u16,
    /// Per-step chance (‰) of recovering a downed node.
    pub recover_per_mille: u16,
    /// Per-step chance (‰) of arming a one-shot storage fault.
    pub storage_fault_per_mille: u16,
    /// Per-step chance (‰) of toggling a single-node partition.
    pub partition_per_mille: u16,
    /// Driver time simulated after the schedule to let the cluster
    /// converge before the final checks.
    pub drain: SimDuration,
    /// Coordinator-side write-batching cap (DESIGN.md §10); 1 disables.
    pub write_batch: usize,
    /// Pipelined-2PC window (DESIGN.md §10); 1 disables.
    pub pipeline_window: u32,
    /// Group-commit batch cap (DESIGN.md §10); 1 disables. When enabled,
    /// the schedule models the host's flush deadline as a frequent
    /// explicit-flush event.
    pub group_commit: usize,
    /// Per-node flight-recorder capacity (trace records retained per
    /// node); 0 disables tracing entirely.
    pub trace_cap: usize,
}

impl Default for NemesisConfig {
    fn default() -> Self {
        NemesisConfig {
            n_nodes: 4,
            steps: 3_000,
            client_ops: 30,
            n_pages: 8,
            crash_per_mille: 12,
            recover_per_mille: 30,
            storage_fault_per_mille: 10,
            partition_per_mille: 6,
            drain: SimDuration::from_secs(120),
            write_batch: 1,
            pipeline_window: 1,
            group_commit: 1,
            trace_cap: 256,
        }
    }
}

/// What one seeded nemesis schedule observed.
#[derive(Clone, Debug, Default)]
pub struct NemesisRun {
    /// The schedule seed.
    pub seed: u64,
    /// Every safety or serializability violation found (empty = clean).
    pub violations: Vec<String>,
    /// Fail-stops performed.
    pub crashes: usize,
    /// Recoveries performed.
    pub recoveries: usize,
    /// Recoveries that replayed a torn tail.
    pub torn_tails: usize,
    /// Recoveries that quarantined the journal.
    pub quarantines: usize,
    /// Stale-rejoin handshakes that completed.
    pub rejoined: usize,
    /// Storage faults that actually fired at an append.
    pub faults_fired: usize,
    /// Committed writes the checker audited.
    pub writes_committed: usize,
    /// Reads the checker verified.
    pub reads_checked: usize,
    /// Flight-recorder dump captured at the first violation (None for
    /// clean runs or when [`NemesisConfig::trace_cap`] is 0).
    pub trace: Option<TraceDump>,
}

impl NemesisRun {
    /// True when the run found no violations.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Aggregate over a sweep of seeds.
#[derive(Clone, Debug, Default)]
pub struct NemesisReport {
    /// Runs executed.
    pub runs: usize,
    /// Per-run results (violating runs keep their full description).
    pub dirty: Vec<NemesisRun>,
    /// Totals across all runs.
    pub crashes: usize,
    /// Total recoveries.
    pub recoveries: usize,
    /// Total torn-tail recoveries.
    pub torn_tails: usize,
    /// Total quarantined recoveries.
    pub quarantines: usize,
    /// Total completed stale-rejoins.
    pub rejoined: usize,
    /// Total storage faults fired.
    pub faults_fired: usize,
    /// Total committed writes audited.
    pub writes_committed: usize,
    /// Total reads verified.
    pub reads_checked: usize,
}

impl NemesisReport {
    /// True when every run was clean.
    pub fn clean(&self) -> bool {
        self.dirty.is_empty()
    }
}

/// Runs one seeded nemesis schedule and returns what it saw.
pub fn run_nemesis(rule: Arc<dyn CoterieRule>, seed: u64, cfg: &NemesisConfig) -> NemesisRun {
    let n = cfg.n_nodes;
    assert!(n >= 3, "nemesis needs at least 3 nodes");
    let protocol = ProtocolConfig::new(rule, n)
        .pages(cfg.n_pages)
        .write_batch(cfg.write_batch)
        .pipeline(cfg.pipeline_window)
        .group_commit(cfg.group_commit, SimDuration::from_millis(2))
        .rng_seed(seed);
    let mut driver = StepDriver::new(n, protocol);
    if cfg.trace_cap > 0 {
        driver.enable_tracing(cfg.trace_cap);
    }
    // The schedule RNG is independent of the engines' (different stream).
    let mut rng = Rng64::new(seed ^ 0x4E45_4D45_5349_5321);
    // Silent corruption is confined to one victim per run (see module docs).
    let victim = NodeId(rng.below(n as u64) as u32);

    let mut run = NemesisRun {
        seed,
        ..Default::default()
    };
    let mut issued: HashMap<u64, IssuedOp> = HashMap::new();
    let mut next_id = 0u64;
    let mut partitioned = false;
    let inject_gap = (cfg.steps / cfg.client_ops.max(1)).max(1) as u64;

    let crash_cut = cfg.crash_per_mille;
    let recover_cut = crash_cut + cfg.recover_per_mille;
    let fault_cut = recover_cut + cfg.storage_fault_per_mille;
    let partition_cut = fault_cut + cfg.partition_per_mille;

    for step in 0..cfg.steps {
        let roll = rng.below(1000) as u16;
        if roll < crash_cut {
            maybe_crash(&mut driver, &mut rng, victim, &mut run);
        } else if roll < recover_cut {
            maybe_recover(&mut driver, &mut rng, step, &mut run);
            snapshot_on_violation(&driver, &mut run);
        } else if roll < fault_cut {
            arm_fault(&mut driver, &mut rng, victim);
        } else if roll < partition_cut {
            if partitioned {
                driver.heal_partition();
            } else {
                let mut islands = vec![0u8; n];
                islands[rng.below(n as u64) as usize] = 1;
                driver.set_partition(islands);
            }
            partitioned = !partitioned;
        } else {
            if next_id < cfg.client_ops as u64 && rng.below(inject_gap) == 0 {
                inject_op(&mut driver, &mut rng, &mut next_id, &mut issued);
            }
            progress(&mut driver, &mut rng);
        }
    }

    // Wind down: heal, recover everyone (through the checked replay), and
    // let the cluster converge before the final audit.
    driver.heal_partition();
    for node in (0..n as u32).map(NodeId) {
        if driver.is_down(node) {
            classify_recovery(&driver, node, &mut run);
            driver.recover(node);
            run.recoveries += 1;
        }
    }
    driver.run_for(cfg.drain);

    for v in cluster_invariant_violations(&driver) {
        run.violations.push(format!("seed {seed} final state: {v}"));
    }
    let check = check_run(&issued, driver.outputs(), cfg.n_pages);
    run.writes_committed = check.writes_committed;
    run.reads_checked = check.reads_checked;
    for v in check.violations {
        run.violations.push(format!("seed {seed} 1SR: {v:?}"));
    }
    run.rejoined = driver
        .outputs()
        .iter()
        .filter(|(_, _, e)| matches!(e, ProtocolEvent::Rejoined { .. }))
        .count();
    run.faults_fired = (0..n as u32)
        .map(|i| driver.fired_faults(NodeId(i)).len())
        .sum();
    snapshot_on_violation(&driver, &mut run);
    run
}

/// Captures the flight recorder the first time a run turns dirty, so the
/// dump reflects the window leading up to the *first* violation.
fn snapshot_on_violation(driver: &StepDriver, run: &mut NemesisRun) {
    if run.trace.is_none() && !run.violations.is_empty() {
        run.trace = capture(driver);
    }
}

/// Sweeps `count` consecutive seeds starting at `base_seed`.
pub fn soak(
    rule: Arc<dyn CoterieRule>,
    base_seed: u64,
    count: u64,
    cfg: &NemesisConfig,
) -> NemesisReport {
    let mut report = NemesisReport::default();
    for seed in base_seed..base_seed + count {
        let run = run_nemesis(rule.clone(), seed, cfg);
        report.runs += 1;
        report.crashes += run.crashes;
        report.recoveries += run.recoveries;
        report.torn_tails += run.torn_tails;
        report.quarantines += run.quarantines;
        report.rejoined += run.rejoined;
        report.faults_fired += run.faults_fired;
        report.writes_committed += run.writes_committed;
        report.reads_checked += run.reads_checked;
        if !run.clean() {
            report.dirty.push(run);
        }
    }
    report
}

fn up_count(driver: &StepDriver) -> usize {
    (0..driver.cluster_size() as u32)
        .filter(|&i| !driver.is_down(NodeId(i)))
        .count()
}

/// Fail-stops a node if the liveness floor (2 nodes up) allows. Once the
/// victim's journal holds a fired bit flip, prefer crashing the victim so
/// the latent corruption is actually discovered by a replay.
fn maybe_crash(driver: &mut StepDriver, rng: &mut Rng64, victim: NodeId, run: &mut NemesisRun) {
    let n = driver.cluster_size();
    let victim_flipped = driver
        .fired_faults(victim)
        .iter()
        .any(|f| f.kind == FaultKind::BitFlip);
    let target = if victim_flipped && !driver.is_down(victim) {
        victim
    } else {
        NodeId(rng.below(n as u64) as u32)
    };
    if !driver.is_down(target) && up_count(driver) > 2 {
        driver.crash(target);
        run.crashes += 1;
    }
}

/// Recovers a random downed node, classifying its replay verdict first
/// and re-checking the cluster invariants right after the boot.
fn maybe_recover(driver: &mut StepDriver, rng: &mut Rng64, step: usize, run: &mut NemesisRun) {
    let downed: Vec<NodeId> = (0..driver.cluster_size() as u32)
        .map(NodeId)
        .filter(|&x| driver.is_down(x))
        .collect();
    if downed.is_empty() {
        return;
    }
    let node = downed[rng.below(downed.len() as u64) as usize];
    classify_recovery(driver, node, run);
    driver.recover(node);
    run.recoveries += 1;
    let seed = run.seed;
    for v in cluster_invariant_violations(driver) {
        run.violations.push(format!(
            "seed {seed} step {step} after recovering {node:?}: {v}"
        ));
    }
}

fn classify_recovery(driver: &StepDriver, node: NodeId, run: &mut NemesisRun) {
    match driver.replay_checked(node).verdict {
        ReplayVerdict::Clean => {}
        ReplayVerdict::TornTail { .. } => run.torn_tails += 1,
        ReplayVerdict::Quarantined { .. } => run.quarantines += 1,
    }
}

/// Arms a one-shot storage fault: crash-consistent faults (failed or torn
/// appends) on anyone, silent bit flips only on the victim.
fn arm_fault(driver: &mut StepDriver, rng: &mut Rng64, victim: NodeId) {
    let n = driver.cluster_size() as u64;
    match rng.below(3) {
        0 => driver.arm_storage_fault(NodeId(rng.below(n) as u32), FaultKind::AppendFail),
        1 => driver.arm_storage_fault(NodeId(rng.below(n) as u32), FaultKind::TornWrite),
        _ => driver.arm_storage_fault(victim, FaultKind::BitFlip),
    }
}

fn inject_op(
    driver: &mut StepDriver,
    rng: &mut Rng64,
    next_id: &mut u64,
    issued: &mut HashMap<u64, IssuedOp>,
) {
    let n = driver.cluster_size() as u32;
    let up: Vec<NodeId> = (0..n).map(NodeId).filter(|&x| !driver.is_down(x)).collect();
    let Some(&coordinator) = up.get(rng.below(up.len().max(1) as u64) as usize) else {
        return;
    };
    *next_id += 1;
    let id = *next_id;
    let at = driver.now();
    if rng.below(2) == 0 {
        issued.insert(
            id,
            IssuedOp {
                id,
                at,
                coordinator,
                write: None,
            },
        );
        driver.inject(coordinator, ClientRequest::Read { id });
    } else {
        let page = rng.below(8) as u16;
        let write = PartialWrite::new([(page, Bytes::from(rng.next_u64().to_le_bytes().to_vec()))]);
        issued.insert(
            id,
            IssuedOp {
                id,
                at,
                coordinator,
                write: Some(write.clone()),
            },
        );
        driver.inject(coordinator, ClientRequest::Write { id, write });
    }
}

/// One unit of ordinary progress: deliver a random in-flight message,
/// else fire a random armed timer, else let time pass. When group commit
/// is coalescing deltas somewhere, the host's flush deadline — the
/// shortest clock in a real system — is modelled as a frequent flush
/// event. (The RNG is only consulted when something is buffered, so
/// group-commit-disabled schedules are byte-identical to before.)
fn progress(driver: &mut StepDriver, rng: &mut Rng64) {
    let buffering = (0..driver.cluster_size() as u32).any(|i| driver.gc_buffered(NodeId(i)) > 0);
    if buffering && rng.below(4) == 0 {
        driver.flush_group_commit();
        return;
    }
    let msgs = driver.pending_messages().len();
    if msgs > 0 {
        driver.deliver(rng.below(msgs as u64) as usize);
        return;
    }
    let timers = driver.pending_timers().len();
    if timers > 0 {
        driver.fire(rng.below(timers as u64) as usize);
    } else {
        driver.advance(SimDuration::from_millis(10));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_quorum::{GridCoterie, MajorityCoterie};

    #[test]
    fn short_soak_is_clean_on_grid() {
        let cfg = NemesisConfig {
            steps: 800,
            client_ops: 10,
            ..Default::default()
        };
        let report = soak(Arc::new(GridCoterie::new()), 0xBEEF, 3, &cfg);
        assert!(report.clean(), "violations: {:#?}", report.dirty);
        assert!(report.crashes > 0 && report.recoveries > 0);
    }

    #[test]
    fn short_soak_is_clean_on_majority() {
        let cfg = NemesisConfig {
            n_nodes: 5,
            steps: 800,
            client_ops: 10,
            ..Default::default()
        };
        let report = soak(Arc::new(MajorityCoterie::new()), 0xFEED, 3, &cfg);
        assert!(report.clean(), "violations: {:#?}", report.dirty);
    }

    /// Regression: majority/5 at seed 9 with a long schedule once produced
    /// a stale read — a quarantined participant's pre-crash 2PC vote
    /// anchored a commit its rejoin poll did not cover. The fix reports
    /// responder locks and prepared slots in rejoin answers; this schedule
    /// must stay clean.
    #[test]
    fn seed9_majority_amnesiac_vote_regression() {
        let cfg = NemesisConfig {
            n_nodes: 5,
            steps: 2_000,
            ..Default::default()
        };
        let run = run_nemesis(Arc::new(MajorityCoterie::new()), 9, &cfg);
        assert!(run.clean(), "violations: {:#?}", run.violations);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = NemesisConfig {
            steps: 600,
            client_ops: 8,
            ..Default::default()
        };
        let a = run_nemesis(Arc::new(GridCoterie::new()), 7, &cfg);
        let b = run_nemesis(Arc::new(GridCoterie::new()), 7, &cfg);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.recoveries, b.recoveries);
        assert_eq!(a.quarantines, b.quarantines);
        assert_eq!(a.writes_committed, b.writes_committed);
        assert_eq!(a.violations, b.violations);
    }
}
