//! Client workload generation: Poisson arrivals of reads and partial
//! writes spread across coordinator nodes.

// Tool-side bookkeeping; hash maps never feed engine effects.
#![allow(clippy::disallowed_types)]

use bytes::Bytes;
use coterie_core::{ClientRequest, PageId, PartialWrite};
use coterie_quorum::NodeId;
use coterie_simnet::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Mean operations per simulated second (Poisson process).
    pub ops_per_sec: f64,
    /// Fraction of operations that are reads.
    pub read_fraction: f64,
    /// Pages the object has (writes target a random subset).
    pub n_pages: usize,
    /// Maximum pages touched by one partial write.
    pub max_pages_per_write: usize,
    /// Payload bytes per page write.
    pub page_bytes: usize,
    /// Total workload duration.
    pub duration: SimDuration,
    /// RNG seed (independent of the simulator's).
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            ops_per_sec: 50.0,
            read_fraction: 0.5,
            n_pages: 16,
            max_pages_per_write: 3,
            page_bytes: 64,
            duration: SimDuration::from_secs(60),
            seed: 0xF00D,
        }
    }
}

/// What the harness remembers about each issued operation, for the
/// consistency checker and latency metrics.
#[derive(Clone, Debug)]
pub struct IssuedOp {
    /// The client request id.
    pub id: u64,
    /// Issue time.
    pub at: SimTime,
    /// Coordinator node.
    pub coordinator: NodeId,
    /// The write payload, or `None` for reads.
    pub write: Option<PartialWrite>,
}

/// A generated workload: a time-ordered schedule of client requests.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// The schedule.
    pub ops: Vec<(SimTime, NodeId, ClientRequest)>,
    /// Issue records by client id.
    pub issued: HashMap<u64, IssuedOp>,
}

impl Workload {
    /// Generates a workload over `n_nodes` coordinators.
    pub fn generate(config: &WorkloadConfig, n_nodes: usize) -> Workload {
        assert!(n_nodes >= 1);
        assert!((0.0..=1.0).contains(&config.read_fraction));
        assert!(config.ops_per_sec > 0.0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut out = Workload::default();
        let mut t = 0.0f64;
        let horizon = config.duration.as_secs_f64();
        let mut id = 0u64;
        while t < horizon {
            let gap = -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / config.ops_per_sec;
            t += gap;
            if t >= horizon {
                break;
            }
            id += 1;
            let at = SimTime((t * 1e6) as u64);
            let coordinator = NodeId(rng.gen_range(0..n_nodes as u32));
            let request = if rng.gen::<f64>() < config.read_fraction {
                out.issued.insert(
                    id,
                    IssuedOp {
                        id,
                        at,
                        coordinator,
                        write: None,
                    },
                );
                ClientRequest::Read { id }
            } else {
                let k = rng.gen_range(1..=config.max_pages_per_write.min(config.n_pages));
                let mut pages = Vec::with_capacity(k);
                for _ in 0..k {
                    let page = rng.gen_range(0..config.n_pages as u16) as PageId;
                    let mut body = vec![0u8; config.page_bytes];
                    rng.fill(&mut body[..]);
                    pages.push((page, Bytes::from(body)));
                }
                let write = PartialWrite::new(pages);
                out.issued.insert(
                    id,
                    IssuedOp {
                        id,
                        at,
                        coordinator,
                        write: Some(write.clone()),
                    },
                );
                ClientRequest::Write { id, write }
            };
            out.ops.push((at, coordinator, request));
        }
        out
    }

    /// Number of operations in the schedule.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Count of writes in the schedule.
    pub fn writes(&self) -> usize {
        self.issued.values().filter(|o| o.write.is_some()).count()
    }

    /// Count of reads in the schedule.
    pub fn reads(&self) -> usize {
        self.len() - self.writes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_poisson_schedule() {
        let cfg = WorkloadConfig {
            ops_per_sec: 100.0,
            duration: SimDuration::from_secs(10),
            ..Default::default()
        };
        let w = Workload::generate(&cfg, 5);
        // ~1000 ops expected; allow wide slack.
        assert!(w.len() > 700 && w.len() < 1300, "got {}", w.len());
        // Sorted by time, ids unique.
        for pair in w.ops.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        assert_eq!(w.issued.len(), w.len());
        // Mix near the requested fraction.
        let frac = w.reads() as f64 / w.len() as f64;
        assert!((frac - 0.5).abs() < 0.1, "read fraction {frac}");
        // Coordinators within range.
        assert!(w.ops.iter().all(|(_, n, _)| n.0 < 5));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorkloadConfig::default();
        let a = Workload::generate(&cfg, 3);
        let b = Workload::generate(&cfg, 3);
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.ops
                .iter()
                .map(|(t, n, _)| (t.micros(), n.0))
                .collect::<Vec<_>>(),
            b.ops
                .iter()
                .map(|(t, n, _)| (t.micros(), n.0))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_reads_or_all_writes() {
        let all_reads = WorkloadConfig {
            read_fraction: 1.0,
            ..Default::default()
        };
        let w = Workload::generate(&all_reads, 2);
        assert_eq!(w.writes(), 0);
        let all_writes = WorkloadConfig {
            read_fraction: 0.0,
            ..Default::default()
        };
        let w = Workload::generate(&all_writes, 2);
        assert_eq!(w.reads(), 0);
        assert!(w.issued.values().all(|o| o.write.is_some()));
    }
}
