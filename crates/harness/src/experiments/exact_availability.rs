//! **E10 — the idealized model vs the published rule.** The paper's
//! Figure 3 chain assumes every epoch above three nodes survives any
//! single failure and that a three-node epoch blocks on every failure.
//! Under the *published* `DefineGrid`/`IsWriteQuorum` pseudo-code this is
//! not exact (DESIGN.md §5): the N = 5 layout has a singleton column whose
//! failure blocks a five-node epoch, while a three-node epoch survives two
//! of its three possible single failures. This experiment quantifies the
//! gap with the exact `(epoch, up-set)` chain for small N and with
//! structure-aware Monte Carlo for larger N.

use crate::report::{sci, Table};
use crate::sitemodel::{replicated_unavailability, EpochDynamics, SiteModelConfig};
use coterie_markov::{exact_unavailability, DynamicModel};
use coterie_quorum::{CoterieRule, GridCoterie};
use serde::Serialize;
use std::sync::Arc;

/// One comparison row.
#[derive(Clone, Debug, Serialize)]
pub struct ExactRow {
    /// Replica count.
    pub n: usize,
    /// The paper's idealized chain.
    pub idealized: f64,
    /// The exact chain (small N) — `None` when out of range.
    pub exact_chain: Option<f64>,
    /// The exact chain for the corrected *tall* orientation, which makes
    /// Figure 3 exact (small N only).
    pub exact_tall: Option<f64>,
    /// Structure-aware Monte Carlo mean.
    pub mc_mean: f64,
    /// Monte-Carlo standard error.
    pub mc_se: f64,
}

/// Computes the comparison at up probability `p`.
pub fn compute(p: f64, horizon: f64, replications: usize, seed: u64) -> Vec<ExactRow> {
    let mu = p / (1.0 - p);
    let rule: Arc<dyn CoterieRule> = Arc::new(GridCoterie::new());
    [3usize, 4, 5, 6, 9, 12]
        .into_iter()
        .map(|n| {
            let idealized = DynamicModel::grid(n, 1.0, mu).unavailability().unwrap();
            let exact_chain = (n <= 6).then(|| exact_unavailability(&*rule, n, 1.0, mu).unwrap());
            let tall = GridCoterie::tall();
            let exact_tall = (n <= 6).then(|| exact_unavailability(&tall, n, 1.0, mu).unwrap());
            let config = SiteModelConfig {
                n,
                lambda: 1.0,
                mu,
                dynamics: EpochDynamics::Exact { rule: rule.clone() },
                check_rate: None,
                horizon,
                warmup: horizon / 100.0,
                seed,
            };
            let (mc_mean, mc_se) = replicated_unavailability(&config, replications);
            ExactRow {
                n,
                idealized,
                exact_chain,
                exact_tall,
                mc_mean,
                mc_se,
            }
        })
        .collect()
}

/// Renders the comparison.
pub fn render(p: f64, horizon: f64, replications: usize, seed: u64) -> String {
    let rows = compute(p, horizon, replications, seed);
    let mut t = Table::new(
        format!("E10 - idealized Figure 3 model vs published grid rule, p = {p}"),
        &[
            "N",
            "idealized chain",
            "exact (paper rule)",
            "exact (tall rule)",
            "exact MC",
            "MC s.e.",
        ],
    );
    for r in &rows {
        t.row(&[
            r.n.to_string(),
            sci(r.idealized),
            r.exact_chain.map(sci).unwrap_or_else(|| "-".into()),
            r.exact_tall.map(sci).unwrap_or_else(|| "-".into()),
            sci(r.mc_mean),
            sci(r.mc_se),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mc_matches_exact_chain_where_both_exist() {
        for r in compute(0.7, 6_000.0, 4, 23) {
            if let Some(exact) = r.exact_chain {
                let tol = 6.0 * r.mc_se.max(3e-3);
                assert!(
                    (r.mc_mean - exact).abs() < tol,
                    "N={}: MC {:.5} vs chain {:.5}",
                    r.n,
                    r.mc_mean,
                    exact
                );
            }
        }
    }

    #[test]
    fn tall_rule_matches_idealized_everywhere() {
        for r in compute(0.8, 2_000.0, 2, 25) {
            if let Some(tall) = r.exact_tall {
                assert!(
                    (tall - r.idealized).abs() / r.idealized < 1e-9,
                    "N={}: tall {tall:e} vs idealized {:e}",
                    r.n,
                    r.idealized
                );
            }
        }
    }

    #[test]
    fn n5_gap_is_material() {
        let rows = compute(0.7, 4_000.0, 4, 24);
        let r5 = rows.iter().find(|r| r.n == 5).unwrap();
        let exact = r5.exact_chain.unwrap();
        assert!(
            (exact - r5.idealized).abs() / r5.idealized > 0.3,
            "exact {exact:.5} vs idealized {:.5}",
            r5.idealized
        );
    }
}
