//! **E6 — quorum sizes.** Backs the paper's §1 claim: "For square grids,
//! the size of read quorums is √N and the size of write quorums is
//! 2√N − 1 ... in contrast to the voting protocol, where the quorum size in
//! the simplest case is ⌊(N+1)/2⌋."

use crate::report::Table;
use coterie_quorum::{
    CoterieRule, GridCoterie, GridShape, MajorityCoterie, QuorumKind, RowaCoterie, TreeCoterie,
    View,
};
use serde::Serialize;

/// One row of the quorum-size table.
#[derive(Clone, Debug, Serialize)]
pub struct QuorumSizeRow {
    /// Replica count.
    pub n: usize,
    /// Grid read quorum size.
    pub grid_read: usize,
    /// Grid write quorum size.
    pub grid_write: usize,
    /// Majority quorum size.
    pub majority: usize,
    /// Tree (hierarchical) quorum size, measured from the quorum function.
    pub tree: usize,
    /// ROWA write quorum size (= N).
    pub rowa_write: usize,
}

/// Computes sizes for the given replica counts.
pub fn compute(ns: &[usize]) -> Vec<QuorumSizeRow> {
    ns.iter()
        .map(|&n| {
            let shape = GridShape::define(n);
            let view = View::first_n(n);
            let tree_rule = TreeCoterie::new();
            let tree = tree_rule
                .pick_quorum(&view, view.set(), 0, QuorumKind::Write)
                .map(|q| q.len())
                .unwrap_or(0);
            // Sanity-check the analytic grid sizes against actual quorums.
            let grid = GridCoterie::new();
            let gw = grid
                .pick_quorum(&view, view.set(), 0, QuorumKind::Write)
                .unwrap()
                .len();
            debug_assert_eq!(gw, shape.write_quorum_size());
            let _ = RowaCoterie::new();
            QuorumSizeRow {
                n,
                grid_read: shape.read_quorum_size(),
                grid_write: shape.write_quorum_size(),
                majority: MajorityCoterie::new().write_quorum_size(n),
                tree,
                rowa_write: n,
            }
        })
        .collect()
}

/// Renders the table.
pub fn render(ns: &[usize]) -> String {
    let rows = compute(ns);
    let mut t = Table::new(
        "E6 - quorum sizes by coterie rule",
        &[
            "N",
            "grid read",
            "grid write",
            "majority",
            "tree",
            "ROWA write",
        ],
    );
    for r in &rows {
        t.row(&[
            r.n.to_string(),
            r.grid_read.to_string(),
            r.grid_write.to_string(),
            r.majority.to_string(),
            r.tree.to_string(),
            r.rowa_write.to_string(),
        ]);
    }
    t.render()
}

/// The default sweep.
pub const DEFAULT_NS: [usize; 10] = [4, 9, 16, 25, 36, 49, 64, 81, 100, 121];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grids_match_the_paper_formulas() {
        for r in compute(&DEFAULT_NS) {
            let root = (r.n as f64).sqrt() as usize;
            if root * root == r.n {
                assert_eq!(r.grid_read, root);
                assert_eq!(r.grid_write, 2 * root - 1);
            }
            assert_eq!(r.majority, r.n / 2 + 1);
            assert_eq!(r.rowa_write, r.n);
            assert!(r.tree >= 1 && r.tree <= r.majority);
        }
    }

    #[test]
    fn grid_quorums_beat_majority_for_large_n() {
        let rows = compute(&[49, 100]);
        for r in rows {
            assert!(r.grid_write < r.majority, "N={}", r.n);
        }
    }
}
