//! **E12 — read availability.** §6: "We omit the analysis for read
//! availability which is completely analogous." We carry it out: static
//! read availability has the closed form Π(1 − q^h_j); for the dynamic
//! protocol, reads stay possible even in some blocked states (the frozen
//! epoch's survivors may still cover every column without containing a
//! full column), which the exact chain and structure-aware MC measure.

use crate::report::{sci, Table};
use coterie_markov::exact_unavailability_kind;
use coterie_quorum::availability::{grid_read_availability, grid_write_availability};
use coterie_quorum::{CoterieRule, GridCoterie, GridShape, NodeSet, PlanCache, QuorumKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::sync::Arc;

/// One row of the read-availability analysis.
#[derive(Clone, Debug, Serialize)]
pub struct ReadAvailRow {
    /// Replica count.
    pub n: usize,
    /// Node-up probability.
    pub p: f64,
    /// Static grid read unavailability (closed form).
    pub static_read: f64,
    /// Static grid write unavailability, for contrast.
    pub static_write: f64,
    /// Dynamic (exact chain) read unavailability, small N only.
    pub dynamic_read: Option<f64>,
    /// Dynamic (exact chain) write unavailability, small N only.
    pub dynamic_write: Option<f64>,
}

/// Computes the rows.
pub fn compute(ns: &[usize], p: f64) -> Vec<ReadAvailRow> {
    let mu = p / (1.0 - p);
    let rule = GridCoterie::new();
    ns.iter()
        .map(|&n| {
            let shape = GridShape::define(n);
            let dynamic = (n <= 6).then(|| {
                (
                    exact_unavailability_kind(&rule, n, 1.0, mu, QuorumKind::Read).unwrap(),
                    exact_unavailability_kind(&rule, n, 1.0, mu, QuorumKind::Write).unwrap(),
                )
            });
            ReadAvailRow {
                n,
                p,
                static_read: 1.0 - grid_read_availability(shape, p),
                static_write: 1.0 - grid_write_availability(shape, p),
                dynamic_read: dynamic.map(|d| d.0),
                dynamic_write: dynamic.map(|d| d.1),
            }
        })
        .collect()
}

/// Structure-aware MC estimate of dynamic *read* unavailability for any N
/// (reads succeed when the up members of the current epoch include a read
/// quorum over it).
pub fn mc_dynamic_read(n: usize, p: f64, horizon: f64, seed: u64) -> f64 {
    let mu = p / (1.0 - p);
    let rule: Arc<dyn CoterieRule> = Arc::new(GridCoterie::new());
    // Reuse the write-dynamics walker but measure with the read predicate:
    // re-implemented compactly here because the sitemodel measures writes.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut up = NodeSet::first_n(n);
    let mut epoch = NodeSet::first_n(n);
    let mut t = 0.0;
    let mut unavailable = 0.0;
    // One compiled plan per distinct epoch instead of re-deriving the grid
    // layout twice per event.
    let mut plans = PlanCache::new();
    while t < horizon {
        let up_count = up.len() as f64;
        let down_count = (n - up.len()) as f64;
        let total = up_count * 1.0 + down_count * mu;
        let dt = -rng.gen::<f64>().max(f64::MIN_POSITIVE).ln() / total;
        let plan = plans.plan_for_set(&*rule, epoch);
        if !plan.includes_quorum_with(&*rule, up.intersection(epoch), QuorumKind::Read) {
            unavailable += dt;
        }
        t += dt;
        if rng.gen::<f64>() * total < up_count {
            let k = rng.gen_range(0..up.len());
            let node = up.iter().nth(k).unwrap();
            up.remove(node);
        } else {
            let down: Vec<_> = NodeSet::first_n(n).difference(up).to_vec();
            up.insert(down[rng.gen_range(0..down.len())]);
        }
        // Instantaneous epoch check (write-quorum reform rule, as in the
        // protocol: epochs change only with a write quorum of the old one).
        let plan = plans.plan_for_set(&*rule, epoch);
        if epoch != up
            && plan.includes_quorum_with(&*rule, up.intersection(epoch), QuorumKind::Write)
        {
            epoch = up;
        }
    }
    unavailable / horizon
}

/// Renders the analysis.
pub fn render(ns: &[usize], p: f64) -> String {
    let rows = compute(ns, p);
    let mut t = Table::new(
        format!("E12 - read vs write unavailability, grid, p = {p}"),
        &[
            "N",
            "static read",
            "static write",
            "dynamic read (exact)",
            "dynamic write (exact)",
        ],
    );
    for r in &rows {
        t.row(&[
            r.n.to_string(),
            sci(r.static_read),
            sci(r.static_write),
            r.dynamic_read.map(sci).unwrap_or_else(|| "-".into()),
            r.dynamic_write.map(sci).unwrap_or_else(|| "-".into()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_are_always_at_least_as_available_as_writes() {
        for r in compute(&[3, 4, 5, 6, 9, 16], 0.9) {
            assert!(
                r.static_read <= r.static_write + 1e-15,
                "N={}: read {:.3e} vs write {:.3e}",
                r.n,
                r.static_read,
                r.static_write
            );
            if let (Some(dr), Some(dw)) = (r.dynamic_read, r.dynamic_write) {
                assert!(dr <= dw + 1e-15, "N={}", r.n);
            }
        }
    }

    #[test]
    fn dynamic_reads_beat_static_reads_beyond_tiny_n() {
        for r in compute(&[5, 6], 0.8) {
            let dr = r.dynamic_read.unwrap();
            assert!(
                dr < r.static_read,
                "N={}: dynamic {dr:.3e} vs static {:.3e}",
                r.n,
                r.static_read
            );
        }
    }

    #[test]
    fn n4_read_anomaly_dynamic_can_be_worse() {
        // A finding the paper's "completely analogous" remark glosses over:
        // at N = 4 the dynamic protocol *hurts* read availability. Epochs
        // shrink to keep writes alive (e.g. down to a 1x2 grid), and reads
        // must then come from the shrunken epoch — while the static 2x2
        // grid can still serve reads from any column cover of all four
        // replicas.
        let r = &compute(&[4], 0.8)[0];
        let dr = r.dynamic_read.unwrap();
        assert!(
            dr > r.static_read,
            "expected the anomaly: dynamic {dr:.3e} vs static {:.3e}",
            r.static_read
        );
        // Writes still benefit.
        assert!(r.dynamic_write.unwrap() < r.static_write);
    }

    #[test]
    fn mc_read_estimate_matches_exact_chain() {
        let n = 5;
        let p = 0.7;
        let mu = p / (1.0 - p);
        let exact =
            exact_unavailability_kind(&GridCoterie::new(), n, 1.0, mu, QuorumKind::Read).unwrap();
        let mc = mc_dynamic_read(n, p, 40_000.0, 3);
        assert!(
            (mc - exact).abs() / exact.max(1e-9) < 0.25,
            "MC {mc:.5} vs exact {exact:.5}"
        );
    }
}
