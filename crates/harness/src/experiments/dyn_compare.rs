//! **E11 — dynamic grid vs dynamic voting.** The paper generalizes dynamic
//! quorum adjustment from voting to structured coteries; the price is a
//! slightly larger minimum epoch (a grid epoch of three blocks on any
//! failure, a voting epoch of two). This sweep quantifies the availability
//! gap across N and p — alongside the quorum-size advantage the grid buys
//! (E6), which is the trade the paper advocates.

use crate::report::{sci, Table};
use coterie_markov::DynamicModel;
use coterie_quorum::availability::{grid_write_availability, majority_write_availability};
use coterie_quorum::GridShape;
use serde::Serialize;

/// One (N, p) comparison.
#[derive(Clone, Debug, Serialize)]
pub struct DynCompareRow {
    /// Replica count.
    pub n: usize,
    /// Node-up probability.
    pub p: f64,
    /// Static grid unavailability (best-effort `DefineGrid` shape).
    pub static_grid: f64,
    /// Static majority unavailability.
    pub static_majority: f64,
    /// Dynamic grid unavailability (Figure 3 chain, min epoch 3).
    pub dynamic_grid: f64,
    /// Dynamic voting unavailability (min epoch 2).
    pub dynamic_voting: f64,
}

/// Computes the sweep.
pub fn compute(ns: &[usize], ps: &[f64]) -> Vec<DynCompareRow> {
    let mut rows = Vec::new();
    for &n in ns {
        for &p in ps {
            let mu = p / (1.0 - p);
            rows.push(DynCompareRow {
                n,
                p,
                static_grid: 1.0 - grid_write_availability(GridShape::define(n), p),
                static_majority: 1.0 - majority_write_availability(n, p),
                dynamic_grid: DynamicModel::grid(n, 1.0, mu).unavailability().unwrap(),
                dynamic_voting: DynamicModel::majority(n, 1.0, mu).unavailability().unwrap(),
            });
        }
    }
    rows
}

/// Renders the sweep.
pub fn render(ns: &[usize], ps: &[f64]) -> String {
    let rows = compute(ns, ps);
    let mut t = Table::new(
        "E11 - static vs dynamic, grid vs voting (write unavailability)",
        &[
            "N",
            "p",
            "static grid",
            "static majority",
            "dynamic grid",
            "dynamic voting",
        ],
    );
    for r in &rows {
        t.row(&[
            r.n.to_string(),
            format!("{:.2}", r.p),
            sci(r.static_grid),
            sci(r.static_majority),
            sci(r.dynamic_grid),
            sci(r.dynamic_voting),
        ]);
    }
    t.render()
}

/// Default sweeps.
pub const DEFAULT_NS: [usize; 4] = [5, 9, 15, 25];
/// Default node-up probabilities.
pub const DEFAULT_PS: [f64; 3] = [0.7, 0.9, 0.95];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_hold_across_the_sweep() {
        for r in compute(&DEFAULT_NS, &DEFAULT_PS) {
            // Dynamic always beats its static counterpart.
            assert!(r.dynamic_grid < r.static_grid, "N={} p={}", r.n, r.p);
            assert!(r.dynamic_voting < r.static_majority, "N={} p={}", r.n, r.p);
            // Voting's smaller minimum epoch beats the grid's.
            assert!(
                r.dynamic_voting <= r.dynamic_grid,
                "N={} p={}: voting {:.3e} vs grid {:.3e}",
                r.n,
                r.p,
                r.dynamic_voting,
                r.dynamic_grid
            );
        }
    }

    #[test]
    fn gap_shrinks_as_n_grows() {
        let rows = compute(&[5, 25], &[0.9]);
        let ratio = |r: &DynCompareRow| r.dynamic_grid / r.dynamic_voting.max(1e-300);
        let small = ratio(&rows[0]);
        let large = ratio(&rows[1]);
        assert!(
            large <= small * 10.0,
            "grid/voting gap should not explode with N: {small} -> {large}"
        );
    }
}
