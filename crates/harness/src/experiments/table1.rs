//! **E1 — Table 1 of the paper**: write unavailability of the conventional
//! (static) grid protocol at its best dimensions versus the dynamic grid
//! protocol, for p = 0.95 (μ/λ = 19) and N ∈ {9, 12, 15, 16, 20, 24, 30}.
//!
//! The static column is closed-form (`coterie_quorum::availability`); the
//! dynamic column solves the paper's Figure 3 Markov chain with the GTH
//! algorithm (`coterie_markov::DynamicModel`). The paper's printed values
//! are shown alongside for direct comparison.

use crate::report::Table;
use coterie_markov::DynamicModel;
use coterie_quorum::availability::best_static_grid;
use serde::Serialize;

/// The replica counts Table 1 covers.
pub const TABLE1_N: [usize; 7] = [9, 12, 15, 16, 20, 24, 30];

/// The paper's printed unavailability values (None = reported as
/// "negligible" or omitted).
pub const PAPER_STATIC: [f64; 7] = [
    3268.59e-6, 912.25e-6, 683.60e-6, 1208.75e-6, 250.82e-6, 78.23e-6, 135.90e-6,
];

/// The paper's dynamic-grid column.
pub const PAPER_DYNAMIC: [Option<f64>; 7] = [
    Some(0.18e-6),
    Some(0.6e-10),
    Some(1.564e-14),
    None,
    None,
    None,
    None,
];

/// One row of the regenerated table.
#[derive(Clone, Debug, Serialize)]
pub struct Table1Row {
    /// Number of replicas.
    pub n: usize,
    /// Best static grid dimensions (rows, columns).
    pub best_dims: (usize, usize),
    /// Our computed static unavailability.
    pub static_unavail: f64,
    /// The paper's printed static unavailability.
    pub paper_static: f64,
    /// Our computed dynamic unavailability.
    pub dynamic_unavail: f64,
    /// The paper's printed dynamic unavailability, if given.
    pub paper_dynamic: Option<f64>,
}

/// Computes all rows at the given node-up probability.
pub fn compute(p: f64) -> Vec<Table1Row> {
    let mu_over_lambda = p / (1.0 - p);
    TABLE1_N
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let (shape, avail) = best_static_grid(n, p);
            let dynamic = DynamicModel::grid(n, 1.0, mu_over_lambda)
                .unavailability()
                .expect("figure-3 chain is irreducible");
            Table1Row {
                n,
                best_dims: (shape.m, shape.n),
                static_unavail: 1.0 - avail,
                paper_static: PAPER_STATIC[i],
                dynamic_unavail: dynamic,
                paper_dynamic: PAPER_DYNAMIC[i],
            }
        })
        .collect()
}

/// Renders the table exactly in the paper's row order, with paper values
/// interleaved.
pub fn render(p: f64) -> String {
    let rows = compute(p);
    let mut t = Table::new(
        format!("Table 1 - write unavailability, p = {p} (x 1e-6 where shown)"),
        &[
            "N",
            "best dims",
            "static (ours)",
            "static (paper)",
            "dynamic (ours)",
            "dynamic (paper)",
        ],
    );
    for r in &rows {
        t.row(&[
            r.n.to_string(),
            format!("{}x{}", r.best_dims.0, r.best_dims.1),
            format!("{:.2}", r.static_unavail * 1e6),
            format!("{:.2}", r.paper_static * 1e6),
            format!("{:.3e}", r.dynamic_unavail),
            r.paper_dynamic
                .map(|v| format!("{v:.3e}"))
                .unwrap_or_else(|| "negligible".into()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_values() {
        let rows = compute(0.95);
        for r in &rows {
            assert!(
                (r.static_unavail - r.paper_static).abs() / r.paper_static < 2e-3,
                "N={}: static {:.4e} vs paper {:.4e}",
                r.n,
                r.static_unavail,
                r.paper_static
            );
            if let Some(paper) = r.paper_dynamic {
                assert!(
                    (r.dynamic_unavail - paper).abs() / paper < 0.1,
                    "N={}: dynamic {:.4e} vs paper {:.4e}",
                    r.n,
                    r.dynamic_unavail,
                    paper
                );
            } else {
                assert!(r.dynamic_unavail < 1e-15, "N={} should be negligible", r.n);
            }
            // The headline: orders of magnitude improvement.
            assert!(r.static_unavail / r.dynamic_unavail.max(1e-300) > 1e3);
        }
    }

    #[test]
    fn render_includes_all_rows() {
        let s = render(0.95);
        for n in TABLE1_N {
            assert!(
                s.contains(&format!("\n{n} ")) || s.contains(&format!(" {n} ")),
                "{s}"
            );
        }
        assert!(s.contains("negligible"));
    }
}
