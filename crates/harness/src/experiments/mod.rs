//! Experiment drivers. Each module regenerates one artifact of the paper
//! (or one supplementary claim-backing experiment); the mapping to the
//! paper's tables and figures is indexed in EXPERIMENTS.md at the
//! repository root.
//!
//! | Module | Artifact |
//! |--------|----------|
//! | [`table1`] | Table 1: static vs dynamic grid write unavailability |
//! | [`figures`] | Figures 1–3: grid layouts and the availability chain |
//! | [`site_sim`] | E5: Monte-Carlo validation of the Markov results |
//! | [`quorum_sizes`] | E6: quorum-size comparison (§1 claims) |
//! | [`load_sharing`] | E7: load sharing & message traffic |
//! | [`partial_writes`] | E8: stale marking vs write-all-current |
//! | [`epoch_rate`] | E9: sensitivity to the epoch-check rate |
//! | [`exact_availability`] | E10: idealized model vs published rule |
//! | [`dyn_compare`] | E11: dynamic grid vs dynamic voting |
//! | [`read_availability`] | E12: the analogous read analysis |
//! | [`safety_ablation`] | E13: the §4.1 safety-threshold ablation |

pub mod dyn_compare;
pub mod epoch_rate;
pub mod exact_availability;
pub mod figures;
pub mod load_sharing;
pub mod partial_writes;
pub mod quorum_sizes;
pub mod read_availability;
pub mod safety_ablation;
pub mod site_sim;
pub mod table1;
