//! **E8 — partial writes: stale marking vs write-all-current.** The
//! paper's second contribution: with stale marking, "different coordinators
//! can communicate with different write quorums, and synchronous
//! reconciliation of obsolete replicas is never needed". The conventional
//! discipline must ship full-object snapshots inline whenever the current
//! replicas alone do not form a quorum. We run the same churny workload
//! under both modes and compare replicas touched per write, synchronous
//! reconciliations, traffic, and latency.

use crate::faults::{FaultConfig, FaultPlan};
use crate::report::Table;
use crate::scenario::{run_scenario, Scenario, ScenarioResult};
use crate::workload::{Workload, WorkloadConfig};
use coterie_core::{ProtocolConfig, WriteMode};
use coterie_quorum::GridCoterie;
use coterie_simnet::{SimConfig, SimDuration};
use std::sync::Arc;

/// One measured mode.
#[derive(Debug)]
pub struct PartialWriteRow {
    /// Mode label.
    pub mode: String,
    /// Aggregate results.
    pub result: ScenarioResult,
}

/// Runs the comparison. `churn` injects crash/repair cycles so replicas
/// drift out of date (the situation stale marking is designed for).
pub fn compute(n: usize, duration_secs: u64, seed: u64, churn: bool) -> Vec<PartialWriteRow> {
    [WriteMode::StaleMarking, WriteMode::WriteAllCurrent]
        .into_iter()
        .map(|mode| {
            let mut protocol = ProtocolConfig::new(Arc::new(GridCoterie::new()), n)
                .check_period(SimDuration::from_secs(3));
            protocol.write_mode = mode;
            let workload = Workload::generate(
                &WorkloadConfig {
                    ops_per_sec: 30.0,
                    read_fraction: 0.3,
                    duration: SimDuration::from_secs(duration_secs),
                    seed,
                    ..Default::default()
                },
                n,
            );
            let faults = if churn {
                FaultPlan::generate(
                    &FaultConfig {
                        lambda_per_sec: 0.03,
                        mu_per_sec: 0.3,
                        duration: SimDuration::from_secs(duration_secs),
                        seed: seed ^ 0xFA17,
                        ..Default::default()
                    },
                    n,
                )
            } else {
                FaultPlan::default()
            };
            let scenario = Scenario {
                protocol,
                sim: SimConfig {
                    seed,
                    ..Default::default()
                },
                workload,
                faults,
                drain: SimDuration::from_secs(10),
            };
            PartialWriteRow {
                mode: format!("{mode:?}"),
                result: run_scenario(&scenario),
            }
        })
        .collect()
}

/// Renders the comparison.
pub fn render(n: usize, duration_secs: u64, seed: u64, churn: bool) -> String {
    let rows = compute(n, duration_secs, seed, churn);
    let mut t = Table::new(
        format!("E8 - partial-write handling, N = {n}, churn = {churn}"),
        &[
            "mode",
            "write ok%",
            "replicas/write",
            "stale-marks/write",
            "sync recons",
            "msgs/op",
            "wr lat ms",
            "wr p99 ms",
        ],
    );
    for row in &rows {
        let r = &row.result;
        t.row(&[
            row.mode.clone(),
            format!("{:.1}", r.write_success_rate() * 100.0),
            format!("{:.2}", r.replicas_touched_avg),
            format!("{:.2}", r.marked_stale_avg),
            r.sync_reconciliations.to_string(),
            format!("{:.1}", r.msgs_per_op),
            format!("{:.2}", r.write_latency.mean_ms()),
            format!("{:.2}", r.write_latency.quantile_ms(0.99)),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_are_consistent_under_churn() {
        for row in compute(9, 30, 31, true) {
            assert!(
                row.result.check.consistent(),
                "{}: {:?}",
                row.mode,
                row.result.check.violations
            );
            assert!(row.result.writes_ok > 0, "{}", row.mode);
        }
    }

    #[test]
    fn stale_marking_never_reconciles_synchronously() {
        let rows = compute(9, 30, 32, true);
        let stale = rows.iter().find(|r| r.mode == "StaleMarking").unwrap();
        assert_eq!(stale.result.sync_reconciliations, 0);
    }

    #[test]
    fn fault_free_stale_marking_uses_fewer_messages() {
        // Without churn the paper's light path shines at larger N: a write
        // contacts a quorum (~2*sqrt(N) - 1 nodes) instead of all N
        // replicas, and marks the behind members instead of updating them.
        let rows = compute(25, 20, 34, false);
        let stale = rows.iter().find(|r| r.mode == "StaleMarking").unwrap();
        let wac = rows.iter().find(|r| r.mode == "WriteAllCurrent").unwrap();
        assert!(
            stale.result.msgs_per_op < wac.result.msgs_per_op,
            "stale-marking {:.1} msgs/op vs write-all-current {:.1}",
            stale.result.msgs_per_op,
            wac.result.msgs_per_op
        );
        assert!(
            stale.result.replicas_touched_avg < wac.result.replicas_touched_avg,
            "touched: {:.2} vs {:.2}",
            stale.result.replicas_touched_avg,
            wac.result.replicas_touched_avg
        );
        assert!(stale.result.write_success_rate() > 0.95);
        assert!(wac.result.write_success_rate() > 0.95);
    }

    #[test]
    fn write_all_current_pays_for_reconciliation_under_churn() {
        let rows = compute(9, 40, 33, true);
        let wac = rows.iter().find(|r| r.mode == "WriteAllCurrent").unwrap();
        assert!(
            wac.result.sync_reconciliations > 0,
            "churn should force synchronous reconciliations in the baseline"
        );
    }
}
