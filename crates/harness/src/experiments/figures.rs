//! **E2–E4 — Figures 1, 2, and 3 of the paper.**
//!
//! * Figure 1: the grid for N = 14 (4×4 with two unoccupied positions) and
//!   the worked write-quorum example {1, 6, 3, 7, 11, 4}.
//! * Figure 2: the grid for N = 3 and why small epochs block.
//! * Figure 3: the state diagram of the dynamic-grid availability chain,
//!   as a state/transition listing and Graphviz DOT.

use coterie_markov::DynamicModel;
use coterie_quorum::{CoterieRule, GridCoterie, NodeId, NodeSet, View};

/// Figure 1: the N = 14 grid plus the paper's example quorum.
pub fn figure1() -> String {
    let rule = GridCoterie::new();
    let view = View::first_n(14);
    let mut out = String::from("Figure 1. ");
    out.push_str(&rule.render(&view));
    // The paper numbers nodes from 1; our ids are 0-based.
    let example = NodeSet::from_iter([0u32, 5, 2, 6, 10, 3].map(NodeId));
    out.push_str(&format!(
        "\nexample: nodes {{1, 6, 3, 7, 11, 4}} (1-based) form a write quorum: {}\n",
        rule.is_write_quorum(&view, example)
    ));
    out.push_str(
        "  - {1, 6, 3, 4} covers every column; {3, 7, 11} covers all physical\n    positions of column 3 (position (4,3) is unoccupied).\n",
    );
    out
}

/// Figure 2: the N = 3 grid.
pub fn figure2() -> String {
    let rule = GridCoterie::new();
    let view = View::first_n(3);
    let mut out = String::from("Figure 2. ");
    out.push_str(&rule.render(&view));
    out.push_str(
        "\nWith the unoptimized full-column rule the paper's availability\n\
         analysis uses, all three nodes are needed for a write quorum, so an\n\
         epoch of three blocks on any failure. (Under the optimized rule of\n\
         the paper's own pseudo-code, {1,2} and {2,3} are write quorums; the\n\
         gap is quantified by experiment E10.)\n",
    );
    out
}

/// Figure 3: the availability chain for `n` replicas — listing and DOT.
pub fn figure3(n: usize) -> String {
    let model = DynamicModel::grid(n, 1.0, 19.0);
    let chain = model.chain();
    let mut out = format!(
        "Figure 3. State diagram of the dynamic grid protocol, N = {n}\n\
         (states (x, y, z): y nodes in the latest epoch, x of them up,\n\
         z of the other N - y nodes up; doubled circles are available)\n\n"
    );
    out.push_str(&format!(
        "{} states, {} transitions\n\n",
        chain.len(),
        chain.transitions().count()
    ));
    for (i, s) in chain.states().iter().enumerate() {
        out.push_str(&format!("  s{i}: {s:?}\n"));
    }
    out.push('\n');
    for (i, j, r) in chain.transitions() {
        out.push_str(&format!("  s{i} -> s{j}  rate {r}\n"));
    }
    out.push_str("\nDOT:\n");
    out.push_str(&chain.to_dot(|s| s.is_available()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shows_grid_and_quorum() {
        let s = figure1();
        assert!(s.contains("4 rows x 4 columns, 2 unoccupied"));
        assert!(s.contains("write quorum: true"));
    }

    #[test]
    fn figure2_shows_three_node_grid() {
        let s = figure2();
        assert!(s.contains("2 rows x 2 columns, 1 unoccupied"));
    }

    #[test]
    fn figure3_lists_states_and_dot() {
        let s = figure3(5);
        assert!(s.contains("digraph"));
        assert!(s.contains("Available"));
        assert!(s.contains("Blocked"));
        // (n - 3 + 1) * (1 + 3) = 12 states for n = 5.
        assert!(s.contains("12 states"));
    }
}
