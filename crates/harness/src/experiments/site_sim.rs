//! **E5 — Monte-Carlo validation of the availability analysis.** The
//! Figure 3 Markov chain (and the static closed forms) are checked against
//! direct stochastic simulation of the site model. The paper's p = 0.95
//! operating point makes dynamic unavailability (~1e-7 and below)
//! unmeasurable by simulation, so validation runs at lower node
//! availability where unavailable sojourns are frequent enough to
//! estimate; the *models* being validated are the same.

use crate::report::{sci, Table};
use crate::sitemodel::{replicated_unavailability, EpochDynamics, SiteModelConfig};
use coterie_markov::DynamicModel;
use coterie_quorum::availability::grid_write_availability;
use coterie_quorum::{GridCoterie, GridShape};
use serde::Serialize;
use std::sync::Arc;

/// One validation row.
#[derive(Clone, Debug, Serialize)]
pub struct SiteSimRow {
    /// Replica count.
    pub n: usize,
    /// Node-up probability.
    pub p: f64,
    /// Which model was validated.
    pub model: String,
    /// Analytic unavailability.
    pub analytic: f64,
    /// Monte-Carlo mean unavailability.
    pub mc_mean: f64,
    /// Monte-Carlo standard error.
    pub mc_se: f64,
}

/// Runs the validation grid.
pub fn compute(horizon: f64, replications: usize, seed: u64) -> Vec<SiteSimRow> {
    let mut rows = Vec::new();
    for &(n, p) in &[(6usize, 0.6), (9, 0.6), (9, 0.8)] {
        let mu = p / (1.0 - p);
        let base = SiteModelConfig {
            n,
            lambda: 1.0,
            mu,
            dynamics: EpochDynamics::Idealized { min_epoch: 3 },
            check_rate: None,
            horizon,
            warmup: horizon / 100.0,
            seed,
        };
        // Dynamic grid (idealized chain).
        let (mc, se) = replicated_unavailability(&base, replications);
        let analytic = DynamicModel::grid(n, 1.0, mu).unavailability().unwrap();
        rows.push(SiteSimRow {
            n,
            p,
            model: "dynamic grid (Figure 3)".into(),
            analytic,
            mc_mean: mc,
            mc_se: se,
        });
        // Static grid (closed form).
        let mut stat = base.clone();
        stat.dynamics = EpochDynamics::Static {
            rule: Arc::new(GridCoterie::new()),
        };
        let (mc, se) = replicated_unavailability(&stat, replications);
        let analytic = 1.0 - grid_write_availability(GridShape::define(n), p);
        rows.push(SiteSimRow {
            n,
            p,
            model: "static grid (closed form)".into(),
            analytic,
            mc_mean: mc,
            mc_se: se,
        });
    }
    rows
}

/// Renders the validation table.
pub fn render(horizon: f64, replications: usize, seed: u64) -> String {
    let rows = compute(horizon, replications, seed);
    let mut t = Table::new(
        "E5 - Monte-Carlo validation of the availability models",
        &["N", "p", "model", "analytic", "MC mean", "MC s.e.", "|z|"],
    );
    for r in &rows {
        let z = if r.mc_se > 0.0 {
            ((r.mc_mean - r.analytic) / r.mc_se).abs()
        } else {
            0.0
        };
        t.row(&[
            r.n.to_string(),
            format!("{:.2}", r.p),
            r.model.clone(),
            sci(r.analytic),
            sci(r.mc_mean),
            sci(r.mc_se),
            format!("{z:.2}"),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mc_brackets_analytic_values() {
        for r in compute(8_000.0, 6, 11) {
            let tol = 6.0 * r.mc_se.max(2e-3);
            assert!(
                (r.mc_mean - r.analytic).abs() < tol,
                "{} N={} p={}: MC {:.5} vs analytic {:.5} (se {:.6})",
                r.model,
                r.n,
                r.p,
                r.mc_mean,
                r.analytic,
                r.mc_se
            );
        }
    }
}
