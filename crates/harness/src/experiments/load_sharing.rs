//! **E7 — load sharing and message traffic.** Backs the paper's claim that
//! the grid's quorum function spreads requests over different quorums
//! ("good load sharing and light network traffic", §1/§6) compared with
//! ROWA's primary-heavy pattern, while using fewer messages per operation
//! than majority voting for large N.

use crate::faults::FaultPlan;
use crate::report::Table;
use crate::scenario::{run_scenario, Scenario, ScenarioResult};
use crate::workload::{Workload, WorkloadConfig};
use coterie_core::ProtocolConfig;
use coterie_quorum::{CoterieRule, GridCoterie, MajorityCoterie, RowaCoterie};
use coterie_simnet::{SimConfig, SimDuration};
use std::sync::Arc;

/// One measured configuration.
#[derive(Debug)]
pub struct LoadRow {
    /// Coterie rule name.
    pub rule: String,
    /// The scenario's aggregate results.
    pub result: ScenarioResult,
}

fn rules() -> Vec<(&'static str, Arc<dyn CoterieRule>)> {
    vec![
        ("grid", Arc::new(GridCoterie::new())),
        ("majority", Arc::new(MajorityCoterie::new())),
        ("rowa", Arc::new(RowaCoterie::new())),
    ]
}

/// Runs the same fault-free workload under each coterie rule.
pub fn compute(n: usize, duration_secs: u64, seed: u64) -> Vec<LoadRow> {
    rules()
        .into_iter()
        .map(|(name, rule)| {
            let protocol = ProtocolConfig::new(rule, n);
            let workload = Workload::generate(
                &WorkloadConfig {
                    ops_per_sec: 40.0,
                    read_fraction: 0.6,
                    duration: SimDuration::from_secs(duration_secs),
                    seed,
                    ..Default::default()
                },
                n,
            );
            let scenario = Scenario {
                protocol,
                sim: SimConfig {
                    seed,
                    ..Default::default()
                },
                workload,
                faults: FaultPlan::default(),
                drain: SimDuration::from_secs(5),
            };
            LoadRow {
                rule: name.into(),
                result: run_scenario(&scenario),
            }
        })
        .collect()
}

/// Renders the comparison table.
pub fn render(n: usize, duration_secs: u64, seed: u64) -> String {
    let rows = compute(n, duration_secs, seed);
    let mut t = Table::new(
        format!("E7 - load sharing and traffic, N = {n}, fault-free"),
        &[
            "rule",
            "write ok%",
            "read ok%",
            "msgs/op",
            "load CV",
            "peak/mean",
            "wr lat ms",
            "rd lat ms",
        ],
    );
    for row in &rows {
        let r = &row.result;
        t.row(&[
            row.rule.clone(),
            format!("{:.1}", r.write_success_rate() * 100.0),
            format!("{:.1}", r.read_success_rate() * 100.0),
            format!("{:.1}", r.msgs_per_op),
            format!("{:.3}", r.load.cv()),
            format!("{:.2}", r.load.peak_to_mean()),
            format!("{:.2}", r.write_latency.mean_ms()),
            format!("{:.2}", r.read_latency.mean_ms()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rules_complete_the_workload_consistently() {
        for row in compute(9, 15, 21) {
            let r = &row.result;
            assert!(
                r.check.consistent(),
                "{}: {:?}",
                row.rule,
                r.check.violations
            );
            assert!(
                r.write_success_rate() > 0.95,
                "{}: write success {:.3}",
                row.rule,
                r.write_success_rate()
            );
            assert!(r.read_success_rate() > 0.95, "{}", row.rule);
        }
    }

    #[test]
    fn rowa_writes_cost_more_messages_than_grid() {
        let rows = compute(9, 15, 22);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.rule == name)
                .map(|r| r.result.replicas_touched_avg)
                .unwrap()
        };
        // ROWA writes touch all 9 replicas; grid writes a quorum (~5).
        assert!(get("rowa") > 8.9);
        assert!(get("grid") < 7.0, "grid avg {}", get("grid"));
    }
}
