//! **E9 — sensitivity to the epoch-check rate.** The §6 analysis assumes
//! epoch checking runs between any two failure/repair events (assumption
//! 4). Here the assumption is relaxed: epoch checks arrive as a Poisson
//! process of finite rate, and unavailability is measured as a function of
//! the check-to-failure rate ratio. As the ratio grows the measurement
//! must converge to the instantaneous-checking value; as it shrinks the
//! protocol degrades toward static behaviour — quantifying the paper's
//! §2 argument for "a steady (albeit infrequent) pulse of epoch checking".

use crate::report::{sci, Table};
use crate::sitemodel::{replicated_unavailability, EpochDynamics, SiteModelConfig};
use coterie_quorum::{CoterieRule, GridCoterie};
use serde::Serialize;
use std::sync::Arc;

/// One point of the sweep.
#[derive(Clone, Debug, Serialize)]
pub struct EpochRateRow {
    /// Check rate relative to the per-node failure rate (`None` =
    /// instantaneous, the paper's assumption).
    pub check_over_lambda: Option<f64>,
    /// Measured unavailability.
    pub unavailability: f64,
    /// Standard error.
    pub se: f64,
}

/// Sweeps the epoch-check rate for an N-node dynamic grid at up
/// probability `p`.
pub fn compute(
    n: usize,
    p: f64,
    horizon: f64,
    replications: usize,
    seed: u64,
) -> Vec<EpochRateRow> {
    let mu = p / (1.0 - p);
    let rule: Arc<dyn CoterieRule> = Arc::new(GridCoterie::new());
    let mut rows = Vec::new();
    let ratios: [Option<f64>; 6] = [
        Some(0.1),
        Some(0.5),
        Some(2.0),
        Some(10.0),
        Some(50.0),
        None,
    ];
    for ratio in ratios {
        let config = SiteModelConfig {
            n,
            lambda: 1.0,
            mu,
            dynamics: EpochDynamics::Exact { rule: rule.clone() },
            check_rate: ratio,
            horizon,
            warmup: horizon / 100.0,
            seed,
        };
        let (mean, se) = replicated_unavailability(&config, replications);
        rows.push(EpochRateRow {
            check_over_lambda: ratio,
            unavailability: mean,
            se,
        });
    }
    rows
}

/// Renders the sweep.
pub fn render(n: usize, p: f64, horizon: f64, replications: usize, seed: u64) -> String {
    let rows = compute(n, p, horizon, replications, seed);
    let mut t = Table::new(
        format!("E9 - unavailability vs epoch-check rate, N = {n}, p = {p} (exact grid dynamics)"),
        &["check rate / lambda", "unavailability", "s.e."],
    );
    for r in &rows {
        t.row(&[
            r.check_over_lambda
                .map(|x| format!("{x}"))
                .unwrap_or_else(|| "instantaneous".into()),
            sci(r.unavailability),
            sci(r.se),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_checking_is_monotonically_better() {
        let rows = compute(9, 0.8, 6_000.0, 4, 17);
        // Compare the slowest and fastest finite rates and the limit.
        let slow = rows.first().unwrap();
        let fast = rows
            .iter()
            .rev()
            .find(|r| r.check_over_lambda.is_some())
            .unwrap();
        let instant = rows.last().unwrap();
        assert!(slow.unavailability > fast.unavailability, "{rows:?}");
        // The fast finite rate should approach the instantaneous limit
        // within MC noise.
        let tol = 6.0 * (fast.se + instant.se).max(2e-3);
        assert!(
            (fast.unavailability - instant.unavailability).abs() < tol.max(0.01),
            "fast {:.5} vs instant {:.5}",
            fast.unavailability,
            instant.unavailability
        );
    }
}
