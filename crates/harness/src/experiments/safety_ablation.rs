//! **E13 — ablating the §4.1 safety threshold.** The paper sketches a
//! remedy for its vulnerability window (the object becomes write-
//! unavailable when every replica holding the newest version is briefly
//! down): record the good list at every write and have coordinators with
//! too few good participants include extra current replicas, permission-
//! free. This experiment sweeps the threshold under write-heavy churn and
//! measures write success rate, traffic, and the number of newest-version
//! holders over time.

use crate::faults::{FaultConfig, FaultPlan};
use crate::report::Table;
use crate::scenario::{run_scenario, Scenario, ScenarioResult};
use crate::workload::{Workload, WorkloadConfig};
use coterie_core::ProtocolConfig;
use coterie_quorum::GridCoterie;
use coterie_simnet::{SimConfig, SimDuration};
use std::sync::Arc;

/// One threshold setting's results.
#[derive(Debug)]
pub struct SafetyRow {
    /// The configured threshold (0 disables the mechanism).
    pub threshold: usize,
    /// Aggregate scenario results.
    pub result: ScenarioResult,
}

/// Sweeps the safety threshold under churn.
pub fn compute(n: usize, duration_secs: u64, seed: u64) -> Vec<SafetyRow> {
    [0usize, 2, 3, 4]
        .into_iter()
        .map(|threshold| {
            let protocol = ProtocolConfig::new(Arc::new(GridCoterie::new()), n)
                .check_period(SimDuration::from_secs(3))
                .safety(threshold);
            let workload = Workload::generate(
                &WorkloadConfig {
                    ops_per_sec: 30.0,
                    read_fraction: 0.2,
                    duration: SimDuration::from_secs(duration_secs),
                    seed,
                    ..Default::default()
                },
                n,
            );
            let faults = FaultPlan::generate(
                &FaultConfig {
                    lambda_per_sec: 0.03,
                    mu_per_sec: 0.3,
                    duration: SimDuration::from_secs(duration_secs),
                    seed: seed ^ 0x5AFE,
                    ..Default::default()
                },
                n,
            );
            let scenario = Scenario {
                protocol,
                sim: SimConfig {
                    seed,
                    ..Default::default()
                },
                workload,
                faults,
                drain: SimDuration::from_secs(10),
            };
            SafetyRow {
                threshold,
                result: run_scenario(&scenario),
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(n: usize, duration_secs: u64, seed: u64) -> String {
    let rows = compute(n, duration_secs, seed);
    let mut t = Table::new(
        format!("E13 - safety-threshold ablation, N = {n}, churny partial writes"),
        &[
            "threshold",
            "write ok%",
            "replicas/write",
            "msgs/op",
            "wr lat ms",
        ],
    );
    for row in &rows {
        let r = &row.result;
        t.row(&[
            row.threshold.to_string(),
            format!("{:.1}", r.write_success_rate() * 100.0),
            format!("{:.2}", r.replicas_touched_avg),
            format!("{:.1}", r.msgs_per_op),
            format!("{:.2}", r.write_latency.mean_ms()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_stay_consistent_and_help_availability() {
        let rows = compute(9, 30, 41);
        for row in &rows {
            assert!(
                row.result.check.consistent(),
                "threshold {}: {:?}",
                row.threshold,
                row.result.check.violations
            );
        }
        let ok = |t: usize| {
            rows.iter()
                .find(|r| r.threshold == t)
                .unwrap()
                .result
                .write_success_rate()
        };
        // The mechanism must not hurt: threshold 3 at least matches
        // disabled within a small tolerance, and usually helps.
        assert!(
            ok(3) + 0.02 >= ok(0),
            "threshold 3 ({:.3}) should not trail disabled ({:.3})",
            ok(3),
            ok(0)
        );
    }
}
