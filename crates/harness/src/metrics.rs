//! Run metrics: operation outcomes, latency distribution, message traffic,
//! and load-sharing statistics.
//!
//! Latency accounting is backed by the engine's unified
//! [`Histogram`] (log-linear buckets, ~6%
//! worst-case quantile error, exact mean/min/max), so the harness, the
//! bench, and the engine all report percentiles from one implementation.

use coterie_core::Histogram;
use coterie_simnet::SimDuration;
use serde::{Serialize, Value};

/// A fixed-memory latency accumulator over the engine's log-linear
/// [`Histogram`]. Mean is exact (the histogram keeps the exact sum);
/// quantiles are bucket upper bounds (≤ ~6.25% relative error, exact at
/// the extremes).
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    hist: Histogram,
}

impl LatencyStats {
    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.hist.record(d.micros());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.hist.count() as usize
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.hist.is_empty()
    }

    /// Mean latency in milliseconds (exact).
    pub fn mean_ms(&self) -> f64 {
        if self.hist.is_empty() {
            return 0.0;
        }
        self.hist.mean() / 1e3
    }

    /// The `q`-quantile (0..=1) in milliseconds (bucketed above, exact at
    /// q = 0 and q = 1).
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.hist.is_empty() {
            return 0.0;
        }
        self.hist.quantile(q) as f64 / 1e3
    }

    /// The underlying microsecond histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.hist.merge(&other.hist);
    }
}

impl Serialize for LatencyStats {
    fn serialize_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_string(), Value::UInt(self.hist.count() as u128)),
            ("mean_ms".to_string(), Value::Float(self.mean_ms())),
            ("p50_ms".to_string(), Value::Float(self.quantile_ms(0.5))),
            ("p90_ms".to_string(), Value::Float(self.quantile_ms(0.9))),
            ("p99_ms".to_string(), Value::Float(self.quantile_ms(0.99))),
        ])
    }
}

/// Load-sharing statistics over per-node counts.
#[derive(Clone, Debug, Default, Serialize)]
pub struct LoadStats {
    /// Per-node counts (e.g. messages received).
    pub per_node: Vec<u64>,
}

impl LoadStats {
    /// Builds from raw counts.
    pub fn new(per_node: Vec<u64>) -> Self {
        LoadStats { per_node }
    }

    /// Mean per-node count.
    pub fn mean(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.per_node.iter().sum::<u64>() as f64 / self.per_node.len() as f64
    }

    /// Coefficient of variation (stddev / mean): 0 = perfectly balanced.
    pub fn cv(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 || self.per_node.len() < 2 {
            return 0.0;
        }
        let var = self
            .per_node
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / self.per_node.len() as f64;
        var.sqrt() / mean
    }

    /// Max/mean ratio: 1 = balanced; large = hot spot.
    pub fn peak_to_mean(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            return 0.0;
        }
        self.per_node.iter().copied().max().unwrap_or(0) as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles() {
        let mut l = LatencyStats::default();
        for i in 1..=100u64 {
            l.record(SimDuration::from_micros(i * 1000));
        }
        assert_eq!(l.len(), 100);
        assert!((l.mean_ms() - 50.5).abs() < 1e-9);
        assert!((l.quantile_ms(0.0) - 1.0).abs() < 1e-9);
        assert!((l.quantile_ms(1.0) - 100.0).abs() < 1e-9);
        // Bucketed quantile: within the histogram's ~6.25% bound.
        assert!((l.quantile_ms(0.5) - 50.0).abs() < 4.0);
    }

    #[test]
    fn empty_latency_is_zero() {
        let l = LatencyStats::default();
        assert_eq!(l.mean_ms(), 0.0);
        assert_eq!(l.quantile_ms(0.5), 0.0);
        assert!(l.is_empty());
    }

    #[test]
    fn load_balance_metrics() {
        let balanced = LoadStats::new(vec![10, 10, 10, 10]);
        assert_eq!(balanced.cv(), 0.0);
        assert_eq!(balanced.peak_to_mean(), 1.0);
        let skewed = LoadStats::new(vec![40, 0, 0, 0]);
        assert!(skewed.cv() > 1.5);
        assert_eq!(skewed.peak_to_mean(), 4.0);
        assert_eq!(LoadStats::new(vec![]).cv(), 0.0);
    }
}
