//! Run metrics: operation outcomes, latency distribution, message traffic,
//! and load-sharing statistics.

use coterie_simnet::SimDuration;
use serde::Serialize;

/// A small fixed-memory latency accumulator (exact percentiles via a
/// sorted sample vector; runs are short enough to keep every sample).
#[derive(Clone, Debug, Default, Serialize)]
pub struct LatencyStats {
    samples_us: Vec<u64>,
}

impl LatencyStats {
    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_us.push(d.micros());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        self.samples_us.iter().sum::<u64>() as f64 / self.samples_us.len() as f64 / 1e3
    }

    /// The `q`-quantile (0..=1) in milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        sorted[idx] as f64 / 1e3
    }
}

/// Load-sharing statistics over per-node counts.
#[derive(Clone, Debug, Default, Serialize)]
pub struct LoadStats {
    /// Per-node counts (e.g. messages received).
    pub per_node: Vec<u64>,
}

impl LoadStats {
    /// Builds from raw counts.
    pub fn new(per_node: Vec<u64>) -> Self {
        LoadStats { per_node }
    }

    /// Mean per-node count.
    pub fn mean(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.per_node.iter().sum::<u64>() as f64 / self.per_node.len() as f64
    }

    /// Coefficient of variation (stddev / mean): 0 = perfectly balanced.
    pub fn cv(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 || self.per_node.len() < 2 {
            return 0.0;
        }
        let var = self
            .per_node
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / self.per_node.len() as f64;
        var.sqrt() / mean
    }

    /// Max/mean ratio: 1 = balanced; large = hot spot.
    pub fn peak_to_mean(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            return 0.0;
        }
        self.per_node.iter().copied().max().unwrap_or(0) as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_quantiles() {
        let mut l = LatencyStats::default();
        for i in 1..=100u64 {
            l.record(SimDuration::from_micros(i * 1000));
        }
        assert_eq!(l.len(), 100);
        assert!((l.mean_ms() - 50.5).abs() < 1e-9);
        assert!((l.quantile_ms(0.0) - 1.0).abs() < 1e-9);
        assert!((l.quantile_ms(1.0) - 100.0).abs() < 1e-9);
        assert!((l.quantile_ms(0.5) - 50.0).abs() < 1.1);
    }

    #[test]
    fn empty_latency_is_zero() {
        let l = LatencyStats::default();
        assert_eq!(l.mean_ms(), 0.0);
        assert_eq!(l.quantile_ms(0.5), 0.0);
        assert!(l.is_empty());
    }

    #[test]
    fn load_balance_metrics() {
        let balanced = LoadStats::new(vec![10, 10, 10, 10]);
        assert_eq!(balanced.cv(), 0.0);
        assert_eq!(balanced.peak_to_mean(), 1.0);
        let skewed = LoadStats::new(vec![40, 0, 0, 0]);
        assert!(skewed.cv() > 1.5);
        assert_eq!(skewed.peak_to_mean(), 4.0);
        assert_eq!(LoadStats::new(vec![]).cv(), 0.0);
    }
}
