//! Flight-recorder forensics: turns a [`StepDriver`]'s per-node trace
//! rings into a causally merged JSONL dump plus a human-readable timeline.
//!
//! The engine's [`TraceRing`]s are bounded (last-N per node), so a capture
//! is cheap no matter how long the schedule ran; what it loses to the
//! bound it reports honestly via [`TraceDump::dropped`]. The nemesis
//! harness captures a dump at the *first* invariant violation of a run —
//! the rings then hold the events leading up to the violation, which is
//! exactly the window a post-mortem needs.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use coterie_core::{causal_merge, render_jsonl, StepDriver, TraceEvent, TraceRecord, TraceRing};
use coterie_quorum::NodeId;

/// One captured flight-recorder dump.
#[derive(Clone, Debug)]
pub struct TraceDump {
    /// Causally merged records, one deterministic JSON object per line.
    pub jsonl: String,
    /// The same records rendered as a human-readable timeline.
    pub timeline: String,
    /// Records in the dump.
    pub records: usize,
    /// Records the bounded rings had evicted before the capture (summed
    /// over nodes). Non-zero means the dump is a suffix of the history.
    pub dropped: u64,
}

/// Captures the driver's flight recorder, or `None` when tracing was
/// never enabled on this driver.
pub fn capture(driver: &StepDriver) -> Option<TraceDump> {
    if !driver.tracing_enabled() {
        return None;
    }
    let rings: Vec<&TraceRing> = (0..driver.cluster_size() as u32)
        .filter_map(|i| driver.trace_ring(NodeId(i)))
        .collect();
    let dropped = rings.iter().map(|r| r.dropped()).sum();
    let merged = causal_merge(&rings);
    Some(TraceDump {
        jsonl: render_jsonl(&merged),
        timeline: render_timeline(&merged, dropped),
        records: merged.len(),
        dropped,
    })
}

/// Writes a dump next to `prefix`: `{prefix}.jsonl` (machine-readable)
/// and `{prefix}.txt` (the timeline). Returns the two paths.
pub fn write_dump(dump: &TraceDump, prefix: &Path) -> io::Result<(PathBuf, PathBuf)> {
    let mut jsonl_path = prefix.as_os_str().to_owned();
    jsonl_path.push(".jsonl");
    let jsonl_path = PathBuf::from(jsonl_path);
    let mut txt_path = prefix.as_os_str().to_owned();
    txt_path.push(".txt");
    let txt_path = PathBuf::from(txt_path);
    if let Some(dir) = jsonl_path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&jsonl_path, &dump.jsonl)?;
    std::fs::write(&txt_path, &dump.timeline)?;
    Ok((jsonl_path, txt_path))
}

/// Renders merged records as a timeline: one line per record, ordered by
/// the causal merge, with all three clocks visible.
pub fn render_timeline(records: &[TraceRecord], dropped: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight recorder: {} records ({} older records evicted by the ring bound)",
        records.len(),
        dropped
    );
    for r in records {
        let _ = writeln!(
            out,
            "lam={:<6} t={:<10} n{} seq={:<6} {}",
            r.lamport,
            r.at.0,
            r.node.0,
            r.seq,
            describe(&r.event)
        );
    }
    out
}

/// One human-readable sentence per event. Exhaustive on purpose so a new
/// [`TraceEvent`] variant fails to compile here rather than rendering as
/// a mystery line in a post-mortem.
fn describe(event: &TraceEvent) -> String {
    match event {
        TraceEvent::MsgSend { to, class } => format!("send {class:?} -> n{}", to.0),
        TraceEvent::MsgRecv { from, class } => format!("recv {class:?} <- n{}", from.0),
        TraceEvent::MsgBounce { to, class } => {
            format!("bounce {class:?} (n{} unreachable)", to.0)
        }
        TraceEvent::LockAcquire { op, exclusive } => format!(
            "lock acquired by n{}#{} ({})",
            op.node.0,
            op.seq,
            if *exclusive { "exclusive" } else { "shared" }
        ),
        TraceEvent::LockHandoff { from_op, to_op } => format!(
            "lock handoff n{}#{} -> n{}#{}",
            from_op.node.0, from_op.seq, to_op.node.0, to_op.seq
        ),
        TraceEvent::LockRelease { op } => {
            format!("lock released by n{}#{}", op.node.0, op.seq)
        }
        TraceEvent::PrepareIssued { op } => {
            format!("2PC prepare issued for n{}#{}", op.node.0, op.seq)
        }
        TraceEvent::VoteCast { op, yes } => format!(
            "2PC vote {} on n{}#{}",
            if *yes { "YES" } else { "NO" },
            op.node.0,
            op.seq
        ),
        TraceEvent::DecisionTaken { op, commit } => format!(
            "2PC {} applied for n{}#{}",
            if *commit { "COMMIT" } else { "ABORT" },
            op.node.0,
            op.seq
        ),
        TraceEvent::EpochCheckStart { op, enumber } => format!(
            "epoch check n{}#{} started from epoch {enumber}",
            op.node.0, op.seq
        ),
        TraceEvent::EpochInstalled { enumber } => format!("epoch {enumber} installed"),
        TraceEvent::RejoinStart { op } => {
            format!("stale rejoin n{}#{} started", op.node.0, op.seq)
        }
        TraceEvent::RejoinDone { dversion, enumber } => {
            format!("stale rejoin done (dversion={dversion}, epoch={enumber})")
        }
        TraceEvent::JournalAppend { records } => {
            format!("journal append ({records} record(s))")
        }
        TraceEvent::JournalFlush { records } => {
            format!("journal flush ({records} record(s))")
        }
        TraceEvent::JournalReplay { class } => format!("journal replay: {class:?}"),
        TraceEvent::FailpointTrip { kind } => format!("storage fault fired: {kind:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_core::{ClientRequest, PartialWrite, ProtocolConfig};
    use coterie_quorum::GridCoterie;
    use coterie_simnet::SimDuration;
    use std::sync::Arc;

    fn traced_driver() -> StepDriver {
        let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 4);
        let mut driver = StepDriver::new(4, config);
        driver.enable_tracing(256);
        driver.inject(
            NodeId(0),
            ClientRequest::Write {
                id: 1,
                write: PartialWrite::new([(0, bytes::Bytes::from_static(b"x"))]),
            },
        );
        driver.run_for(SimDuration::from_secs(1));
        driver
    }

    #[test]
    fn capture_requires_tracing() {
        let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 4);
        let driver = StepDriver::new(4, config);
        assert!(capture(&driver).is_none());
    }

    #[test]
    fn capture_yields_causally_ordered_jsonl_and_timeline() {
        let dump = capture(&traced_driver()).expect("tracing enabled");
        assert!(dump.records > 0);
        assert_eq!(dump.jsonl.lines().count(), dump.records);
        // Every JSONL line is a self-contained object naming its clocks.
        for line in dump.jsonl.lines() {
            assert!(line.starts_with("{\"at\":"), "line: {line}");
            assert!(line.contains("\"lamport\":"), "line: {line}");
            assert!(line.ends_with('}'), "line: {line}");
        }
        // The merge key is non-decreasing in lamport.
        let lamports: Vec<u64> = dump
            .jsonl
            .lines()
            .map(|l| {
                let tail = l.split("\"lamport\":").nth(1).unwrap();
                tail.split(|c: char| !c.is_ascii_digit())
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(lamports.windows(2).all(|w| w[0] <= w[1]));
        // Timeline: header plus one line per record.
        assert_eq!(dump.timeline.lines().count(), dump.records + 1);
        assert!(dump.timeline.contains("2PC"));
    }

    #[test]
    fn same_seed_captures_are_byte_identical() {
        let a = capture(&traced_driver()).unwrap();
        let b = capture(&traced_driver()).unwrap();
        assert_eq!(a.jsonl, b.jsonl);
        assert_eq!(a.timeline, b.timeline);
    }
}
