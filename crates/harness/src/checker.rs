//! One-copy serializability checking.
//!
//! The paper's consistency criterion (§3): the concurrent execution must be
//! equivalent to a serial execution on non-replicated data; concretely,
//! (a) writes serialize, and (b) every read returns the most recent
//! version. The protocol's version numbers expose the serialization order
//! directly, so the checker verifies:
//!
//! 1. committed writes carry **distinct, contiguous** versions `1..=k`
//!    (two writes at the same version would be a lost update);
//! 2. rebuilding the object by replaying committed writes in version order
//!    reproduces **exactly the digest every read returned** for its
//!    version (no phantom or corrupted data);
//! 3. **recency**: a read issued after a write's success response must
//!    return at least that write's version (the external consistency the
//!    lock-based protocol provides).

// Harness-side bookkeeping: keyed lookups never feed engine effects, so
// hash maps are fine here.
#![allow(clippy::disallowed_types)]

use crate::workload::IssuedOp;
use coterie_core::{PagedObject, PartialWrite, ProtocolEvent};
use coterie_quorum::NodeId;
use coterie_simnet::SimTime;
use std::collections::HashMap;

/// A violation found by the checker.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// Two committed writes share a version.
    DuplicateWriteVersion {
        /// The colliding version.
        version: u64,
    },
    /// Committed versions have a hole.
    VersionGap {
        /// The missing version.
        missing: u64,
    },
    /// A read returned data that no prefix of committed writes produces.
    ReadDigestMismatch {
        /// Reading client id.
        id: u64,
        /// Version the read reported.
        version: u64,
    },
    /// A read returned an older version than a write that completed before
    /// the read was issued.
    StaleRead {
        /// Reading client id.
        id: u64,
        /// Version returned.
        got: u64,
        /// Minimum version required by real-time order.
        needed: u64,
    },
    /// A read reported a version no committed write produced.
    PhantomVersion {
        /// Reading client id.
        id: u64,
        /// The phantom version.
        version: u64,
    },
}

/// The checker's verdict.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// All violations found (empty = consistent).
    pub violations: Vec<Violation>,
    /// Committed writes observed.
    pub writes_committed: usize,
    /// Reads verified.
    pub reads_checked: usize,
}

impl CheckReport {
    /// True when no violations were found.
    pub fn consistent(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks a run: `issued` comes from the workload generator, `events` from
/// draining the simulator's outputs, `n_pages` must match the protocol
/// configuration.
pub fn check_run(
    issued: &HashMap<u64, IssuedOp>,
    events: &[(SimTime, NodeId, ProtocolEvent)],
    n_pages: usize,
) -> CheckReport {
    let mut report = CheckReport::default();

    // Collect committed writes (version -> payload) and completion times.
    let mut write_by_version: HashMap<u64, &PartialWrite> = HashMap::new();
    let mut completed_writes: Vec<(SimTime, u64)> = Vec::new(); // (completion, version)
    for (t, _, e) in events {
        if let ProtocolEvent::WriteOk { id, version, .. } = e {
            let Some(op) = issued.get(id) else { continue };
            let Some(write) = &op.write else { continue };
            if write_by_version.insert(*version, write).is_some() {
                report
                    .violations
                    .push(Violation::DuplicateWriteVersion { version: *version });
            }
            completed_writes.push((*t, *version));
            report.writes_committed += 1;
        }
    }

    // Contiguity 1..=k.
    let max_version = write_by_version.keys().copied().max().unwrap_or(0);
    for v in 1..=max_version {
        if !write_by_version.contains_key(&v) {
            report.violations.push(Violation::VersionGap { missing: v });
        }
    }

    // Replay the serial history and record digests per version.
    let mut object = PagedObject::new(n_pages);
    let mut digest_at = HashMap::new();
    digest_at.insert(0u64, object.digest());
    for v in 1..=max_version {
        if let Some(write) = write_by_version.get(&v) {
            object.apply(write);
        }
        digest_at.insert(v, object.digest());
    }

    // Verify reads.
    for (t, _, e) in events {
        if let ProtocolEvent::ReadOk {
            id,
            version,
            digest,
            ..
        } = e
        {
            let Some(op) = issued.get(id) else { continue };
            report.reads_checked += 1;
            match digest_at.get(version) {
                None => report.violations.push(Violation::PhantomVersion {
                    id: *id,
                    version: *version,
                }),
                Some(expect) if expect != digest => {
                    report.violations.push(Violation::ReadDigestMismatch {
                        id: *id,
                        version: *version,
                    })
                }
                _ => {}
            }
            // Recency: any write acknowledged before this read was issued
            // must be visible.
            let needed = completed_writes
                .iter()
                .filter(|(done, _)| *done <= op.at)
                .map(|(_, v)| *v)
                .max()
                .unwrap_or(0);
            if *version < needed {
                report.violations.push(Violation::StaleRead {
                    id: *id,
                    got: *version,
                    needed,
                });
            }
            let _ = t;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn issued_write(id: u64, at: u64, data: &str) -> (u64, IssuedOp) {
        (
            id,
            IssuedOp {
                id,
                at: SimTime(at),
                coordinator: NodeId(0),
                write: Some(PartialWrite::new([(
                    0,
                    Bytes::copy_from_slice(data.as_bytes()),
                )])),
            },
        )
    }

    fn issued_read(id: u64, at: u64) -> (u64, IssuedOp) {
        (
            id,
            IssuedOp {
                id,
                at: SimTime(at),
                coordinator: NodeId(0),
                write: None,
            },
        )
    }

    fn write_ok(t: u64, id: u64, version: u64) -> (SimTime, NodeId, ProtocolEvent) {
        (
            SimTime(t),
            NodeId(0),
            ProtocolEvent::WriteOk {
                id,
                version,
                replicas_touched: 3,
                marked_stale: 0,
            },
        )
    }

    fn read_ok(t: u64, id: u64, version: u64, digest: u64) -> (SimTime, NodeId, ProtocolEvent) {
        (
            SimTime(t),
            NodeId(0),
            ProtocolEvent::ReadOk {
                id,
                version,
                digest,
                pages: vec![],
            },
        )
    }

    fn digest_after(writes: &[&str], n_pages: usize) -> u64 {
        let mut o = PagedObject::new(n_pages);
        for w in writes {
            o.apply(&PartialWrite::new([(
                0,
                Bytes::copy_from_slice(w.as_bytes()),
            )]));
        }
        o.digest()
    }

    #[test]
    fn clean_history_passes() {
        let issued: HashMap<_, _> = [
            issued_write(1, 0, "a"),
            issued_write(2, 100, "b"),
            issued_read(3, 300),
        ]
        .into_iter()
        .collect();
        let events = vec![
            write_ok(50, 1, 1),
            write_ok(200, 2, 2),
            read_ok(400, 3, 2, digest_after(&["a", "b"], 4)),
        ];
        let report = check_run(&issued, &events, 4);
        assert!(report.consistent(), "{:?}", report.violations);
        assert_eq!(report.writes_committed, 2);
        assert_eq!(report.reads_checked, 1);
    }

    #[test]
    fn duplicate_version_detected() {
        let issued: HashMap<_, _> = [issued_write(1, 0, "a"), issued_write(2, 10, "b")]
            .into_iter()
            .collect();
        let events = vec![write_ok(50, 1, 1), write_ok(60, 2, 1)];
        let report = check_run(&issued, &events, 4);
        assert!(matches!(
            report.violations[0],
            Violation::DuplicateWriteVersion { version: 1 }
        ));
    }

    #[test]
    fn version_gap_detected() {
        let issued: HashMap<_, _> = [issued_write(1, 0, "a")].into_iter().collect();
        let events = vec![write_ok(50, 1, 3)];
        let report = check_run(&issued, &events, 4);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::VersionGap { missing: 1 })));
    }

    #[test]
    fn stale_read_detected() {
        let issued: HashMap<_, _> = [issued_write(1, 0, "a"), issued_read(2, 500)]
            .into_iter()
            .collect();
        // Write acked at t=100, read issued at t=500 but returns v0.
        let events = vec![
            write_ok(100, 1, 1),
            read_ok(600, 2, 0, digest_after(&[], 4)),
        ];
        let report = check_run(&issued, &events, 4);
        assert!(report.violations.iter().any(|v| matches!(
            v,
            Violation::StaleRead {
                got: 0,
                needed: 1,
                ..
            }
        )));
    }

    #[test]
    fn read_of_concurrent_write_is_not_stale() {
        let issued: HashMap<_, _> = [issued_write(1, 0, "a"), issued_read(2, 50)]
            .into_iter()
            .collect();
        // Read issued before the write completed: either version is legal.
        let events = vec![
            write_ok(100, 1, 1),
            read_ok(120, 2, 0, digest_after(&[], 4)),
        ];
        let report = check_run(&issued, &events, 4);
        assert!(report.consistent(), "{:?}", report.violations);
    }

    #[test]
    fn corrupt_read_detected() {
        let issued: HashMap<_, _> = [issued_write(1, 0, "a"), issued_read(2, 300)]
            .into_iter()
            .collect();
        let events = vec![write_ok(100, 1, 1), read_ok(400, 2, 1, 0xBAD)];
        let report = check_run(&issued, &events, 4);
        assert!(matches!(
            report.violations[0],
            Violation::ReadDigestMismatch { id: 2, version: 1 }
        ));
    }

    #[test]
    fn phantom_version_detected() {
        let issued: HashMap<_, _> = [issued_read(2, 300)].into_iter().collect();
        let events = vec![read_ok(400, 2, 7, 0)];
        let report = check_run(&issued, &events, 4);
        assert!(matches!(
            report.violations[0],
            Violation::PhantomVersion { id: 2, version: 7 }
        ));
    }
}
