//! Safety of the PR-6 write-path optimisations (DESIGN.md §10) under
//! adversarial schedules: interleaving exploration with batching and
//! pipelining enabled, and a bounded nemesis soak with all three features
//! (batching, pipelining, group commit) on.

// Test-side issued-op bookkeeping; hash order never feeds the engine.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use coterie_core::{ClientRequest, PartialWrite, ProtocolConfig, ProtocolEvent, StepDriver};
use coterie_harness::explore::{explore, ExplorerConfig};
use coterie_harness::nemesis::{soak, NemesisConfig};
use coterie_harness::workload::IssuedOp;
use coterie_quorum::{GridCoterie, NodeId};
use coterie_simnet::SimDuration;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

/// A 3-node grid with batching and pipelining on: a burst of writes at one
/// coordinator (so rounds coalesce and chain) racing a write and a read
/// elsewhere.
fn pipelined_grid() -> (StepDriver, HashMap<u64, IssuedOp>) {
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 3)
        .pages(4)
        .write_batch(2)
        .pipeline(3);
    let mut driver = StepDriver::new(3, config);
    let mut issued = HashMap::new();
    let ops: [(u64, u32, Option<PartialWrite>); 5] = [
        (1, 0, Some(PartialWrite::new([(0, b("a1"))]))),
        (2, 0, Some(PartialWrite::new([(1, b("a2"))]))),
        (3, 0, Some(PartialWrite::new([(0, b("a3"))]))),
        (4, 1, Some(PartialWrite::new([(2, b("rival"))]))),
        (5, 2, None),
    ];
    for (id, node, write) in ops {
        driver.advance(SimDuration::from_millis(1));
        let request = match &write {
            Some(w) => ClientRequest::Write {
                id,
                write: w.clone(),
            },
            None => ClientRequest::Read { id },
        };
        driver.inject(NodeId(node), request);
        issued.insert(
            id,
            IssuedOp {
                id,
                at: driver.now(),
                coordinator: NodeId(node),
                write,
            },
        );
    }
    (driver, issued)
}

/// The deterministic schedule actually pipelines: the coordinator opens at
/// least one chained round (round k+1's prepare in flight while round k's
/// decision still is), so the explorer below genuinely covers ≥2
/// concurrent write rounds.
#[test]
fn pipelined_grid_schedule_chains_rounds() {
    let (mut driver, issued) = pipelined_grid();
    driver.run_for(SimDuration::from_secs(10));

    let oks = driver
        .outputs()
        .iter()
        .filter(|(_, _, e)| matches!(e, ProtocolEvent::WriteOk { .. }))
        .count();
    assert_eq!(oks, 4, "all four writes must commit");
    let stats = &driver.node(NodeId(0)).stats;
    assert!(
        stats.chained_rounds() >= 1,
        "expected a pipelined lock handoff, got chained_rounds = {}",
        stats.chained_rounds()
    );
    assert!(
        stats.batched_writes() >= 2,
        "expected writes to share a round, got batched_writes = {}",
        stats.batched_writes()
    );
    drop(issued);
}

/// Every explored interleaving of the pipelined workload keeps epoch
/// safety, current-replica coherence, and one-copy serializability.
#[test]
fn pipelined_grid_interleavings_are_serializable() {
    let (driver, issued) = pipelined_grid();
    let explorer = ExplorerConfig {
        max_depth: 14,
        max_states: 60_000,
        n_pages: 4,
        ..ExplorerConfig::default()
    };
    let report = explore(&driver, &issued, &explorer);

    assert!(
        report.violations.is_empty(),
        "violations found:\n{}",
        report.violations.join("\n")
    );
    assert!(
        report.distinct_states >= 5_000,
        "explored only {} distinct states",
        report.distinct_states
    );
    assert!(
        report.schedules_checked > 0,
        "no schedule reached the 1SR check"
    );
}

/// A bounded nemesis soak — crashes, partitions, torn writes, journal
/// corruption — with batching, pipelining, *and* group commit enabled.
#[test]
fn feature_enabled_soak_is_clean() {
    let cfg = NemesisConfig {
        steps: 800,
        client_ops: 10,
        write_batch: 4,
        pipeline_window: 3,
        group_commit: 8,
        ..Default::default()
    };
    let report = soak(Arc::new(GridCoterie::new()), 0xFACE, 3, &cfg);
    assert!(report.clean(), "violations: {:#?}", report.dirty);
    assert!(report.crashes > 0 && report.recoveries > 0);
    assert!(report.writes_committed > 0, "soak must commit writes");
}
