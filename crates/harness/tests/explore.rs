//! Tier-1 model-checking pass: bounded interleaving exploration of the
//! dynamic grid protocol on small clusters, asserting one-copy
//! serializability and epoch safety on every explored schedule.

// Test-side issued-op bookkeeping; hash order never feeds the engine.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use coterie_core::{ClientRequest, PartialWrite, ProtocolConfig, StepDriver};
use coterie_harness::explore::{explore, ExplorerConfig};
use coterie_harness::workload::IssuedOp;
use coterie_quorum::{GridCoterie, MajorityCoterie, NodeId};
use coterie_simnet::SimDuration;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

/// Injects `ops` (id, coordinator, Some(write) | None for a read) into the
/// driver 1 ms apart and returns the checker's issued-op map.
fn inject(
    driver: &mut StepDriver,
    ops: &[(u64, u32, Option<PartialWrite>)],
) -> HashMap<u64, IssuedOp> {
    let mut issued = HashMap::new();
    for (id, node, write) in ops {
        driver.advance(SimDuration::from_millis(1));
        let request = match write {
            Some(w) => ClientRequest::Write {
                id: *id,
                write: w.clone(),
            },
            None => ClientRequest::Read { id: *id },
        };
        driver.inject(NodeId(*node), request);
        issued.insert(
            *id,
            IssuedOp {
                id: *id,
                at: driver.now(),
                coordinator: NodeId(*node),
                write: write.clone(),
            },
        );
    }
    issued
}

/// Two concurrent writes plus a read on a 4-node grid: the bread-and-butter
/// conflict pattern. Explores well past 10k distinct states.
#[test]
fn grid_write_write_read_interleavings_are_serializable() {
    let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 4).pages(4);
    let mut driver = StepDriver::new(4, config);
    let issued = inject(
        &mut driver,
        &[
            (1, 0, Some(PartialWrite::new([(0, b("alpha"))]))),
            (2, 1, Some(PartialWrite::new([(1, b("beta"))]))),
            (3, 2, None),
        ],
    );

    let explorer = ExplorerConfig {
        max_depth: 14,
        max_states: 60_000,
        n_pages: 4,
        ..ExplorerConfig::default()
    };
    let report = explore(&driver, &issued, &explorer);

    assert!(
        report.violations.is_empty(),
        "violations found:\n{}",
        report.violations.join("\n")
    );
    assert!(
        report.distinct_states >= 10_000,
        "explored only {} distinct states",
        report.distinct_states
    );
    assert!(
        report.schedules_checked > 0,
        "no schedule reached the 1SR check"
    );
}

/// A write racing a crash of its coordinator-side peer on a 3-node majority
/// cluster, with recovery in the mix: exercises 2PC in-doubt handling and
/// epoch atomicity under failures.
#[test]
fn majority_write_under_crash_recovery_stays_safe() {
    let config = ProtocolConfig::new(Arc::new(MajorityCoterie::new()), 3).pages(4);
    let mut driver = StepDriver::new(3, config);
    let issued = inject(
        &mut driver,
        &[
            (1, 0, Some(PartialWrite::new([(0, b("solo"))]))),
            (2, 2, None),
        ],
    );

    let explorer = ExplorerConfig {
        max_depth: 12,
        max_states: 40_000,
        crash_budget: 1,
        crashable: vec![NodeId(1)],
        n_pages: 4,
        ..ExplorerConfig::default()
    };
    let report = explore(&driver, &issued, &explorer);

    assert!(
        report.violations.is_empty(),
        "violations found:\n{}",
        report.violations.join("\n")
    );
    assert!(
        report.distinct_states >= 5_000,
        "explored only {} distinct states",
        report.distinct_states
    );
    assert!(report.schedules_checked > 0);
}
