//! Pinned reproductions of known-latent nemesis violations.
//!
//! ROADMAP open item 2: an extended-seed sweep finds dirty runs that were
//! already present at the seed commit — majority seeds 62 and 98 diverge
//! on the epoch *member list* while agreeing on the epoch number, after a
//! node recovers mid-epoch-check (the PR-4 rejoin guards don't cover the
//! recovery/epoch-install interaction). This test pins the minimal repro
//! (`cargo run -p coterie-harness --bin nemesis -- 1 62 3000`, majority
//! cell) so the bug has an executable spec.
//!
//! `#[ignore]`d because it asserts the *presence* of the bug: it fails
//! the moment the violation is fixed. Whoever fixes ROADMAP item 2 should
//! run it (`cargo test -p coterie-harness -- --ignored epoch_list`),
//! watch it fail, then invert the assertion into a permanent clean-run
//! regression test.

use std::sync::Arc;

use coterie_harness::nemesis::{run_nemesis, NemesisConfig};
use coterie_quorum::MajorityCoterie;

#[test]
#[ignore = "pins a known-latent bug (ROADMAP item 2); fails once the bug is fixed"]
fn epoch_list_divergence_majority_seed_62_still_reproduces() {
    let cfg = NemesisConfig {
        n_nodes: 5,
        steps: 3_000,
        ..NemesisConfig::default()
    };
    let run = run_nemesis(Arc::new(MajorityCoterie::new()), 62, &cfg);
    assert!(
        !run.clean(),
        "majority seed 62 ran clean: ROADMAP item 2 appears fixed — \
         invert this test into a clean-run regression gate"
    );
    assert!(
        run.violations.iter().any(|v| v.contains("epoch safety")),
        "seed 62 violated something other than epoch safety: {:?}",
        run.violations
    );
}
