//! Pinned reproductions of known-latent nemesis violations.
//!
//! ROADMAP open item 2: an extended-seed sweep finds dirty runs that were
//! already present at the seed commit — majority seeds 62 and 98 diverge
//! on the epoch *member list* while agreeing on the epoch number, after a
//! node recovers mid-epoch-check (the PR-4 rejoin guards don't cover the
//! recovery/epoch-install interaction). This test pins the minimal repro
//! (`cargo run -p coterie-harness --bin nemesis -- 1 62 3000 majority`)
//! so the bug has an executable spec, and captures its flight-recorder
//! dump as a checked-in artifact (`tests/data/nemesis_seed62_trace.jsonl`)
//! — the causally ordered last-N trace records per node leading up to the
//! first violation. DESIGN.md §14.4 walks the reconstructed causal chain.
//!
//! The run asserts the *presence* of the bug: it fails the moment the
//! violation is fixed. Whoever fixes ROADMAP item 2 should watch it fail,
//! invert the assertions into a permanent clean-run regression test, and
//! delete the artifact. Until then, the checked-in dump also pins trace
//! determinism end-to-end: the same seed must reproduce the same causal
//! history byte-for-byte (regenerate with `NEMESIS_TRACE_REGEN=1`).

use std::path::Path;
use std::sync::Arc;

use coterie_harness::nemesis::{run_nemesis, NemesisConfig};
use coterie_quorum::MajorityCoterie;

#[test]
fn epoch_list_divergence_majority_seed_62_still_reproduces() {
    let cfg = NemesisConfig {
        n_nodes: 5,
        steps: 3_000,
        ..NemesisConfig::default()
    };
    let run = run_nemesis(Arc::new(MajorityCoterie::new()), 62, &cfg);
    assert!(
        !run.clean(),
        "majority seed 62 ran clean: ROADMAP item 2 appears fixed — \
         invert this test into a clean-run regression gate and delete \
         tests/data/nemesis_seed62_trace.jsonl"
    );
    assert!(
        run.violations.iter().any(|v| v.contains("epoch safety")),
        "seed 62 violated something other than epoch safety: {:?}",
        run.violations
    );

    // The flight recorder captured the window leading up to the first
    // violation: a causally merged, non-empty dump naming real nodes,
    // epochs, and message sequence.
    let dump = run
        .trace
        .as_ref()
        .expect("dirty run must carry a flight-recorder dump");
    assert!(dump.records > 0, "flight recorder captured nothing");
    assert!(
        dump.jsonl.contains("\"ev\":\"epoch_installed\""),
        "dump never shows an epoch install — wrong window?"
    );
    assert_eq!(dump.jsonl.lines().count(), dump.records);
    assert_eq!(dump.timeline.lines().count(), dump.records + 1);

    // The dump is a deterministic artifact: same seed, same bytes.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/nemesis_seed62_trace.jsonl");
    if std::env::var_os("NEMESIS_TRACE_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &dump.jsonl).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing trace artifact {} ({e}); regenerate with \
             NEMESIS_TRACE_REGEN=1 cargo test -p coterie-harness --test nemesis_regressions",
            path.display()
        )
    });
    assert!(
        expected == dump.jsonl,
        "seed-62 flight-recorder dump drifted from the checked-in artifact.\n\
         If the schedule or trace taxonomy changed intentionally, regenerate \
         with NEMESIS_TRACE_REGEN=1; otherwise determinism broke."
    );
}
