//! Bench: regenerate the paper's Figures 1-3 (E2-E4) — grid derivation and
//! rendering, and Figure 3 chain construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    c.bench_function("figures/figure1_grid_n14", |b| {
        b.iter(|| black_box(coterie_harness::experiments::figures::figure1()))
    });
    c.bench_function("figures/figure3_chain_n9", |b| {
        b.iter(|| {
            let chain = coterie_markov::DynamicModel::grid(black_box(9), 1.0, 19.0).chain();
            black_box(chain.len())
        })
    });
    c.bench_function("figures/figure3_dot_n9", |b| {
        let chain = coterie_markov::DynamicModel::grid(9, 1.0, 19.0).chain();
        b.iter(|| black_box(chain.to_dot(|s| s.is_available()).len()))
    });
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
