//! Bench: ablations of design choices DESIGN.md calls out —
//! locking vs log-shipping propagation, epoch-check period, and write-log
//! capacity (snapshot fallback frequency).

use coterie_bench::{cluster, drive_ops};
use coterie_quorum::GridCoterie;
use coterie_simnet::SimDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_propagation_locking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_propagation");
    group.sample_size(10);
    for (name, locking) in [("log_shipping", false), ("paper_locking", true)] {
        group.bench_function(BenchmarkId::new(name, 9), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut sim = cluster(Arc::new(GridCoterie::new()), 9, seed, |mut c| {
                    c.lock_propagation = locking;
                    c
                });
                black_box(drive_ops(&mut sim, 100, SimDuration::from_millis(10)))
            })
        });
    }
    group.finish();
}

fn bench_log_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_log_capacity");
    group.sample_size(10);
    for cap in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("cap", cap), &cap, |b, &cap| {
            let mut seed = 100;
            b.iter(|| {
                seed += 1;
                let mut sim = cluster(Arc::new(GridCoterie::new()), 9, seed, |c| {
                    c.log_capacity(cap)
                });
                black_box(drive_ops(&mut sim, 100, SimDuration::from_millis(10)))
            })
        });
    }
    group.finish();
}

fn bench_check_period(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_check_period");
    group.sample_size(10);
    for millis in [500u64, 5_000] {
        group.bench_with_input(BenchmarkId::new("ms", millis), &millis, |b, &millis| {
            let mut seed = 200;
            b.iter(|| {
                seed += 1;
                let mut sim = cluster(Arc::new(GridCoterie::new()), 9, seed, |c| {
                    c.check_period(SimDuration::from_millis(millis))
                });
                sim.crash_now(coterie_quorum::NodeId(7));
                black_box(drive_ops(&mut sim, 60, SimDuration::from_millis(20)))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_propagation_locking,
    bench_log_capacity,
    bench_check_period
);
criterion_main!(benches);
