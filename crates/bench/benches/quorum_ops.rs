//! Bench: the protocol's hot path — `coterie-rule(V, S)` evaluation and
//! quorum selection, per rule and view size (backs E6's size claims with
//! cost measurements).

use coterie_quorum::availability::exact_availability;
use coterie_quorum::{
    CoterieRule, GridCoterie, MajorityCoterie, NodeSet, QuorumKind, RowaCoterie, TreeCoterie, View,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn rules() -> Vec<(&'static str, Box<dyn CoterieRule>)> {
    vec![
        ("grid", Box::new(GridCoterie::new())),
        ("majority", Box::new(MajorityCoterie::new())),
        ("tree", Box::new(TreeCoterie::new())),
        ("rowa", Box::new(RowaCoterie::new())),
    ]
}

fn bench_is_quorum(c: &mut Criterion) {
    let mut group = c.benchmark_group("is_write_quorum");
    for n in [9usize, 25, 64, 100] {
        let view = View::first_n(n);
        // A set that is usually a quorum: the first ceil(2n/3) nodes.
        let s = NodeSet::first_n(n * 2 / 3 + 1);
        for (name, rule) in rules() {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| black_box(rule.is_write_quorum(&view, black_box(s))))
            });
        }
    }
    group.finish();
}

fn bench_pick_quorum(c: &mut Criterion) {
    let mut group = c.benchmark_group("pick_write_quorum");
    for n in [9usize, 25, 100] {
        let view = View::first_n(n);
        for (name, rule) in rules() {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    black_box(rule.pick_quorum(&view, view.set(), seed, QuorumKind::Write))
                })
            });
        }
    }
    group.finish();
}

fn bench_grid_define(c: &mut Criterion) {
    c.bench_function("grid/define_grid_sweep_1_to_1024", |b| {
        b.iter(|| {
            for n in 1..=1024usize {
                black_box(coterie_quorum::GridShape::define(black_box(n)));
            }
        })
    });
}

/// Legacy predicate vs. compiled-plan evaluation, per rule and view size.
/// The acceptance bar for the plan compiler: grid at N = 25 must come out
/// >= 5x faster compiled than legacy.
fn bench_quorum_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("quorum_eval");
    for n in [9usize, 25, 64, 100] {
        let view = View::first_n(n);
        let s = NodeSet::first_n(n * 2 / 3 + 1);
        for (name, rule) in rules() {
            let plan = rule.compile(&view);
            group.bench_with_input(BenchmarkId::new(format!("legacy/{name}"), n), &n, |b, _| {
                b.iter(|| black_box(rule.includes_quorum(&view, black_box(s), QuorumKind::Write)))
            });
            group.bench_with_input(
                BenchmarkId::new(format!("compiled/{name}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        black_box(plan.includes_quorum_with(
                            &*rule,
                            black_box(s),
                            QuorumKind::Write,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

/// Cold-compile cost: what one epoch change pays to rebuild a plan.
fn bench_plan_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_compile");
    for n in [9usize, 25, 100] {
        let view = View::first_n(n);
        for (name, rule) in rules() {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| black_box(rule.compile(black_box(&view))))
            });
        }
    }
    group.finish();
}

/// The 2^N availability enumeration at N = 20: the sequential legacy loop
/// (predicates straight off the rule, no plan, one thread) against the
/// shipped plan-compiled parallel sweep. Acceptance bar: >= 2x.
fn bench_exact_availability(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_availability");
    group.sample_size(10);
    let n = 20usize;
    let view = View::first_n(n);
    let p = 0.9f64;
    let rule = GridCoterie::new();
    group.bench_with_input(BenchmarkId::new("legacy_seq/grid", n), &n, |b, _| {
        b.iter(|| {
            let bits: Vec<u128> = view.members().iter().map(|m| 1u128 << m.index()).collect();
            let mut total = 0.0f64;
            for mask in 0u64..(1 << n) {
                let mut up = 0u128;
                let mut rest = mask;
                while rest != 0 {
                    let i = rest.trailing_zeros() as usize;
                    up |= bits[i];
                    rest &= rest - 1;
                }
                if rule.includes_quorum(&view, NodeSet(up), QuorumKind::Write) {
                    let k = mask.count_ones() as i32;
                    total += p.powi(k) * (1.0 - p).powi(n as i32 - k);
                }
            }
            black_box(total)
        })
    });
    group.bench_with_input(BenchmarkId::new("plan_parallel/grid", n), &n, |b, _| {
        b.iter(|| black_box(exact_availability(&rule, &view, p, QuorumKind::Write)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_is_quorum,
    bench_pick_quorum,
    bench_grid_define,
    bench_quorum_eval,
    bench_plan_compile,
    bench_exact_availability
);
criterion_main!(benches);
