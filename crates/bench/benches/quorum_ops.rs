//! Bench: the protocol's hot path — `coterie-rule(V, S)` evaluation and
//! quorum selection, per rule and view size (backs E6's size claims with
//! cost measurements).

use coterie_quorum::{
    CoterieRule, GridCoterie, MajorityCoterie, NodeSet, QuorumKind, RowaCoterie, TreeCoterie,
    View,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn rules() -> Vec<(&'static str, Box<dyn CoterieRule>)> {
    vec![
        ("grid", Box::new(GridCoterie::new())),
        ("majority", Box::new(MajorityCoterie::new())),
        ("tree", Box::new(TreeCoterie::new())),
        ("rowa", Box::new(RowaCoterie::new())),
    ]
}

fn bench_is_quorum(c: &mut Criterion) {
    let mut group = c.benchmark_group("is_write_quorum");
    for n in [9usize, 25, 64, 100] {
        let view = View::first_n(n);
        // A set that is usually a quorum: the first ceil(2n/3) nodes.
        let s = NodeSet::first_n(n * 2 / 3 + 1);
        for (name, rule) in rules() {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| black_box(rule.is_write_quorum(&view, black_box(s))))
            });
        }
    }
    group.finish();
}

fn bench_pick_quorum(c: &mut Criterion) {
    let mut group = c.benchmark_group("pick_write_quorum");
    for n in [9usize, 25, 100] {
        let view = View::first_n(n);
        for (name, rule) in rules() {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    black_box(rule.pick_quorum(&view, view.set(), seed, QuorumKind::Write))
                })
            });
        }
    }
    group.finish();
}

fn bench_grid_define(c: &mut Criterion) {
    c.bench_function("grid/define_grid_sweep_1_to_1024", |b| {
        b.iter(|| {
            for n in 1..=1024usize {
                black_box(coterie_quorum::GridShape::define(black_box(n)));
            }
        })
    });
}

criterion_group!(benches, bench_is_quorum, bench_pick_quorum, bench_grid_define);
criterion_main!(benches);
