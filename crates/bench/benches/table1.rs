//! Bench: regenerate the paper's Table 1 (E1). The measured work is the
//! full analytic pipeline — best-grid search + closed forms for the static
//! column, Figure 3 chain construction + GTH solve for the dynamic column.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/full_regeneration_p095", |b| {
        b.iter(|| {
            let rows = coterie_harness::experiments::table1::compute(black_box(0.95));
            assert_eq!(rows.len(), 7);
            black_box(rows)
        })
    });
    c.bench_function("table1/dynamic_column_only", |b| {
        b.iter(|| {
            for &n in &coterie_harness::experiments::table1::TABLE1_N {
                let u = coterie_markov::DynamicModel::grid(n, 1.0, 19.0)
                    .unavailability()
                    .unwrap();
                black_box(u);
            }
        })
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
