//! Bench: GTH steady-state solving — the engine behind every availability
//! number — including the exact structure-aware chain (E10).

use coterie_markov::{exact_chain, stationary, DynamicModel};
use coterie_quorum::GridCoterie;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_gth(c: &mut Criterion) {
    let mut group = c.benchmark_group("gth_stationary");
    for n in [9usize, 15, 30, 60] {
        let chain = DynamicModel::grid(n, 1.0, 19.0).chain();
        group.bench_with_input(
            BenchmarkId::new("figure3_chain", format!("N{n}_{}states", chain.len())),
            &chain,
            |b, chain| b.iter(|| black_box(stationary(chain).unwrap())),
        );
    }
    group.finish();
}

fn bench_exact_chain(c: &mut Criterion) {
    let rule = GridCoterie::new();
    c.bench_function("exact_chain/build_and_solve_n6", |b| {
        b.iter(|| {
            let chain = exact_chain(&rule, black_box(6), 1.0, 19.0);
            black_box(stationary(&chain).unwrap())
        })
    });
}

criterion_group!(benches, bench_gth, bench_exact_chain);
criterion_main!(benches);
