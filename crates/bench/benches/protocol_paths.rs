//! Bench: full simulated protocol operations per coterie rule (backs E7's
//! traffic numbers with end-to-end cost) and the churn path (E8).

use coterie_bench::{cluster, drive_ops};
use coterie_quorum::{CoterieRule, GridCoterie, MajorityCoterie, RowaCoterie};
use coterie_simnet::SimDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_ops_per_rule(c: &mut Criterion) {
    let mut group = c.benchmark_group("ops_100_mixed");
    group.sample_size(10);
    let rules: Vec<(&str, Arc<dyn CoterieRule>)> = vec![
        ("grid", Arc::new(GridCoterie::new())),
        ("majority", Arc::new(MajorityCoterie::new())),
        ("rowa", Arc::new(RowaCoterie::new())),
    ];
    for n in [9usize, 25] {
        for (name, rule) in &rules {
            group.bench_with_input(BenchmarkId::new(*name, n), &n, |b, &n| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    let mut sim = cluster(rule.clone(), n, seed, |c| c);
                    black_box(drive_ops(&mut sim, 100, SimDuration::from_millis(10)))
                })
            });
        }
    }
    group.finish();
}

fn bench_epoch_change(c: &mut Criterion) {
    c.bench_function("epoch_change_after_failure_n9", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut sim = cluster(Arc::new(GridCoterie::new()), 9, seed, |c| {
                c.check_period(SimDuration::from_millis(500))
            });
            sim.crash_now(coterie_quorum::NodeId(8));
            sim.run_for(SimDuration::from_secs(3));
            black_box(sim.node(coterie_quorum::NodeId(0)).durable.elist.len())
        })
    });
}

criterion_group!(benches, bench_ops_per_rule, bench_epoch_change);
criterion_main!(benches);
