//! Bench: Monte-Carlo site-model simulation throughput (the workhorse of
//! E5, E9, and E10).

use coterie_harness::{simulate, EpochDynamics, SiteModelConfig};
use coterie_quorum::GridCoterie;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_site_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("site_model_horizon_2000");
    for (name, dynamics) in [
        ("idealized", EpochDynamics::Idealized { min_epoch: 3 }),
        (
            "exact_grid",
            EpochDynamics::Exact {
                rule: Arc::new(GridCoterie::new()),
            },
        ),
        (
            "static_grid",
            EpochDynamics::Static {
                rule: Arc::new(GridCoterie::new()),
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new(name, 9), &dynamics, |b, dynamics| {
            b.iter(|| {
                let config = SiteModelConfig {
                    n: 9,
                    lambda: 1.0,
                    mu: 1.5,
                    dynamics: dynamics.clone(),
                    check_rate: None,
                    horizon: 2_000.0,
                    warmup: 20.0,
                    seed: 9,
                };
                black_box(simulate(&config).unavailability)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_site_model);
criterion_main!(benches);
