//! Closed-loop throughput load driver (DESIGN.md §10).
//!
//! `clients` workers each keep exactly one operation outstanding: as soon
//! as a worker's operation completes (or the protocol gives up on it), the
//! worker issues the next one. Writes all target node 0 — the write-leader
//! topology that makes coordinator-side batching and pipelining visible —
//! while reads round-robin across the cluster. Runs are fixed-duration;
//! the report carries ops/sec, p50/p99 latency, and the journal-flush
//! count (the fsync bill group commit amortizes).
//!
//! Two execution modes share the workload logic:
//!
//! * [`run_sim`] drives a [`StepDriver`] cluster under the deterministic
//!   zero-latency schedule — simulated time, reproducible, and checked:
//!   the run ends with the harness's 1SR checker and the cluster
//!   invariants (epoch safety, coherence) over every replica.
//! * [`run_threaded`] hosts [`JournaledNode`]s on OS threads via
//!   [`ThreadedRuntime`] — wall-clock time, real inter-thread latencies,
//!   and (optionally) a real journal file per node with one `fdatasync`
//!   per flush, so the group-commit win is measured against actual
//!   stable-storage costs.

// Tool-side bookkeeping: keyed lookups never feed engine effects.
#![allow(clippy::disallowed_types)]

use std::collections::HashMap;
use std::time::{Duration, Instant};

use coterie_core::{
    ClientRequest, Histogram, JournaledNode, MetricsRegistry, PartialWrite, ProtocolConfig,
    ProtocolEvent, StepDriver,
};
use coterie_harness::checker::check_run;
use coterie_harness::explore::cluster_invariant_violations;
use coterie_harness::workload::IssuedOp;
use coterie_quorum::NodeId;
use coterie_simnet::{SimDuration, SimTime, ThreadedRuntime};

/// Workload shape for one load run.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Concurrent closed-loop client workers.
    pub clients: usize,
    /// Reads per mille (900 = the 90/10 read-heavy mix, 500 = 50/50).
    pub read_permille: u64,
    /// Run length: simulated ms for [`run_sim`], wall ms for
    /// [`run_threaded`].
    pub duration_ms: u64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            clients: 16,
            read_permille: 500,
            duration_ms: 2_000,
            seed: 0xBEEF,
        }
    }
}

/// What one load run measured.
#[derive(Clone, Debug, serde::Serialize)]
pub struct LoadReport {
    /// Operations completed inside the measurement window.
    pub committed: u64,
    /// Reads among them.
    pub reads: u64,
    /// Writes among them.
    pub writes: u64,
    /// Operations the protocol gave up on (client reissued).
    pub gave_up: u64,
    /// Window length in seconds (simulated or wall).
    pub elapsed_secs: f64,
    /// `committed / elapsed_secs`.
    pub ops_per_sec: f64,
    /// Median completion latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile completion latency, microseconds.
    pub p99_us: u64,
    /// Median write latency, microseconds.
    pub write_p50_us: u64,
    /// 99th-percentile write latency, microseconds.
    pub write_p99_us: u64,
    /// Journal flushes across the cluster (header commits; with a sync
    /// file attached, real fsyncs).
    pub flushes: u64,
    /// Consistency violations found after the run (must be empty).
    pub violations: Vec<String>,
    /// Cluster-wide protocol metrics: every engine counter merged across
    /// nodes, plus the host histograms (notably `journal_flush_us`).
    pub metrics: MetricsSnapshot,
}

/// Serializable snapshot of a [`MetricsRegistry`]: counters verbatim,
/// histograms reduced to their summary statistics. Keys come from
/// [`coterie_core::keys`], so snapshots diff cleanly across runs.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot(pub MetricsRegistry);

impl serde::Serialize for MetricsSnapshot {
    fn serialize_value(&self) -> serde::Value {
        use serde::Value;
        let counters = self
            .0
            .counters()
            .map(|(k, v)| (k.to_string(), Value::UInt(u128::from(v))))
            .collect();
        let hists = self
            .0
            .histograms()
            .map(|(k, h)| {
                (
                    k.to_string(),
                    Value::Object(vec![
                        ("count".to_string(), Value::UInt(u128::from(h.count()))),
                        ("mean".to_string(), Value::Float(h.mean())),
                        ("min".to_string(), Value::UInt(u128::from(h.min()))),
                        ("max".to_string(), Value::UInt(u128::from(h.max()))),
                        ("p50".to_string(), Value::UInt(u128::from(h.quantile(0.5)))),
                        ("p90".to_string(), Value::UInt(u128::from(h.quantile(0.9)))),
                        ("p99".to_string(), Value::UInt(u128::from(h.quantile(0.99)))),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("histograms".to_string(), Value::Object(hists)),
        ])
    }
}

/// Minimal deterministic stream for workload choices (read-vs-write, page
/// picks); independent of the engines' own RNGs.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// One in-flight client operation.
struct Outstanding {
    client: usize,
    issued_us: u64,
    is_write: bool,
}

/// Accumulates completions into log-linear [`Histogram`]s (the same
/// implementation behind every other latency figure in the workspace —
/// quantiles are bucket upper bounds, within ~6.25% of exact).
#[derive(Default)]
struct Metrics {
    committed: u64,
    reads: u64,
    writes: u64,
    gave_up: u64,
    lat: Histogram,
    write_lat: Histogram,
}

impl Metrics {
    fn complete(&mut self, op: &Outstanding, done_us: u64) {
        let lat = done_us.saturating_sub(op.issued_us);
        self.committed += 1;
        self.lat.record(lat);
        if op.is_write {
            self.writes += 1;
            self.write_lat.record(lat);
        } else {
            self.reads += 1;
        }
    }

    fn into_report(
        self,
        elapsed_secs: f64,
        flushes: u64,
        violations: Vec<String>,
        cluster: MetricsRegistry,
    ) -> LoadReport {
        LoadReport {
            committed: self.committed,
            reads: self.reads,
            writes: self.writes,
            gave_up: self.gave_up,
            elapsed_secs,
            ops_per_sec: self.committed as f64 / elapsed_secs.max(1e-9),
            p50_us: self.lat.quantile(0.5),
            p99_us: self.lat.quantile(0.99),
            write_p50_us: self.write_lat.quantile(0.5),
            write_p99_us: self.write_lat.quantile(0.99),
            flushes,
            violations,
            metrics: MetricsSnapshot(cluster),
        }
    }
}

/// Builds the next request for `client`: a write (to node 0) or a read
/// (round-robin by request id), per the spec's mix.
fn next_request(
    spec: &LoadSpec,
    config: &ProtocolConfig,
    n: usize,
    rng: &mut XorShift,
    id: u64,
) -> (NodeId, ClientRequest, Option<PartialWrite>) {
    if rng.next() % 1000 < spec.read_permille {
        (
            NodeId((id % n as u64) as u32),
            ClientRequest::Read { id },
            None,
        )
    } else {
        let page = (rng.next() % config.n_pages as u64) as u16;
        let mut payload = [0u8; 32];
        payload[..8].copy_from_slice(&id.to_le_bytes());
        payload[8..16].copy_from_slice(&rng.next().to_le_bytes());
        let write = PartialWrite::new([(page, bytes::Bytes::copy_from_slice(&payload))]);
        (
            NodeId(0),
            ClientRequest::Write {
                id,
                write: write.clone(),
            },
            Some(write),
        )
    }
}

/// Runs the closed loop against a [`StepDriver`] cluster in simulated
/// time, then checks 1SR and the cluster invariants.
pub fn run_sim(config: ProtocolConfig, n: usize, spec: &LoadSpec) -> LoadReport {
    let mut driver = StepDriver::new(n, config.clone());
    let mut rng = XorShift(spec.seed | 1);
    let deadline = SimTime(spec.duration_ms * 1000);
    let slice = SimDuration::from_millis(5);

    let mut issued: HashMap<u64, IssuedOp> = HashMap::new();
    let mut open: HashMap<u64, Outstanding> = HashMap::new();
    let mut idle: Vec<usize> = (0..spec.clients).collect();
    let mut next_id = 1u64;
    let mut metrics = Metrics::default();
    let mut scanned = 0usize;

    while driver.now() < deadline {
        for client in idle.drain(..) {
            let id = next_id;
            next_id += 1;
            let (node, req, write) = next_request(spec, &config, n, &mut rng, id);
            issued.insert(
                id,
                IssuedOp {
                    id,
                    at: driver.now(),
                    coordinator: node,
                    write,
                },
            );
            open.insert(
                id,
                Outstanding {
                    client,
                    issued_us: driver.now().0,
                    is_write: issued[&id].write.is_some(),
                },
            );
            driver.inject(node, req);
        }
        driver.run_for(slice);
        scanned = drain_sim_outputs(
            &driver,
            scanned,
            deadline,
            &mut open,
            &mut idle,
            &mut metrics,
        );
    }

    // Let the stragglers finish so the checker sees complete histories
    // (completions past the deadline are not counted in the metrics).
    driver.run_for(SimDuration::from_secs(5));
    drain_sim_outputs(
        &driver,
        scanned,
        deadline,
        &mut open,
        &mut idle,
        &mut metrics,
    );

    let mut violations = cluster_invariant_violations(&driver);
    let check = check_run(&issued, driver.outputs(), config.n_pages);
    for v in check.violations {
        violations.push(format!("1SR violation: {v:?}"));
    }
    let flushes: u64 = (0..n).map(|i| driver.flushes(NodeId(i as u32))).sum();
    metrics.into_report(
        spec.duration_ms as f64 / 1000.0,
        flushes,
        violations,
        driver.metrics(),
    )
}

/// Matches new driver outputs against open operations; counts only
/// completions inside the measurement window. Returns the new scan cursor.
fn drain_sim_outputs(
    driver: &StepDriver,
    mut scanned: usize,
    deadline: SimTime,
    open: &mut HashMap<u64, Outstanding>,
    idle: &mut Vec<usize>,
    metrics: &mut Metrics,
) -> usize {
    let outs = driver.outputs();
    while scanned < outs.len() {
        let (t, _, ev) = &outs[scanned];
        scanned += 1;
        match ev {
            ProtocolEvent::ReadOk { id, .. } | ProtocolEvent::WriteOk { id, .. } => {
                if let Some(op) = open.remove(id) {
                    if *t <= deadline {
                        metrics.complete(&op, t.0);
                    }
                    idle.push(op.client);
                }
            }
            ProtocolEvent::Failed { id, .. } => {
                if let Some(op) = open.remove(id) {
                    metrics.gave_up += 1;
                    idle.push(op.client);
                }
            }
            _ => {}
        }
    }
    scanned
}

/// Runs the closed loop against a [`ThreadedRuntime`] of
/// [`JournaledNode`]s in wall-clock time. With `sync_dir` set, each node
/// mirrors its journal into a real file there and pays one `fdatasync`
/// per flush.
// Wall-clock host loop: `Instant` IS the clock being measured here; the
// determinism rule targets engine code, not the bench's outer loop.
#[allow(clippy::disallowed_methods)]
pub fn run_threaded(
    config: ProtocolConfig,
    n: usize,
    spec: &LoadSpec,
    sync_dir: Option<std::path::PathBuf>,
) -> LoadReport {
    let node_config = config.clone();
    let tag = std::process::id();
    let runtime = ThreadedRuntime::spawn(n, spec.seed, Duration::from_millis(20), move |id| {
        let mut node = JournaledNode::new(id, node_config.clone());
        if let Some(dir) = &sync_dir {
            let path = dir.join(format!("coterie-bench-{tag}-n{}.ctj2", id.0));
            if let Ok(file) = std::fs::File::create(path) {
                node.attach_sync_file(file);
            }
        }
        node
    });

    let mut rng = XorShift(spec.seed | 1);
    let start = Instant::now();
    let window = Duration::from_millis(spec.duration_ms);
    let us_now = |start: Instant| start.elapsed().as_micros() as u64;

    let mut issued: HashMap<u64, IssuedOp> = HashMap::new();
    let mut open: HashMap<u64, Outstanding> = HashMap::new();
    let mut events: Vec<(SimTime, NodeId, ProtocolEvent)> = Vec::new();
    let mut metrics = Metrics::default();
    let mut next_id = 1u64;

    let issue = |client: usize,
                 rng: &mut XorShift,
                 next_id: &mut u64,
                 issued: &mut HashMap<u64, IssuedOp>,
                 open: &mut HashMap<u64, Outstanding>| {
        let id = *next_id;
        *next_id += 1;
        let (node, req, write) = next_request(spec, &config, n, rng, id);
        let now_us = us_now(start);
        issued.insert(
            id,
            IssuedOp {
                id,
                at: SimTime(now_us),
                coordinator: node,
                write: write.clone(),
            },
        );
        open.insert(
            id,
            Outstanding {
                client,
                issued_us: now_us,
                is_write: write.is_some(),
            },
        );
        runtime.inject(node, req);
    };
    for client in 0..spec.clients {
        issue(client, &mut rng, &mut next_id, &mut issued, &mut open);
    }

    // Measurement window: reissue on every completion.
    while start.elapsed() < window {
        let Some((from, ev)) = runtime.recv_output(Duration::from_millis(2)) else {
            continue;
        };
        let t = SimTime(us_now(start));
        if let Some((op, gave_up)) = completion(&ev, &mut open) {
            if !gave_up && t <= SimTime(spec.duration_ms * 1000) {
                metrics.complete(&op, t.0);
            }
            metrics.gave_up += gave_up as u64;
            issue(op.client, &mut rng, &mut next_id, &mut issued, &mut open);
        }
        events.push((t, from, ev));
    }

    // Grace period: let in-flight operations finish (uncounted) so the
    // 1SR checker sees complete write/read histories, then stop.
    let grace = Instant::now();
    while !open.is_empty() && grace.elapsed() < Duration::from_secs(3) {
        let Some((from, ev)) = runtime.recv_output(Duration::from_millis(10)) else {
            continue;
        };
        let t = SimTime(us_now(start));
        if let Some((op, gave_up)) = completion(&ev, &mut open) {
            metrics.gave_up += gave_up as u64;
            let _ = op;
        }
        events.push((t, from, ev));
    }
    for (from, ev) in runtime.drain_outputs() {
        events.push((SimTime(us_now(start)), from, ev));
    }
    let nodes = runtime.shutdown();

    let flushes: u64 = nodes.iter().map(|node| node.flushes).sum();
    let mut cluster = MetricsRegistry::new();
    for node in &nodes {
        cluster.merge(&node.metrics());
    }
    let mut violations = durable_invariant_violations(&nodes);
    let check = check_run(&issued, &events, config.n_pages);
    for v in check.violations {
        violations.push(format!("1SR violation: {v:?}"));
    }
    metrics.into_report(
        spec.duration_ms as f64 / 1000.0,
        flushes,
        violations,
        cluster,
    )
}

/// Classifies an output event as a completion of an open op. Returns the
/// op and whether the protocol gave up on it.
fn completion(
    ev: &ProtocolEvent,
    open: &mut HashMap<u64, Outstanding>,
) -> Option<(Outstanding, bool)> {
    match ev {
        ProtocolEvent::ReadOk { id, .. } | ProtocolEvent::WriteOk { id, .. } => {
            open.remove(id).map(|op| (op, false))
        }
        ProtocolEvent::Failed { id, .. } => open.remove(id).map(|op| (op, true)),
        _ => None,
    }
}

/// The explorer's per-state cluster invariants (epoch agreement and
/// current-replica coherence), applied to threaded nodes after shutdown.
fn durable_invariant_violations(nodes: &[JournaledNode]) -> Vec<String> {
    let mut violations = Vec::new();
    for a in 0..nodes.len() {
        for b in (a + 1)..nodes.len() {
            let (da, db) = (&nodes[a].node.durable, &nodes[b].node.durable);
            if da.enumber == db.enumber && da.elist != db.elist {
                violations.push(format!(
                    "epoch safety: nodes {a} and {b} both in epoch {} but lists {:?} vs {:?}",
                    da.enumber, da.elist, db.elist
                ));
            }
            if da.version == db.version
                && !da.stale
                && !db.stale
                && da.object.digest() != db.object.digest()
            {
                violations.push(format!(
                    "coherence: nodes {a} and {b} both current at version {} with \
                     different contents",
                    da.version
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_quorum::GridCoterie;
    use std::sync::Arc;

    fn spec(read_permille: u64) -> LoadSpec {
        LoadSpec {
            clients: 8,
            read_permille,
            duration_ms: 400,
            seed: 7,
        }
    }

    #[test]
    fn sim_load_baseline_is_clean() {
        let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 9);
        let report = run_sim(config, 9, &spec(500));
        assert!(report.committed > 0, "no ops completed");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn sim_load_fully_enabled_is_clean_and_batches() {
        let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 9)
            .write_batch(8)
            .pipeline(4)
            .group_commit(8, SimDuration::from_millis(2));
        let report = run_sim(config, 9, &spec(500));
        assert!(report.committed > 0, "no ops completed");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.writes > 0, "write-heavy mix committed no writes");
    }

    #[test]
    fn threaded_load_smoke() {
        let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 5)
            .write_batch(8)
            .pipeline(4)
            .group_commit(8, SimDuration::from_millis(2));
        let report = run_threaded(
            config,
            5,
            &LoadSpec {
                clients: 4,
                read_permille: 500,
                duration_ms: 300,
                seed: 11,
            },
            None,
        );
        assert!(report.committed > 0, "no ops completed");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
