//! Closed-loop protocol throughput bench (DESIGN.md §10).
//!
//! Runs the {grid, majority} × {read-heavy 90/10, write-heavy 50/50} ×
//! {baseline, +batching, +pipelining, +group-commit} matrix through the
//! closed-loop load driver and writes `BENCH_protocol_throughput.json`.
//! Feature columns are cumulative: `+pipelining` includes batching,
//! `+group-commit` includes both.
//!
//! Usage:
//!
//! ```text
//! bench_throughput                  # full matrix, threaded + sim, JSON out
//! bench_throughput --out FILE      # choose the JSON path
//! bench_throughput --duration-ms N # per-cell window (default 1500)
//! bench_throughput --smoke         # bounded sim check for tier1.sh:
//!                                  # nonzero committed ops, zero violations
//! bench_throughput --gate [FILE]   # re-run the write-heavy *sim* cells
//!                                  # (tracing disabled) and fail if any
//!                                  # regresses >5% vs the JSON artifact
//! ```
//!
//! The gate leans on determinism: sim cells run in simulated time, so on
//! unchanged code they reproduce the artifact numbers exactly — the 5%
//! tolerance absorbs intentional protocol changes, not machine noise. It
//! is tier1's tracing-overhead check: the engine always stamps its trace
//! clocks, so a slowdown from the (disabled, no-op-sink) tracing layer
//! would show up here.

use std::sync::Arc;

use coterie_bench::load::{run_sim, run_threaded, LoadReport, LoadSpec, MetricsSnapshot};
use coterie_core::ProtocolConfig;
use coterie_quorum::{CoterieRule, GridCoterie, MajorityCoterie};
use coterie_simnet::SimDuration;

/// One feature ladder rung: (label, write batch, pipeline window,
/// group-commit batch).
const LADDER: &[(&str, usize, u32, usize)] = &[
    ("baseline", 1, 1, 1),
    ("batching", 16, 1, 1),
    ("pipelining", 16, 4, 1),
    ("group-commit", 16, 4, 16),
];

fn rules() -> Vec<(&'static str, Arc<dyn CoterieRule>, usize)> {
    vec![
        ("grid", Arc::new(GridCoterie::new()), 9),
        ("majority", Arc::new(MajorityCoterie::new()), 5),
    ]
}

fn configure(
    rule: Arc<dyn CoterieRule>,
    n: usize,
    batch: usize,
    window: u32,
    gc: usize,
) -> ProtocolConfig {
    // The flush deadline is the latency ceiling a buffered ack can pay;
    // 250 µs amortizes fsyncs without stretching the closed loop.
    let mut config = ProtocolConfig::new(rule, n)
        .write_batch(batch)
        .pipeline(window)
        .group_commit(gc, SimDuration::from_micros(250))
        .rng_seed(0xC0FFEE);
    // Closed-loop rounds finish in ~0.5 ms, so the default 10 ms contention
    // backoff (×2^attempt) would leave clients asleep most of the run; 1 ms
    // keeps retries proportionate. Applied to every cell equally.
    config.retry_backoff = SimDuration::from_millis(1);
    config
}

fn smoke() -> i32 {
    let mut failures = 0;
    for (rule_name, rule, n) in rules() {
        let config = configure(rule, n, 8, 4, 8);
        let spec = LoadSpec {
            clients: 8,
            read_permille: 500,
            duration_ms: 500,
            seed: 42,
        };
        let report = run_sim(config, n, &spec);
        let ok = report.committed > 0 && report.violations.is_empty();
        println!(
            "smoke {rule_name}/{n}: committed={} writes={} flushes={} violations={}",
            report.committed,
            report.writes,
            report.flushes,
            report.violations.len()
        );
        for v in &report.violations {
            println!("  {v}");
        }
        if !ok {
            failures += 1;
        }
    }
    if failures == 0 {
        println!("throughput smoke: ok");
        0
    } else {
        println!("throughput smoke: FAILED");
        1
    }
}

/// Pulls `sim_ops_per_sec` for a named cell out of the JSON artifact.
/// Hand-rolled extraction: the vendored serde stand-in only serializes,
/// and the two fields live in a fixed, self-generated layout.
fn baseline_sim_ops(doc: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\"");
    let at = doc.find(&needle)?;
    let tail = &doc[at..];
    let key = "\"sim_ops_per_sec\":";
    let k = tail.find(key)?;
    let rest = tail[k + key.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Tracing-overhead / regression gate: re-runs the write-heavy sim cells
/// (deterministic simulated time, tracing disabled) and compares against
/// the checked-in artifact. Fails on any >5% throughput regression;
/// improvements pass.
fn gate(baseline_path: &str, duration_ms: u64) -> i32 {
    let doc = match std::fs::read_to_string(baseline_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gate: cannot read {baseline_path}: {e}");
            return 1;
        }
    };
    let mut failures = 0;
    for (rule_name, rule, n) in rules() {
        for &(feature, batch, window, gc) in LADDER {
            let name = format!("throughput/{rule_name}/{n}/write-heavy/{feature}");
            let Some(expected) = baseline_sim_ops(&doc, &name) else {
                eprintln!("gate: {name} missing from {baseline_path}");
                failures += 1;
                continue;
            };
            let config = configure(rule.clone(), n, batch, window, gc);
            let spec = LoadSpec {
                clients: 32,
                read_permille: 500,
                duration_ms,
                seed: 0xBEEF ^ (n as u64) ^ 500,
            };
            let sim = run_sim(config, n, &spec);
            let ratio = if expected > 0.0 {
                sim.ops_per_sec / expected
            } else {
                1.0
            };
            let ok = ratio >= 0.95 && sim.violations.is_empty();
            println!(
                "gate {name}: {:.0} ops/s vs baseline {expected:.0} ({:+.1}%){}",
                sim.ops_per_sec,
                (ratio - 1.0) * 100.0,
                if ok { "" } else { "  REGRESSION" }
            );
            for v in &sim.violations {
                eprintln!("  VIOLATION: {v}");
            }
            if !ok {
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("throughput gate: ok (no write-heavy sim cell regressed >5%)");
        0
    } else {
        println!("throughput gate: FAILED ({failures} cell(s))");
        1
    }
}

/// One matrix cell as landed in the JSON artifact.
#[derive(serde::Serialize)]
struct Cell {
    name: String,
    threaded_ops_per_sec: f64,
    threaded_p50_us: u64,
    threaded_p99_us: u64,
    threaded_write_p50_us: u64,
    threaded_write_p99_us: u64,
    threaded_flushes: u64,
    threaded_committed: u64,
    sim_ops_per_sec: f64,
    sim_p50_us: u64,
    sim_p99_us: u64,
    violations: usize,
    threaded_metrics: MetricsSnapshot,
    sim_metrics: MetricsSnapshot,
}

/// The whole artifact, shaped like the other BENCH_*.json files.
#[derive(serde::Serialize)]
struct Doc {
    description: String,
    date: String,
    results: Vec<Cell>,
}

fn cell_json(name: &str, threaded: &LoadReport, sim: &LoadReport) -> Cell {
    Cell {
        name: name.to_string(),
        threaded_ops_per_sec: round2(threaded.ops_per_sec),
        threaded_p50_us: threaded.p50_us,
        threaded_p99_us: threaded.p99_us,
        threaded_write_p50_us: threaded.write_p50_us,
        threaded_write_p99_us: threaded.write_p99_us,
        threaded_flushes: threaded.flushes,
        threaded_committed: threaded.committed,
        sim_ops_per_sec: round2(sim.ops_per_sec),
        sim_p50_us: sim.p50_us,
        sim_p99_us: sim.p99_us,
        violations: threaded.violations.len() + sim.violations.len(),
        threaded_metrics: threaded.metrics.clone(),
        sim_metrics: sim.metrics.clone(),
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::from("BENCH_protocol_throughput.json");
    let mut duration_ms = 1_500u64;
    let mut smoke_mode = false;
    let mut gate_mode = false;
    let mut gate_baseline = String::from("BENCH_protocol_throughput.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke_mode = true,
            "--gate" => {
                gate_mode = true;
                if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                    i += 1;
                    gate_baseline = args[i].clone();
                }
            }
            "--out" if i + 1 < args.len() => {
                i += 1;
                out = args[i].clone();
            }
            "--duration-ms" if i + 1 < args.len() => {
                i += 1;
                duration_ms = args[i].parse().unwrap_or(duration_ms);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if smoke_mode {
        std::process::exit(smoke());
    }
    if gate_mode {
        std::process::exit(gate(&gate_baseline, duration_ms));
    }

    let sync_dir = std::env::temp_dir();
    let mut results = Vec::new();
    let mut failed = false;
    for (rule_name, rule, n) in rules() {
        for (mix_name, read_permille) in [("read-heavy", 900u64), ("write-heavy", 500u64)] {
            for &(feature, batch, window, gc) in LADDER {
                let config = configure(rule.clone(), n, batch, window, gc);
                let spec = LoadSpec {
                    clients: 32,
                    read_permille,
                    duration_ms,
                    seed: 0xBEEF ^ (n as u64) ^ read_permille,
                };
                let threaded = run_threaded(config.clone(), n, &spec, Some(sync_dir.clone()));
                let sim = run_sim(config, n, &spec);
                let name = format!("throughput/{rule_name}/{n}/{mix_name}/{feature}");
                println!(
                    "{name}: threaded {:.0} ops/s ({}r/{}w, p50 {} µs, p99 {} µs, \
                     wp50 {} µs, {} flushes), sim {:.0} ops/s",
                    threaded.ops_per_sec,
                    threaded.reads,
                    threaded.writes,
                    threaded.p50_us,
                    threaded.p99_us,
                    threaded.write_p50_us,
                    threaded.flushes,
                    sim.ops_per_sec,
                );
                for v in threaded.violations.iter().chain(sim.violations.iter()) {
                    eprintln!("  VIOLATION: {v}");
                    failed = true;
                }
                results.push(cell_json(&name, &threaded, &sim));
            }
        }
    }

    let doc = Doc {
        description: "Closed-loop protocol throughput: 16 clients, writes to node 0, \
                      reads round-robin; feature columns are cumulative (batching, then \
                      +pipelining, then +group-commit). Threaded numbers are wall-clock \
                      on OS threads with one fdatasync per journal flush; sim numbers \
                      are deterministic StepDriver time. Source: \
                      crates/bench/src/bin/bench_throughput.rs, release profile."
            .to_string(),
        date: "2026-08-09".to_string(),
        results,
    };
    let rendered = serde_json::to_string_pretty(&doc).expect("bench records are serializable");
    if let Err(e) = std::fs::write(&out, rendered + "\n") {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
    if failed {
        std::process::exit(1);
    }
}
