//! # coterie-bench
//!
//! Shared fixtures for the Criterion benchmarks. The benches are organized
//! one-per-artifact (see EXPERIMENTS.md):
//!
//! * `table1` — regenerates the paper's Table 1 end to end (closed forms +
//!   GTH solve) and reports the time to do so.
//! * `figures` — grid construction/rendering (Figures 1-2) and the
//!   Figure 3 chain build.
//! * `quorum_ops` — the protocol hot path: `coterie-rule(V, S)` checks and
//!   quorum selection per rule and size (backs E6).
//! * `markov_solve` — GTH steady-state solve scaling.
//! * `protocol_paths` — full simulated write/read operations per rule
//!   (backs E7) and under churn (E8).
//! * `site_model` — Monte-Carlo site-model throughput (backs E5/E9/E10).
//! * `ablations` — design choices DESIGN.md calls out: locking vs
//!   log-shipping propagation, no-wait vs waiting epoch prepares
//!   (via check-period extremes), write-log capacity.

pub mod load;

use coterie_core::{ClientRequest, PartialWrite, ProtocolConfig, ReplicaNode};
use coterie_quorum::{CoterieRule, NodeId};
use coterie_simnet::{Sim, SimConfig, SimDuration, SimTime};
use std::sync::Arc;

/// Builds an N-node cluster with the given rule for protocol benches.
pub fn cluster(
    rule: Arc<dyn CoterieRule>,
    n: usize,
    seed: u64,
    configure: impl Fn(ProtocolConfig) -> ProtocolConfig,
) -> Sim<ReplicaNode> {
    let config = configure(ProtocolConfig::new(rule, n));
    Sim::new(
        n,
        SimConfig {
            seed,
            ..Default::default()
        },
        |id| ReplicaNode::new(id, config.clone()),
    )
}

/// Drives `ops` alternating writes and reads through the cluster and runs
/// to completion; returns committed-op count (for throughput assertions).
pub fn drive_ops(sim: &mut Sim<ReplicaNode>, ops: u64, gap: SimDuration) -> u64 {
    let n = sim.len() as u32;
    for i in 0..ops {
        let at = SimTime(i * gap.micros());
        let node = NodeId((i % n as u64) as u32);
        let req = if i % 2 == 0 {
            ClientRequest::Write {
                id: i,
                write: PartialWrite::new([(
                    (i % 8) as u16,
                    bytes::Bytes::copy_from_slice(&i.to_le_bytes()),
                )]),
            }
        } else {
            ClientRequest::Read { id: i }
        };
        sim.schedule_external(at, node, req);
    }
    sim.run_for(SimDuration::from_micros(ops * gap.micros()) + SimDuration::from_secs(2));
    sim.take_outputs()
        .iter()
        .filter(|(_, _, e)| {
            matches!(
                e,
                coterie_core::ProtocolEvent::WriteOk { .. }
                    | coterie_core::ProtocolEvent::ReadOk { .. }
            )
        })
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_quorum::GridCoterie;

    #[test]
    fn fixtures_work() {
        let mut sim = cluster(Arc::new(GridCoterie::new()), 9, 1, |c| c);
        let done = drive_ops(&mut sim, 20, SimDuration::from_millis(50));
        assert_eq!(done, 20);
    }
}
