//! Host adapters binding the sans-I/O engine to the `coterie-simnet`
//! substrate (feature `simnet-host`).
//!
//! The adapters are deliberately thin: each simulator callback is
//! translated into one [`Input`], fed to [`ReplicaNode::step`], and the
//! returned [`Effect`]s are replayed onto the simulator's context. All
//! protocol behaviour lives in the engine; nothing here makes decisions.
//!
//! Two hosts are provided:
//!
//! * [`ReplicaNode`] itself implements [`Application`] — durable state
//!   simply lives in the engine struct (and survives simulated crashes
//!   because the engine value survives them). `Persist` effects are
//!   dropped: there is no storage to write to.
//! * [`JournaledNode`] additionally appends every `Persist` delta to a
//!   framed, checksummed [`FramedJournal`] and, on crash, **discards the
//!   engine's durable state and reinstalls it from checked journal
//!   replay** — so a simulation run over `JournaledNode`s proves the
//!   journal alone carries everything the protocol needs across failures.
//!   A quarantined replay (damage inside the committed prefix) makes the
//!   next start a [`Input::BootQuarantined`], which enters the
//!   stale-rejoin protocol instead of booting normally.
//!
//! When [`group_commit_max_batch`] is above 1, `JournaledNode` coalesces
//! journal appends (DESIGN.md §10): `Persist` deltas accumulate in a
//! [`GroupCommitBuffer`] and flush as one [`FramedJournal::append_batch`]
//! when the batch cap is hit or the [`Timer::HostFlush`] deadline fires.
//! While any delta is buffered, every *observable* effect (`Send`,
//! `Output`) is deferred until the covering flush — the ack-before-flush
//! rule: a client ack or a 2PC vote must never outrun the stable-storage
//! write that justifies it. Timer effects stay immediate: they are local,
//! leak nothing, and the engine's handlers already tolerate spurious
//! firings. A crash with a non-empty buffer simply discards it — none of
//! the buffered steps' observable effects escaped, so recovery is
//! identical to crashing just before those steps ran.
//!
//! [`group_commit_max_batch`]: crate::config::ProtocolConfig::group_commit_max_batch

use coterie_base::{SimTime, TimerId};
use coterie_quorum::NodeId;
use coterie_simnet::{Application, Ctx};

use crate::engine::io::{Effect, Input};
use crate::engine::metrics::{keys, MetricsRegistry};
use crate::engine::storage::{FramedJournal, GroupCommitBuffer};
use crate::engine::trace::{ReplayClass, TraceEvent, TraceRecord, TraceRing, TraceSink};
use crate::msg::{ClientRequest, Msg, ProtocolEvent};
use crate::node::{ReplicaNode, Timer};

/// What travels over the simulated (or threaded) network: the protocol
/// message plus the sender's Lamport stamp. The stamp is trace metadata —
/// hosts thread it from [`Effect::Send`] to [`Input::Deliver`] so causal
/// ordering survives the substrate; the protocol itself never reads it.
#[derive(Clone, Debug)]
pub struct WireMsg {
    /// The sender's Lamport counter at send time.
    pub lamport: u64,
    /// The protocol message.
    pub msg: Msg,
}

/// The reserved timer id for the host-owned group-commit flush deadline.
/// The engine allocates ids from a counter starting at 0 and can never
/// reach this value in any feasible run.
pub const HOST_FLUSH_TIMER: TimerId = TimerId(u64::MAX);

/// A best-effort on-disk mirror of the journal image, used by the
/// throughput bench to charge each flush a real `fsync`. Errors are
/// swallowed: the in-memory [`FramedJournal`] stays authoritative, the
/// sink only exists so a flush costs what it would on real storage.
#[derive(Clone, Debug)]
pub struct SyncSink {
    file: std::sync::Arc<std::fs::File>,
    /// Bytes of the journal image already on disk.
    synced: usize,
}

impl SyncSink {
    /// Wraps `file` (created/truncated by the caller) as a sink.
    pub fn new(file: std::fs::File) -> Self {
        SyncSink {
            file: std::sync::Arc::new(file),
            synced: 0,
        }
    }

    /// Mirrors `bytes` (the current journal image) to disk and issues one
    /// `fdatasync`. Appends write only the new suffix; the 16-byte header
    /// is rewritten every time (it carries the commit pointer); a shrink
    /// (truncated tail / quarantine reset) rewrites the whole image.
    fn commit(&mut self, bytes: &[u8]) {
        use std::io::{Seek, SeekFrom, Write};
        let mut f: &std::fs::File = &self.file;
        if bytes.len() < self.synced {
            let _ = f.set_len(0);
            self.synced = 0;
        }
        let header_end = bytes.len().min(16);
        let _ = f
            .seek(SeekFrom::Start(0))
            .and_then(|_| f.write_all(&bytes[..header_end]));
        let tail_from = self.synced.max(header_end);
        if bytes.len() > tail_from {
            let _ = f
                .seek(SeekFrom::Start(tail_from as u64))
                .and_then(|_| f.write_all(&bytes[tail_from..]));
        }
        self.synced = bytes.len();
        let _ = f.sync_data();
    }
}

/// Replays engine effects onto a simulator context. `Persist` effects are
/// handled by the caller (journaling hosts intercept them first).
fn replay_effects<A>(ctx: &mut Ctx<'_, A>, effects: &[Effect])
where
    A: Application<Msg = WireMsg, Timer = Timer, Output = ProtocolEvent>,
{
    for effect in effects {
        match effect {
            Effect::Send { to, msg, lamport } => ctx.send(
                *to,
                WireMsg {
                    lamport: *lamport,
                    msg: msg.clone(),
                },
            ),
            Effect::SetTimer { id, delay, timer } => {
                ctx.set_timer_with_id(*id, *delay, timer.clone())
            }
            Effect::CancelTimer(id) => ctx.cancel_timer(*id),
            Effect::Persist(_) => {}
            Effect::Output(event) => ctx.output(event.clone()),
        }
    }
}

impl Application for ReplicaNode {
    type Msg = WireMsg;
    type Timer = Timer;
    type External = ClientRequest;
    type Output = ProtocolEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        let effects = self.step(ctx.now(), Input::Boot);
        replay_effects(ctx, &effects);
    }

    fn on_crash(&mut self) {
        // Crash produces no effects (it only wipes volatile state); the
        // host drops this node's pending timers itself.
        let _ = self.step(SimTime::ZERO, Input::Crash);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, wire: WireMsg) {
        let effects = self.step(
            ctx.now(),
            Input::Deliver {
                from,
                msg: wire.msg,
                lamport: wire.lamport,
            },
        );
        replay_effects(ctx, &effects);
    }

    fn on_call_failed(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, wire: WireMsg) {
        let effects = self.step(ctx.now(), Input::CallFailed { to, msg: wire.msg });
        replay_effects(ctx, &effects);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Timer) {
        let effects = self.step(ctx.now(), Input::TimerFired(timer));
        replay_effects(ctx, &effects);
    }

    fn on_external(&mut self, ctx: &mut Ctx<'_, Self>, request: ClientRequest) {
        let effects = self.step(ctx.now(), Input::External(request));
        replay_effects(ctx, &effects);
    }
}

/// A replica host that treats the [`FramedJournal`] as its only stable
/// storage: durable state is recovered from checked journal replay after
/// every crash rather than trusted from memory. Optionally group-commits
/// journal appends (see the module docs).
#[derive(Clone, Debug)]
pub struct JournaledNode {
    /// The engine.
    pub node: ReplicaNode,
    /// The framed journal of persisted deltas.
    pub journal: FramedJournal,
    /// Set when the last crash-replay quarantined the journal; the next
    /// start boots via the stale-rejoin protocol.
    quarantined: bool,
    /// Coalescing buffer for group commit (cap 1 = write-through).
    buffer: GroupCommitBuffer,
    /// Observable effects held back until the covering flush.
    deferred: Vec<Effect>,
    /// True while a [`HOST_FLUSH_TIMER`] is armed.
    flush_armed: bool,
    /// Journal flushes performed (each is one header commit; on real
    /// storage, one fsync). The throughput bench reads this to show the
    /// fsync amortization group commit buys.
    pub flushes: u64,
    /// Optional on-disk mirror: every flush also writes the journal delta
    /// to a real file and `fdatasync`s it.
    sync: Option<SyncSink>,
    /// Optional bounded flight recorder for this node's trace events.
    tracing: Option<TraceRing>,
    /// Host-level metrics: journal flush count and flush latency.
    host_metrics: MetricsRegistry,
}

impl JournaledNode {
    /// Creates a journaled node with pristine state and an empty journal.
    pub fn new(me: NodeId, config: crate::config::ProtocolConfig) -> Self {
        let cap = config.group_commit_max_batch;
        JournaledNode {
            node: ReplicaNode::new(me, config),
            journal: FramedJournal::new(),
            quarantined: false,
            buffer: GroupCommitBuffer::new(cap),
            deferred: Vec::new(),
            flush_armed: false,
            flushes: 0,
            sync: None,
            tracing: None,
            host_metrics: MetricsRegistry::new(),
        }
    }

    /// Attaches a flight recorder keeping the last `cap` trace events.
    pub fn enable_tracing(&mut self, cap: usize) {
        self.tracing = Some(TraceRing::new(cap));
    }

    /// This node's flight recorder, if tracing is enabled.
    pub fn trace_ring(&self) -> Option<&TraceRing> {
        self.tracing.as_ref()
    }

    /// A unified snapshot of this node's metrics: the engine's registry
    /// merged with the host's journal counters and flush-latency histogram.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut merged = self.node.stats.registry.clone();
        merged.merge(&self.host_metrics);
        merged.add(keys::JOURNAL_FLUSHES, self.flushes);
        merged
    }

    /// Stamps and records a host-level trace event (no-op when tracing is
    /// disabled).
    fn trace_host(&mut self, at: SimTime, event: TraceEvent) {
        if let Some(ring) = self.tracing.as_mut() {
            let node = self.node.me;
            let (seq, lamport) = self.node.trace_stamp();
            ring.record(TraceRecord {
                at,
                node,
                seq,
                lamport,
                event,
            });
        }
    }

    /// Attaches a real file the journal image is mirrored to; every flush
    /// then costs one `fdatasync` on it. The file should be empty.
    pub fn attach_sync_file(&mut self, file: std::fs::File) {
        self.sync = Some(SyncSink::new(file));
    }

    /// True while a quarantined replay is waiting for its rejoin boot.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Deltas buffered and not yet flushed to the journal.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn flush(&mut self, ctx: &mut Ctx<'_, Self>) {
        if !self.buffer.is_empty() {
            let batch = self.buffer.drain();
            // Host boundary: wall-clock timing of the (possibly fsync'd)
            // flush — measurement only, never protocol-visible.
            #[allow(clippy::disallowed_methods)]
            let started = std::time::Instant::now();
            self.journal.append_batch(&batch);
            self.flushes += 1;
            if let Some(sink) = &mut self.sync {
                sink.commit(self.journal.bytes());
            }
            self.host_metrics
                .observe(keys::JOURNAL_FLUSH_US, started.elapsed().as_micros() as u64);
            self.trace_host(
                ctx.now(),
                TraceEvent::JournalFlush {
                    records: batch.len() as u64,
                },
            );
        }
        if std::mem::take(&mut self.flush_armed) {
            ctx.cancel_timer(HOST_FLUSH_TIMER);
        }
        let held = std::mem::take(&mut self.deferred);
        replay_effects(ctx, &held);
    }

    fn run(&mut self, ctx: &mut Ctx<'_, Self>, input: Input) {
        let now = ctx.now();
        let effects = match self.tracing.as_mut() {
            Some(ring) => self.node.step_traced(now, input, ring),
            None => self.node.step(now, input),
        };
        let write_through = self.node.config.group_commit_max_batch <= 1;
        if write_through {
            // Write-ahead: journal the delta before any send/output it
            // governs.
            let mut appended = false;
            for effect in &effects {
                if let Effect::Persist(delta) = effect {
                    #[allow(clippy::disallowed_methods)]
                    let started = std::time::Instant::now();
                    self.journal.append_delta(delta);
                    self.flushes += 1;
                    if let Some(sink) = &mut self.sync {
                        sink.commit(self.journal.bytes());
                    }
                    self.host_metrics
                        .observe(keys::JOURNAL_FLUSH_US, started.elapsed().as_micros() as u64);
                    appended = true;
                }
            }
            if appended {
                self.trace_host(now, TraceEvent::JournalAppend { records: 1 });
            }
            replay_effects(ctx, &effects);
            return;
        }
        let mut must_flush = false;
        for effect in effects {
            match effect {
                Effect::Persist(delta) => {
                    if self.buffer.is_empty() && !self.flush_armed {
                        let delay = self.node.config.group_commit_max_delay;
                        ctx.set_timer_with_id(HOST_FLUSH_TIMER, delay, Timer::HostFlush);
                        self.flush_armed = true;
                    }
                    must_flush |= self.buffer.push(*delta);
                }
                Effect::SetTimer { id, delay, timer } => {
                    ctx.set_timer_with_id(id, delay, timer);
                }
                Effect::CancelTimer(id) => ctx.cancel_timer(id),
                observable @ (Effect::Send { .. } | Effect::Output(_)) => {
                    // Ack-before-flush: anything behind a buffered delta
                    // waits for the flush that makes the delta stable.
                    if self.buffer.is_empty() {
                        replay_effects(ctx, std::slice::from_ref(&observable));
                    } else {
                        self.deferred.push(observable);
                    }
                }
            }
        }
        if must_flush {
            self.flush(ctx);
        }
    }
}

impl std::ops::Deref for JournaledNode {
    type Target = ReplicaNode;

    fn deref(&self) -> &ReplicaNode {
        &self.node
    }
}

impl Application for JournaledNode {
    type Msg = WireMsg;
    type Timer = Timer;
    type External = ClientRequest;
    type Output = ProtocolEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        if std::mem::take(&mut self.quarantined) {
            self.run(ctx, Input::BootQuarantined);
        } else {
            self.run(ctx, Input::Boot);
        }
    }

    fn on_crash(&mut self) {
        let _ = self.node.step(SimTime::ZERO, Input::Crash);
        // A crash loses the coalescing buffer and everything deferred
        // behind it — none of it was observable, so this is the same as
        // crashing before those steps. The host drops our timers (the
        // flush deadline included).
        self.buffer.drain();
        self.deferred.clear();
        self.flush_armed = false;
        // Lose the in-memory durable state; come back from "disk" via a
        // checked replay. A torn tail is truncated (it was never
        // acknowledged); a quarantined journal is reset to the intact
        // prefix and flagged so the next start takes the rejoin path.
        let replay = self.journal.replay_checked(&self.node.config);
        let class = match &replay.verdict {
            crate::engine::storage::ReplayVerdict::Clean => ReplayClass::Clean,
            crate::engine::storage::ReplayVerdict::TornTail { .. } => ReplayClass::TornTail,
            crate::engine::storage::ReplayVerdict::Quarantined { .. } => ReplayClass::Quarantined,
        };
        if replay.verdict.is_bootable() {
            self.journal.truncate_tail();
        } else {
            self.journal.reset_to(&replay.durable, &self.node.config);
            self.quarantined = true;
        }
        self.node.install_durable(replay.durable);
        self.trace_host(SimTime::ZERO, TraceEvent::JournalReplay { class });
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, wire: WireMsg) {
        self.run(
            ctx,
            Input::Deliver {
                from,
                msg: wire.msg,
                lamport: wire.lamport,
            },
        );
    }

    fn on_call_failed(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, wire: WireMsg) {
        self.run(ctx, Input::CallFailed { to, msg: wire.msg });
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Timer) {
        // Intercept the host-owned flush deadline; it never reaches the
        // engine.
        if matches!(timer, Timer::HostFlush) {
            self.flush_armed = false;
            self.flush(ctx);
            return;
        }
        self.run(ctx, Input::TimerFired(timer));
    }

    fn on_external(&mut self, ctx: &mut Ctx<'_, Self>, request: ClientRequest) {
        self.run(ctx, Input::External(request));
    }

    fn on_idle(&mut self, ctx: &mut Ctx<'_, Self>) {
        // The inbox is empty, so nothing else is coming to fill the
        // batch; waiting out the flush deadline would be pure latency.
        if !self.buffer.is_empty() || !self.deferred.is_empty() {
            self.flush(ctx);
        }
    }
}
