//! Host adapters binding the sans-I/O engine to the `coterie-simnet`
//! substrate (feature `simnet-host`).
//!
//! The adapters are deliberately thin: each simulator callback is
//! translated into one [`Input`], fed to [`ReplicaNode::step`], and the
//! returned [`Effect`]s are replayed onto the simulator's context. All
//! protocol behaviour lives in the engine; nothing here makes decisions.
//!
//! Two hosts are provided:
//!
//! * [`ReplicaNode`] itself implements [`Application`] — durable state
//!   simply lives in the engine struct (and survives simulated crashes
//!   because the engine value survives them). `Persist` effects are
//!   dropped: there is no storage to write to.
//! * [`JournaledNode`] additionally appends every `Persist` delta to a
//!   framed, checksummed [`FramedJournal`] and, on crash, **discards the
//!   engine's durable state and reinstalls it from checked journal
//!   replay** — so a simulation run over `JournaledNode`s proves the
//!   journal alone carries everything the protocol needs across failures.
//!   A quarantined replay (damage inside the committed prefix) makes the
//!   next start a [`Input::BootQuarantined`], which enters the
//!   stale-rejoin protocol instead of booting normally.

use coterie_base::SimTime;
use coterie_quorum::NodeId;
use coterie_simnet::{Application, Ctx};

use crate::engine::io::{Effect, Input};
use crate::engine::storage::FramedJournal;
use crate::msg::{ClientRequest, Msg, ProtocolEvent};
use crate::node::{ReplicaNode, Timer};

/// Replays engine effects onto a simulator context. `Persist` effects are
/// handled by the caller (journaling hosts intercept them first).
fn replay_effects<A>(ctx: &mut Ctx<'_, A>, effects: &[Effect])
where
    A: Application<Msg = Msg, Timer = Timer, Output = ProtocolEvent>,
{
    for effect in effects {
        match effect {
            Effect::Send { to, msg } => ctx.send(*to, msg.clone()),
            Effect::SetTimer { id, delay, timer } => {
                ctx.set_timer_with_id(*id, *delay, timer.clone())
            }
            Effect::CancelTimer(id) => ctx.cancel_timer(*id),
            Effect::Persist(_) => {}
            Effect::Output(event) => ctx.output(event.clone()),
        }
    }
}

impl Application for ReplicaNode {
    type Msg = Msg;
    type Timer = Timer;
    type External = ClientRequest;
    type Output = ProtocolEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        let effects = self.step(ctx.now(), Input::Boot);
        replay_effects(ctx, &effects);
    }

    fn on_crash(&mut self) {
        // Crash produces no effects (it only wipes volatile state); the
        // host drops this node's pending timers itself.
        let _ = self.step(SimTime::ZERO, Input::Crash);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: Msg) {
        let effects = self.step(ctx.now(), Input::Deliver { from, msg });
        replay_effects(ctx, &effects);
    }

    fn on_call_failed(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, msg: Msg) {
        let effects = self.step(ctx.now(), Input::CallFailed { to, msg });
        replay_effects(ctx, &effects);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Timer) {
        let effects = self.step(ctx.now(), Input::TimerFired(timer));
        replay_effects(ctx, &effects);
    }

    fn on_external(&mut self, ctx: &mut Ctx<'_, Self>, request: ClientRequest) {
        let effects = self.step(ctx.now(), Input::External(request));
        replay_effects(ctx, &effects);
    }
}

/// A replica host that treats the [`FramedJournal`] as its only stable
/// storage: durable state is recovered from checked journal replay after
/// every crash rather than trusted from memory.
#[derive(Clone, Debug)]
pub struct JournaledNode {
    /// The engine.
    pub node: ReplicaNode,
    /// The framed journal of persisted deltas.
    pub journal: FramedJournal,
    /// Set when the last crash-replay quarantined the journal; the next
    /// start boots via the stale-rejoin protocol.
    quarantined: bool,
}

impl JournaledNode {
    /// Creates a journaled node with pristine state and an empty journal.
    pub fn new(me: NodeId, config: crate::config::ProtocolConfig) -> Self {
        JournaledNode {
            node: ReplicaNode::new(me, config),
            journal: FramedJournal::new(),
            quarantined: false,
        }
    }

    /// True while a quarantined replay is waiting for its rejoin boot.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    fn run(&mut self, ctx: &mut Ctx<'_, Self>, input: Input) {
        let effects = self.node.step(ctx.now(), input);
        // Write-ahead: journal the delta before any send/output it governs.
        for effect in &effects {
            if let Effect::Persist(delta) = effect {
                self.journal.append_delta(delta);
            }
        }
        replay_effects(ctx, &effects);
    }
}

impl std::ops::Deref for JournaledNode {
    type Target = ReplicaNode;

    fn deref(&self) -> &ReplicaNode {
        &self.node
    }
}

impl Application for JournaledNode {
    type Msg = Msg;
    type Timer = Timer;
    type External = ClientRequest;
    type Output = ProtocolEvent;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self>) {
        if std::mem::take(&mut self.quarantined) {
            self.run(ctx, Input::BootQuarantined);
        } else {
            self.run(ctx, Input::Boot);
        }
    }

    fn on_crash(&mut self) {
        let _ = self.node.step(SimTime::ZERO, Input::Crash);
        // Lose the in-memory durable state; come back from "disk" via a
        // checked replay. A torn tail is truncated (it was never
        // acknowledged); a quarantined journal is reset to the intact
        // prefix and flagged so the next start takes the rejoin path.
        let replay = self.journal.replay_checked(&self.node.config);
        if replay.verdict.is_bootable() {
            self.journal.truncate_tail();
        } else {
            self.journal.reset_to(&replay.durable, &self.node.config);
            self.quarantined = true;
        }
        self.node.install_durable(replay.durable);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: Msg) {
        self.run(ctx, Input::Deliver { from, msg });
    }

    fn on_call_failed(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, msg: Msg) {
        self.run(ctx, Input::CallFailed { to, msg });
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Timer) {
        self.run(ctx, Input::TimerFired(timer));
    }

    fn on_external(&mut self, ctx: &mut Ctx<'_, Self>, request: ClientRequest) {
        self.run(ctx, Input::External(request));
    }
}
