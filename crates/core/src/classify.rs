//! Shared evaluation of permission-phase responses: the core of the paper's
//! `Write` / `HeavyProcedure` / `CheckEpoch` pseudo-code.

use crate::msg::StateTuple;
use coterie_quorum::{CoterieRule, NodeId, NodeSet, PlanCache, QuorumKind, View};
use std::collections::BTreeMap;

/// The digest of a response set.
#[derive(Clone, Debug)]
pub struct Classified {
    /// The epoch list from a response with the maximum epoch number
    /// (`elist_m`).
    pub view: View,
    /// That maximum epoch number (`enumber_m`).
    pub enumber: u64,
    /// All responders.
    pub responders: NodeSet,
    /// `max-version`: greatest version among non-stale responses, if any
    /// non-stale response exists.
    pub max_version: Option<u64>,
    /// `max-dversion`: greatest desired version among stale responses
    /// (0 when no responder is stale).
    pub max_dversion: u64,
    /// `GOOD`: non-stale responders holding `max-version`.
    pub good: Vec<NodeId>,
    /// `STALE`: all other responders.
    pub stale: Vec<NodeId>,
    /// Whether the responders include a quorum of the requested kind over
    /// `view` (`coterie-rule(elist_m, {node_1..node_k})`).
    pub has_quorum: bool,
    /// The good list recorded by the previous write, as reported by the
    /// maximum-epoch responder (safety-threshold candidates, §4.1).
    pub last_good: Vec<NodeId>,
}

impl Classified {
    /// Evaluates `responses` exactly as the paper's pseudo-code does.
    ///
    /// The quorum test runs through `plans`, which memoizes one compiled
    /// [`coterie_quorum::QuorumPlan`] per distinct epoch list — response
    /// classification repeatedly judges quorums over the same (current)
    /// epoch, so the rule's structure is derived once per epoch rather
    /// than once per evaluation.
    pub fn evaluate(
        rule: &dyn CoterieRule,
        plans: &mut PlanCache,
        responses: &BTreeMap<NodeId, StateTuple>,
        kind: QuorumKind,
    ) -> Option<Classified> {
        let max_resp = responses.values().max_by_key(|s| s.enumber)?;
        let view = View::new(max_resp.elist.iter().copied());
        let enumber = max_resp.enumber;
        let last_good = max_resp.last_good.clone();
        let responders = NodeSet::from_iter(responses.keys().copied());
        let max_version = responses
            .values()
            .filter(|s| !s.stale)
            .map(|s| s.version)
            .max();
        let max_dversion = responses
            .values()
            .filter(|s| s.stale)
            .map(|s| s.dversion)
            .max()
            .unwrap_or(0);
        let mut good: Vec<NodeId> = responses
            .values()
            .filter(|s| !s.stale && Some(s.version) == max_version)
            .map(|s| s.node)
            .collect();
        good.sort_unstable();
        let good_set = NodeSet::from_iter(good.iter().copied());
        let mut stale: Vec<NodeId> = responders.difference(good_set).iter().collect();
        stale.sort_unstable();
        let has_quorum = plans
            .plan_for(rule, &view)
            .includes_quorum_with(rule, responders, kind);
        Some(Classified {
            view,
            enumber,
            responders,
            max_version,
            max_dversion,
            good,
            stale,
            has_quorum,
            last_good,
        })
    }

    /// The paper's freshness test: the responses contain a current replica
    /// iff some non-stale version is at least every stale responder's
    /// desired version (`max-version >= max-dversion`).
    pub fn has_current_replica(&self) -> bool {
        match self.max_version {
            Some(v) => v >= self.max_dversion,
            None => false,
        }
    }

    /// The version a committing write will produce (`max-version + 1`).
    pub fn next_version(&self) -> Option<u64> {
        self.max_version.map(|v| v + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_quorum::MajorityCoterie;

    fn resp(
        node: u32,
        version: u64,
        stale: bool,
        dversion: u64,
        enumber: u64,
        elist: &[u32],
    ) -> (NodeId, StateTuple) {
        (
            NodeId(node),
            StateTuple {
                node: NodeId(node),
                version,
                dversion,
                stale,
                elist: elist.iter().map(|&x| NodeId(x)).collect(),
                enumber,
                last_good: Vec::new(),
                wlocked: false,
                prepared_version: None,
            },
        )
    }

    #[test]
    fn empty_responses_yield_none() {
        let rule = MajorityCoterie::new();
        let mut plans = PlanCache::new();
        let map = BTreeMap::new();
        assert!(Classified::evaluate(&rule, &mut plans, &map, QuorumKind::Write).is_none());
    }

    #[test]
    fn picks_max_epoch_view_and_partitions_good_stale() {
        let rule = MajorityCoterie::new();
        let mut plans = PlanCache::new();
        let map: BTreeMap<_, _> = [
            resp(0, 5, false, 0, 2, &[0, 1, 2]),
            resp(1, 5, false, 0, 2, &[0, 1, 2]),
            resp(2, 3, false, 0, 1, &[0, 1, 2, 3]),
        ]
        .into_iter()
        .collect();
        let c = Classified::evaluate(&rule, &mut plans, &map, QuorumKind::Write).unwrap();
        assert_eq!(c.enumber, 2);
        assert_eq!(c.view.members().len(), 3);
        assert_eq!(c.max_version, Some(5));
        assert_eq!(c.good, vec![NodeId(0), NodeId(1)]);
        assert_eq!(c.stale, vec![NodeId(2)]); // lower version: to be marked
        assert!(c.has_quorum);
        assert!(c.has_current_replica());
        assert_eq!(c.next_version(), Some(6));
    }

    #[test]
    fn stale_with_higher_dversion_blocks() {
        let rule = MajorityCoterie::new();
        let mut plans = PlanCache::new();
        let map: BTreeMap<_, _> = [
            resp(0, 4, false, 0, 0, &[0, 1, 2]),
            resp(1, 2, true, 5, 0, &[0, 1, 2]),
        ]
        .into_iter()
        .collect();
        let c = Classified::evaluate(&rule, &mut plans, &map, QuorumKind::Write).unwrap();
        assert_eq!(c.max_version, Some(4));
        assert_eq!(c.max_dversion, 5);
        assert!(!c.has_current_replica());
        assert!(c.has_quorum);
    }

    #[test]
    fn all_stale_has_no_current_replica() {
        let rule = MajorityCoterie::new();
        let mut plans = PlanCache::new();
        let map: BTreeMap<_, _> = [
            resp(0, 4, true, 5, 0, &[0, 1, 2]),
            resp(1, 2, true, 5, 0, &[0, 1, 2]),
        ]
        .into_iter()
        .collect();
        let c = Classified::evaluate(&rule, &mut plans, &map, QuorumKind::Write).unwrap();
        assert_eq!(c.max_version, None);
        assert!(!c.has_current_replica());
        assert!(c.good.is_empty());
        assert_eq!(c.stale.len(), 2);
        assert_eq!(c.next_version(), None);
    }

    #[test]
    fn quorum_judged_over_max_epoch_view() {
        let rule = MajorityCoterie::new();
        let mut plans = PlanCache::new();
        // Responder 0 reports a shrunken epoch {0, 1}; responders {0, 1}
        // are a majority of it even though they are a minority of {0..4}.
        let map: BTreeMap<_, _> = [
            resp(0, 1, false, 0, 3, &[0, 1]),
            resp(1, 1, false, 0, 3, &[0, 1]),
        ]
        .into_iter()
        .collect();
        let c = Classified::evaluate(&rule, &mut plans, &map, QuorumKind::Write).unwrap();
        assert!(c.has_quorum);
        // A single responder of the pair is not a write quorum.
        let map1: BTreeMap<_, _> = [resp(0, 1, false, 0, 3, &[0, 1])].into_iter().collect();
        let c1 = Classified::evaluate(&rule, &mut plans, &map1, QuorumKind::Write).unwrap();
        assert!(!c1.has_quorum);
    }

    #[test]
    fn stale_members_equal_in_version_still_stale() {
        let rule = MajorityCoterie::new();
        let mut plans = PlanCache::new();
        // A stale responder at the max version is still STALE (the paper's
        // GOOD set requires stale_i = 0).
        let map: BTreeMap<_, _> = [
            resp(0, 4, false, 0, 0, &[0, 1]),
            resp(1, 4, true, 4, 0, &[0, 1]),
        ]
        .into_iter()
        .collect();
        let c = Classified::evaluate(&rule, &mut plans, &map, QuorumKind::Write).unwrap();
        assert_eq!(c.good, vec![NodeId(0)]);
        assert_eq!(c.stale, vec![NodeId(1)]);
        assert!(c.has_current_replica());
    }
}
