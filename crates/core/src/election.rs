//! Election of the epoch-check initiator.
//!
//! §4.3: "A simple solution is to elect a site responsible for initiating
//! all epoch checkings. A new election would be started by any node
//! noticing that epoch checking has not run for a while. (See \[7\] for
//! election protocols.)"
//!
//! Two policies are provided:
//!
//! * [`InitiatorPolicy::RankStagger`] (default) — election-free: every node
//!   ticks with a period proportional to its rank in its epoch list and
//!   initiates only when no recent check was observed. The lowest live
//!   member wins in steady state; successors take over by timeout.
//! * [`InitiatorPolicy::Bully`] — Garcia-Molina's bully algorithm \[7\]: a
//!   node that notices epoch-check silence challenges all higher-named
//!   nodes; if none answers it declares itself coordinator and runs the
//!   periodic checks; any `Alive` answer defers to the higher node. The
//!   *highest* live node ends up coordinating (the classic bully winner),
//!   and a recovering higher node bullies the role back.

use crate::config::Mode;
use crate::msg::{Msg, OpId};
use crate::node::{NodeCtx, ReplicaNode, Timer};
use coterie_base::TimerId;
use coterie_quorum::NodeId;

/// How the epoch-check initiator is chosen.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum InitiatorPolicy {
    /// Election-free rank-staggered ticks (documented substitution).
    #[default]
    RankStagger,
    /// Garcia-Molina's bully election \[7\].
    Bully,
}

/// Volatile bully-election state.
#[derive(Clone, Debug, Default)]
pub struct ElectionState {
    /// Who we currently believe coordinates epoch checks.
    pub leader: Option<NodeId>,
    /// An election we started: the challenge round id and whether any
    /// higher node answered.
    pub in_flight: Option<ElectionRound>,
}

/// One outstanding challenge round.
#[derive(Clone, Debug)]
pub struct ElectionRound {
    /// Round identifier (an op id for uniqueness).
    pub round: OpId,
    /// True once some higher node replied `Alive`.
    pub deferred: bool,
    /// Timeout for answers (and then for the Coordinator announcement).
    pub timer: TimerId,
}

impl ReplicaNode {
    /// Whether this node should initiate an epoch check right now, under
    /// the configured policy. Called from the periodic tick.
    pub(crate) fn should_initiate_check(&self) -> bool {
        match self.config.initiator {
            InitiatorPolicy::RankStagger => true, // tick cadence does the arbitration
            InitiatorPolicy::Bully => self.vol.election.leader == Some(self.me),
        }
    }

    /// Bully: notice silence, challenge the higher-ups.
    pub(crate) fn maybe_start_election(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.config.initiator != InitiatorPolicy::Bully {
            return;
        }
        if self.vol.election.in_flight.is_some() {
            return;
        }
        let higher: Vec<NodeId> = self
            .all_nodes()
            .into_iter()
            .filter(|n| n.0 > self.me.0)
            .collect();
        let round = self.next_op();
        if higher.is_empty() {
            // Highest name: win immediately.
            self.become_leader(ctx);
            return;
        }
        let timeout = self.config.collect_timeout * 2;
        let timer = ctx.set_timer(timeout, Timer::ElectionTimeout { round });
        self.vol.election.in_flight = Some(ElectionRound {
            round,
            deferred: false,
            timer,
        });
        for n in higher {
            ctx.send(n, Msg::Election { round });
        }
    }

    /// Bully: a lower node challenged us — answer and take over.
    pub(crate) fn srv_election(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, round: OpId) {
        if self.config.initiator != InitiatorPolicy::Bully {
            return;
        }
        ctx.send(from, Msg::ElectionAlive { round });
        // A challenge means the current coordination is in doubt: assert
        // ourselves (or provoke nodes above us) unless already running.
        if self.vol.election.leader != Some(self.me) {
            self.maybe_start_election(ctx);
        }
    }

    /// Bully: a higher node is alive — defer to it.
    pub(crate) fn on_election_alive(&mut self, ctx: &mut NodeCtx<'_>, _from: NodeId, round: OpId) {
        if let Some(rd) = &mut self.vol.election.in_flight {
            if rd.round == round {
                rd.deferred = true;
                // Wait (a fresh timeout) for the Coordinator announcement.
                ctx.cancel_timer(rd.timer);
                let timeout = self.config.collect_timeout * 6;
                rd.timer = ctx.set_timer(timeout, Timer::ElectionTimeout { round });
            }
        }
    }

    /// Bully: a coordinator announced itself.
    pub(crate) fn srv_coordinator(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId) {
        if self.config.initiator != InitiatorPolicy::Bully {
            return;
        }
        if from.0 < self.me.0 {
            // A lower node thinks it leads; bully it back.
            self.vol.election.leader = None;
            self.maybe_start_election(ctx);
            return;
        }
        if let Some(rd) = self.vol.election.in_flight.take() {
            ctx.cancel_timer(rd.timer);
        }
        self.vol.election.leader = Some(from);
    }

    /// Bully: the answer (or announcement) window elapsed.
    pub(crate) fn on_election_timeout(&mut self, ctx: &mut NodeCtx<'_>, round: OpId) {
        let Some(rd) = &self.vol.election.in_flight else {
            return;
        };
        if rd.round != round {
            return;
        }
        let deferred = rd.deferred;
        self.vol.election.in_flight = None;
        if deferred {
            // A higher node answered but never announced: re-run.
            self.maybe_start_election(ctx);
        } else {
            self.become_leader(ctx);
        }
    }

    fn become_leader(&mut self, ctx: &mut NodeCtx<'_>) {
        self.vol.election.leader = Some(self.me);
        for n in self.all_nodes() {
            if n != self.me {
                ctx.send(n, Msg::Coordinator);
            }
        }
        // Start coordinating immediately.
        if matches!(self.config.mode, Mode::Dynamic { .. }) && !self.vol.epoch_check_active {
            self.start_epoch_check(ctx);
        }
    }
}
