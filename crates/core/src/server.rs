//! Replica-side (participant) handlers: permission requests, two-phase
//! commit, decision recovery, and read fetches.

use crate::engine::trace::TraceEvent;
use crate::msg::{Action, Msg, OpId, StateTuple};
use crate::node::{NodeCtx, ReplicaNode};
use crate::store::LogEntry;
use coterie_base::SimDuration;
use coterie_quorum::{NodeId, NodeSet};

impl ReplicaNode {
    /// This replica's state tuple (the paper's
    /// `(node, version, dversion, stale, elist, enumber)`).
    pub fn state_tuple(&self) -> StateTuple {
        StateTuple {
            node: self.me,
            version: self.durable.version,
            dversion: self.durable.dversion,
            stale: self.durable.stale,
            elist: self.durable.elist.clone(),
            enumber: self.durable.enumber,
            last_good: self.durable.last_good.clone(),
            wlocked: self.vol.lock.exclusive_holder().is_some(),
            prepared_version: self.durable.prepared.as_ref().map(|(_, a)| match a {
                Action::DoUpdate { new_version, .. } => *new_version,
                Action::MarkStale { desired_version }
                | Action::NewEpoch {
                    desired_version, ..
                } => *desired_version,
            }),
        }
    }

    /// `write-request`: "each node that receives the write-request obtains
    /// the lock for its replica and responds with its state". No-wait: a
    /// busy replica answers `granted: false` instead of queueing.
    pub(crate) fn srv_write_req(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, op: OpId) {
        // Rejoin limbo: refuse so our amnesiac tuple never enters the
        // coordinator's classification (refused responders are excluded) —
        // a quorum whose only intersection with a lost write's quorum is
        // this replica would otherwise commit a duplicate version or serve
        // a stale read. The coordinator retries around us like any busy
        // replica.
        let granted = !self.in_rejoin_limbo()
            && matches!(
                self.vol.lock.try_exclusive(op),
                crate::locks::LockGrant::Granted
            );
        if granted {
            ctx.trace(TraceEvent::LockAcquire {
                op,
                exclusive: true,
            });
            self.arm_lock_lease(ctx, op);
        }
        let state = self.state_tuple();
        ctx.send(from, Msg::StateResp { op, granted, state });
    }

    /// Read permission: shared lock.
    pub(crate) fn srv_read_req(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, op: OpId) {
        // Same limbo refusal as writes — reads are the sharper hazard:
        // they have no 2PC vote, so the vote-no fence never engages and a
        // granted amnesiac tuple would flow straight into the freshness
        // test.
        let granted = !self.in_rejoin_limbo()
            && matches!(
                self.vol.lock.try_shared(op),
                crate::locks::LockGrant::Granted
            );
        if granted {
            ctx.trace(TraceEvent::LockAcquire {
                op,
                exclusive: false,
            });
            self.arm_lock_lease(ctx, op);
        }
        let state = self.state_tuple();
        ctx.send(from, Msg::StateResp { op, granted, state });
    }

    /// `epoch-checking-request`: state response without locking (§4.3 —
    /// epoch checking "does not interfere with reads and writes in the
    /// absence of failures").
    pub(crate) fn srv_epoch_check_req(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, op: OpId) {
        self.vol.last_epoch_check_seen = Some(ctx.now());
        // Rejoin limbo: stay silent, like a down node. Answering would
        // either poison the epoch install with an amnesiac tuple or (since
        // limbo votes no on every prepare) abort the epoch change
        // outright; silence lets the coordinator shrink the epoch around
        // us until the handshake completes.
        if self.in_rejoin_limbo() {
            return;
        }
        let state = self.state_tuple();
        ctx.send(
            from,
            Msg::StateResp {
                op,
                granted: true,
                state,
            },
        );
    }

    /// 2PC prepare. Votes yes only when the action is applicable and the
    /// replica lock is held by the requesting operation; the prepared
    /// action is recorded durably (textbook atomic commit).
    pub(crate) fn srv_prepare(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: NodeId,
        op: OpId,
        action: Action,
        extra: bool,
    ) {
        // Duplicate Prepare for an already-prepared op: re-vote yes.
        if let Some((prep_op, _)) = &self.durable.prepared {
            let yes = *prep_op == op;
            ctx.trace(TraceEvent::VoteCast { op, yes });
            ctx.send(from, Msg::Vote { op, yes });
            return;
        }
        // Rejoin limbo after a quarantined journal: this replica's state
        // must not anchor new transactions until its desired version is
        // known (in particular, a write-all-current base shipment would
        // clear the stale flag and skip the rejoin safety net).
        if self.in_rejoin_limbo() {
            ctx.trace(TraceEvent::VoteCast { op, yes: false });
            ctx.send(from, Msg::Vote { op, yes: false });
            return;
        }
        let yes = match &action {
            Action::DoUpdate {
                writes,
                new_version,
                base,
                ..
            } => {
                // A batch of k writes advances the version by exactly k —
                // either from our own version or from the reconciliation
                // base being shipped to us. An empty batch is malformed.
                let batch = writes.len() as u64;
                let version_ok = !writes.is_empty()
                    && match base {
                        None => !self.durable.stale && *new_version == self.durable.version + batch,
                        Some((_, base_version)) => {
                            *new_version == base_version + batch
                                && *base_version >= self.durable.version
                                && *base_version >= self.durable.dversion
                        }
                    };
                // A required participant must still hold the lock it was
                // granted in the permission phase: if the lease expired
                // (or a crash forgot the grant), re-acquiring here would
                // let the write commit past a rejoin poll that saw this
                // replica unlocked — vote no instead and let the
                // coordinator retry. Only a safety-threshold *extra*
                // replica, which was never polled ("no permission ... is
                // needed"), may acquire the lock at prepare time, voting
                // no if busy.
                let locked = if self.vol.lock.held_exclusively_by(op) {
                    true
                } else if extra
                    && matches!(
                        self.vol.lock.try_exclusive(op),
                        crate::locks::LockGrant::Granted
                    )
                {
                    ctx.trace(TraceEvent::LockAcquire {
                        op,
                        exclusive: true,
                    });
                    self.arm_lock_lease(ctx, op);
                    true
                } else {
                    false
                };
                locked && version_ok
            }
            Action::MarkStale { .. } => self.vol.lock.held_exclusively_by(op),
            Action::NewEpoch { enumber, list, .. } => {
                // Stale-numbered or misdirected epoch changes are refused
                // outright.
                if *enumber <= self.durable.enumber || !list.contains(&self.me) {
                    ctx.trace(TraceEvent::VoteCast { op, yes: false });
                    ctx.send(from, Msg::Vote { op, yes: false });
                    return;
                }
                // Epoch checks do not lock during the poll; the lock is
                // taken here, at prepare time. Unlike reads and writes,
                // an epoch prepare may *wait* for the lock (see
                // `Volatile::pending_epoch_prepare`) so that epoch changes
                // cannot starve under client load.
                let lockable = matches!(
                    self.vol.lock.try_exclusive(op),
                    crate::locks::LockGrant::Granted
                );
                if !lockable {
                    // Queue (keeping only the newest epoch number); the
                    // displaced prepare is answered "no".
                    if let Some((old_op, old_from, old_action)) =
                        self.vol.pending_epoch_prepare.take()
                    {
                        let old_enumber = match &old_action {
                            Action::NewEpoch { enumber, .. } => *enumber,
                            _ => 0,
                        };
                        if old_enumber >= *enumber {
                            self.vol.pending_epoch_prepare = Some((old_op, old_from, old_action));
                            ctx.trace(TraceEvent::VoteCast { op, yes: false });
                            ctx.send(from, Msg::Vote { op, yes: false });
                            return;
                        }
                        ctx.trace(TraceEvent::VoteCast {
                            op: old_op,
                            yes: false,
                        });
                        ctx.send(
                            old_from,
                            Msg::Vote {
                                op: old_op,
                                yes: false,
                            },
                        );
                    }
                    self.vol.pending_epoch_prepare = Some((op, from, action));
                    return;
                }
                ctx.trace(TraceEvent::LockAcquire {
                    op,
                    exclusive: true,
                });
                self.arm_lock_lease(ctx, op);
                true
            }
        };
        if yes {
            self.durable.prepared = Some((op, action));
            // Chase the outcome if the coordinator goes quiet (it may have
            // aborted before our delayed vote arrived).
            self.arm_decision_retry(ctx, op);
        } else if matches!(action, Action::NewEpoch { .. } | Action::DoUpdate { .. })
            && self.vol.lock.held_exclusively_by(op)
            && self.durable.prepared.is_none()
        {
            // The prepare acquired (or held) the lock but failed
            // validation; don't leave the replica locked until the lease.
            self.release_lock(ctx, op);
        }
        ctx.trace(TraceEvent::VoteCast { op, yes });
        ctx.send(from, Msg::Vote { op, yes });
    }

    /// 2PC decision from the coordinator.
    pub(crate) fn srv_decision(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        _from: NodeId,
        op: OpId,
        commit: bool,
        chain: Option<OpId>,
    ) {
        // An abort may arrive while the prepare is still queued for the
        // lock: drop the queued prepare.
        if !commit
            && self
                .vol
                .pending_epoch_prepare
                .as_ref()
                .is_some_and(|(p, _, _)| *p == op)
        {
            self.vol.pending_epoch_prepare = None;
        }
        ctx.trace(TraceEvent::DecisionTaken { op, commit });
        let applied = match self.durable.prepared.take() {
            Some((p, action)) if p == op => {
                if commit {
                    self.apply_action(ctx, &action);
                }
                true
            }
            other => {
                self.durable.prepared = other;
                false
            }
        };
        // Pipelined 2PC handoff: a committing decision may name the
        // chained round whose prepare is right behind it; move the
        // exclusive lock (and its lease) to that round instead of opening
        // an unlocked window another operation could slip into. Only taken
        // when this node actually applied `op` — a stale duplicate, or a
        // node whose lock already moved on, falls through to the
        // idempotent release.
        if commit && applied {
            if let Some(next) = chain {
                if self.vol.lock.transfer_exclusive(op, next) {
                    ctx.trace(TraceEvent::LockHandoff {
                        from_op: op,
                        to_op: next,
                    });
                    if let Some(timer) = self.vol.lock_leases.remove(&op) {
                        ctx.cancel_timer(timer);
                    }
                    self.arm_lock_lease(ctx, next);
                    return;
                }
            }
        }
        // Idempotent: also frees the lock of a participant that voted no
        // (which never prepared) instead of waiting out the lease.
        self.release_lock(ctx, op);
    }

    /// A recovered participant asks for the outcome of an in-doubt op this
    /// node coordinated. Presumed abort: if no commit decision is on disk
    /// and the op is not still in flight, it aborted.
    pub(crate) fn srv_decision_query(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, op: OpId) {
        if self.vol.writes.contains_key(&op) || self.vol.epochs.contains_key(&op) {
            return; // still deciding; the participant will re-query
        }
        // Quarantine amnesia fence: a decision record for an op behind the
        // fence may have been lost with the corrupt journal suffix, so
        // "not on disk" does not mean "aborted". Presuming abort here
        // could contradict a commit another participant already applied —
        // stay silent and leave the participant blocked (textbook 2PC
        // blocking; the cost of losing the coordinator's log).
        if op.seq <= self.durable.quarantine_fence && !self.durable.decisions.contains_key(&op) {
            return;
        }
        let commit = self.durable.decisions.get(&op).copied().unwrap_or(false);
        // No chain on the recovery path: whatever round was chained at
        // decision time has long since prepared or aborted on its own.
        ctx.send(
            from,
            Msg::Decision {
                op,
                commit,
                chain: None,
            },
        );
    }

    /// Periodic re-query for an in-doubt prepared transaction. Exactly one
    /// retry chain exists per op (see `arm_decision_retry`).
    pub(crate) fn on_decision_retry(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        self.vol.decision_retry_armed.remove(&op);
        let still_in_doubt = self
            .durable
            .prepared
            .as_ref()
            .is_some_and(|(p, _)| *p == op);
        if !still_in_doubt {
            return;
        }
        if op.node == self.me {
            // We coordinated this op ourselves and then crashed: resolve
            // directly from the durable decision log.
            let commit = self.durable.decisions.get(&op).copied().unwrap_or(false);
            if let Some((_, action)) = self.durable.prepared.take() {
                if commit {
                    self.apply_action(ctx, &action);
                }
            }
            self.release_lock(ctx, op);
            return;
        }
        ctx.send(op.node, Msg::DecisionQuery { op });
        self.arm_decision_retry(ctx, op);
    }

    /// Read phase 2: return the object (the shared lock taken in the
    /// permission phase guarantees it has not changed; after a crash the
    /// returned version tells the coordinator the truth either way).
    pub(crate) fn srv_fetch_req(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, op: OpId) {
        ctx.send(
            from,
            Msg::FetchResp {
                op,
                version: self.durable.version,
                pages: self.durable.object.snapshot(),
            },
        );
    }

    /// Applies a committed 2PC action to the durable state and triggers
    /// follow-up work (update propagation, epoch bookkeeping).
    pub(crate) fn apply_action(&mut self, ctx: &mut NodeCtx<'_>, action: &Action) {
        match action {
            Action::DoUpdate {
                writes,
                new_version,
                stale,
                base,
                good,
            } => {
                self.durable.last_good = good.clone();
                // Apply the reconciliation base first if one was shipped
                // (write-all-current baseline; see `write.rs`).
                if let Some((pages, base_version)) = base {
                    self.durable.object.restore(pages.clone());
                    self.durable.version = *base_version;
                    self.durable.log.clear();
                    self.durable.stale = false;
                    self.durable.dversion = 0;
                }
                // Each batched write is its own version and its own log
                // entry, so incremental propagation and the 1SR checker see
                // the same per-version history batching produced.
                debug_assert!(!writes.is_empty(), "prepare refuses empty batches");
                let first_version = new_version + 1 - writes.len() as u64;
                for (i, write) in writes.iter().enumerate() {
                    self.durable.object.apply(write);
                    self.durable.log.push(LogEntry {
                        version: first_version + i as u64,
                        write: write.clone(),
                    });
                }
                self.durable.version = *new_version;
                if !stale.is_empty() {
                    let targets =
                        NodeSet::from_iter(stale.iter().copied().filter(|&n| n != self.me));
                    self.start_propagation(ctx, targets);
                }
            }
            Action::MarkStale { desired_version } => {
                self.durable.stale = true;
                self.durable.dversion = self.durable.dversion.max(*desired_version);
            }
            Action::NewEpoch {
                list,
                enumber,
                good,
                stale,
                desired_version,
            } => {
                self.durable.elist = list.clone();
                self.durable.enumber = *enumber;
                ctx.trace(TraceEvent::EpochInstalled { enumber: *enumber });
                if stale.contains(&self.me) {
                    self.durable.stale = true;
                    self.durable.dversion = self.durable.dversion.max(*desired_version);
                }
                ctx.output(crate::msg::ProtocolEvent::EpochInstalled {
                    enumber: *enumber,
                    members: list.clone(),
                });
                if good.contains(&self.me) && !stale.is_empty() {
                    let targets =
                        NodeSet::from_iter(stale.iter().copied().filter(|&n| n != self.me));
                    self.start_propagation(ctx, targets);
                }
            }
        }
    }

    /// Grants a queued epoch prepare once the replica lock frees up.
    pub(crate) fn grant_pending_epoch_prepare(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.vol.lock.is_locked() || self.durable.prepared.is_some() {
            return;
        }
        if let Some((op, from, action)) = self.vol.pending_epoch_prepare.take() {
            // Only epoch prepares queue, and those always lock at prepare
            // time (their poll is lock-free), hence `extra: true`.
            self.srv_prepare(ctx, from, op, action, true);
        }
    }

    /// A small per-node deterministic jitter used to stagger periodic work.
    pub(crate) fn jitter(&self, ctx: &mut NodeCtx<'_>, max: SimDuration) -> SimDuration {
        SimDuration::from_micros(ctx.rand_below(max.micros().max(1)))
    }
}
