//! The unified metrics registry: `BTreeMap`-keyed counters plus
//! fixed-bucket latency histograms, std-only and deterministic.
//!
//! Every counter the stack used to scatter across `NodeStats` fields and
//! harness-side accumulators lives here, keyed by the `&'static str`
//! constants in [`keys`]. Histograms use log-linear buckets (16 sub-buckets
//! per octave, values below 16 exact), so quantiles carry at most ~6%
//! relative error while the accumulator stays fixed-size — the same
//! HDR-style layout real metrics systems use. `min`, `max`, `sum`, and
//! `count` are exact.
//!
//! The registry is snapshot-serializable without serde: [`to_json`]
//! hand-rolls a deterministic JSON object (BTreeMap iteration is key
//! order), which serde-equipped crates re-parse for embedding in their own
//! artifacts. It is exposed uniformly: per node via
//! [`NodeStats`](crate::node::NodeStats), per cluster via
//! [`StepDriver::metrics`](super::driver::StepDriver::metrics), and by the
//! simnet/threaded hosts via `JournaledNode::metrics`.
//!
//! [`to_json`]: MetricsRegistry::to_json

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Counter and histogram key constants (plus per-class key functions), so
/// every increment site and every reader agree on spelling.
pub mod keys {
    use crate::msg::MsgClass;

    /// Committed writes coordinated by this node.
    pub const WRITES_OK: &str = "writes_ok";
    /// Failed writes coordinated by this node (after retries).
    pub const WRITES_FAILED: &str = "writes_failed";
    /// Completed reads coordinated by this node.
    pub const READS_OK: &str = "reads_ok";
    /// Failed reads coordinated by this node.
    pub const READS_FAILED: &str = "reads_failed";
    /// Client-level retries due to contention.
    pub const RETRIES: &str = "retries";
    /// Times the heavy procedure ran.
    pub const HEAVY_RUNS: &str = "heavy_runs";
    /// Write rounds opened directly in the voting phase by a pipelined
    /// lock handoff.
    pub const CHAINED_ROUNDS: &str = "chained_rounds";
    /// Client writes that committed sharing a round with another write.
    pub const BATCHED_WRITES: &str = "batched_writes";
    /// Replicas written or marked per committed write (sum).
    pub const REPLICAS_TOUCHED_SUM: &str = "replicas_touched_sum";
    /// Replicas marked stale (sum over committed writes).
    pub const MARKED_STALE_SUM: &str = "marked_stale_sum";
    /// Synchronous reconciliations (write-all-current baseline only).
    pub const SYNC_RECONCILIATIONS: &str = "sync_reconciliations";
    /// Propagations completed with this node as the source.
    pub const PROPAGATIONS_DONE: &str = "propagations_done";
    /// Epoch changes committed with this node as the coordinator.
    pub const EPOCH_CHANGES: &str = "epoch_changes";
    /// Journal flushes (header commits; on real storage, fsyncs).
    pub const JOURNAL_FLUSHES: &str = "journal_flushes";
    /// Histogram: wall-clock journal flush latency, microseconds
    /// (threaded hosts only — simulated hosts have no wall clock).
    pub const JOURNAL_FLUSH_US: &str = "journal_flush_us";
    /// Histogram: operation completion latency, microseconds.
    pub const OP_LATENCY_US: &str = "op_latency_us";
    /// Histogram: write completion latency, microseconds.
    pub const WRITE_LATENCY_US: &str = "write_latency_us";

    /// Per-class key for messages received.
    pub fn msgs_in(class: MsgClass) -> &'static str {
        match class {
            MsgClass::Permission => "msgs_in_permission",
            MsgClass::Commit => "msgs_in_commit",
            MsgClass::Fetch => "msgs_in_fetch",
            MsgClass::Propagation => "msgs_in_propagation",
            MsgClass::EpochCheck => "msgs_in_epoch_check",
        }
    }

    /// Per-class key for `CallFailed` bounces.
    pub fn msgs_bounced(class: MsgClass) -> &'static str {
        match class {
            MsgClass::Permission => "msgs_bounced_permission",
            MsgClass::Commit => "msgs_bounced_commit",
            MsgClass::Fetch => "msgs_bounced_fetch",
            MsgClass::Propagation => "msgs_bounced_propagation",
            MsgClass::EpochCheck => "msgs_bounced_epoch_check",
        }
    }
}

/// Values below this are their own (exact) bucket.
const LINEAR: u64 = 16;
/// Sub-buckets per octave above the linear range.
const SUBS: usize = 16;

/// A fixed-layout log-linear histogram (HDR-lite): exact below 16, then 16
/// sub-buckets per power of two, giving at most `1/16` relative error on
/// quantiles. `sum`/`count`/`min`/`max` are exact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Bucket occupancy, lazily grown to the highest bucket seen.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        // v >= 16, so the leading-one position is >= 4 and the shift below
        // never underflows.
        let octave = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (octave - 4)) & 0xF) as usize;
        LINEAR as usize + (octave - 4) * SUBS + sub
    }
}

/// Upper bound (inclusive) of bucket `idx` — the quantile representative.
fn bucket_upper(idx: usize) -> u64 {
    if idx < LINEAR as usize {
        idx as u64
    } else {
        let group = (idx - LINEAR as usize) / SUBS;
        let sub = ((idx - LINEAR as usize) % SUBS) as u64;
        let octave = group + 4;
        let width = 1u64 << (octave - 4);
        (LINEAR + sub) * width + width - 1
    }
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot = slot.saturating_add(1);
        }
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (0..=1). Exact at the ends (`min`/`max`); interior
    /// quantiles return the covering bucket's upper bound, clamped into
    /// `[min, max]` — at most ~6% high.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &c) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot = slot.saturating_add(c);
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// The unified registry: named counters and named histograms, both in
/// `BTreeMap`s so iteration (and therefore serialization) is canonical.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `key` by 1.
    pub fn inc(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Adds `n` to counter `key`.
    pub fn add(&mut self, key: &'static str, n: u64) {
        let slot = self.counters.entry(key).or_insert(0);
        *slot = slot.saturating_add(n);
    }

    /// Reads counter `key` (0 if never written).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// All counters, in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Records `value` into histogram `key`.
    pub fn observe(&mut self, key: &'static str, value: u64) {
        self.hists.entry(key).or_default().record(value);
    }

    /// Reads histogram `key`, if any value was ever recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.hists.get(key)
    }

    /// All histograms, in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(k, v)| (*k, v))
    }

    /// Folds `other` into `self`: counters add, histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k).or_default().merge(h);
        }
    }

    /// Deterministic JSON snapshot:
    /// `{"counters":{...},"histograms":{"k":{"count":..,"sum":..,"min":..,
    /// "max":..,"mean":..,"p50":..,"p90":..,"p99":..}}}`.
    /// Keys appear in `BTreeMap` order, so equal registries render to equal
    /// bytes.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{k}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_round_trip_within_tolerance() {
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 65_535, 1 << 40] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper {upper} < value {v}");
            // Relative error of the representative is bounded by 1/16.
            assert!(
                (upper - v) as f64 <= (v as f64 / 16.0).max(1.0),
                "bucket too wide at {v}: upper {upper}"
            );
        }
    }

    #[test]
    fn quantiles_are_exact_at_ends_and_close_inside() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
        let p50 = h.quantile(0.5) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.07, "p50 = {p50}");
        let p99 = h.quantile(0.99) as f64;
        assert!((p99 - 990.0).abs() / 990.0 < 0.07, "p99 = {p99}");
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut all = Histogram::default();
        for v in [3u64, 17, 170, 1_700] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 50, 500_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn registry_counters_and_json_are_deterministic() {
        let mut r = MetricsRegistry::new();
        r.inc(keys::WRITES_OK);
        r.add(keys::WRITES_OK, 2);
        r.inc(keys::RETRIES);
        r.observe(keys::OP_LATENCY_US, 100);
        r.observe(keys::OP_LATENCY_US, 200);
        assert_eq!(r.counter(keys::WRITES_OK), 3);
        assert_eq!(r.counter("missing"), 0);
        let mut other = MetricsRegistry::new();
        other.inc(keys::WRITES_OK);
        other.observe(keys::OP_LATENCY_US, 300);
        r.merge(&other);
        assert_eq!(r.counter(keys::WRITES_OK), 4);
        let h = r.histogram(keys::OP_LATENCY_US).expect("histogram exists");
        assert_eq!(h.count(), 3);
        let json = r.to_json();
        assert_eq!(json, r.clone().to_json());
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"writes_ok\":4"));
        assert!(json.contains("\"op_latency_us\":{\"count\":3"));
    }
}
