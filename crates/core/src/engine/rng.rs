//! The engine-owned deterministic random number generator.
//!
//! Sans-I/O discipline forbids the protocol from reading an ambient
//! entropy source, but the paper's protocol wants jitter (retry backoff,
//! propagation staggering). The resolution is standard: the PRNG state is
//! *part of the state machine*. Same seed + same input sequence ⇒ same
//! draws ⇒ same effects.

/// A SplitMix64 generator: tiny, fast, and good enough for jitter.
///
/// (Not cryptographic; nothing in the protocol needs unpredictability,
/// only de-synchronization of replicas.)
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Draws a uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draws a uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Modulo bias is negligible for jitter purposes.
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        let mut c = Rng64::new(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng64::new(42);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        assert_eq!(r.below(1), 0);
    }
}
