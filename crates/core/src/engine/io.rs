//! The engine's event vocabulary: [`Input`]s consumed and [`Effect`]s emitted.
//!
//! Every interaction between a replica and the outside world is one of the
//! variants below. There is no other channel: hosts translate their
//! substrate (simulated RPCs, real sockets, crash injection, client calls)
//! into `Input`s, and translate the returned `Effect`s back.

use coterie_base::{SimDuration, TimerId};
use coterie_quorum::NodeId;

use crate::msg::{ClientRequest, Msg, ProtocolEvent};
use crate::node::Timer;

use super::storage::DurableDelta;

/// An event delivered to the replica state machine.
#[derive(Clone, Debug)]
pub enum Input {
    /// The node (re)starts: recover from durable state, arm background
    /// timers. Fired once before any other input, and again after `Crash`
    /// when the node comes back up.
    Boot,
    /// The node restarts after its host *quarantined* the journal: replay
    /// found damage inside the acknowledged record prefix (see
    /// [`ReplayVerdict::Quarantined`](super::storage::ReplayVerdict)).
    /// The installed durable state is the longest intact prefix and must
    /// not be trusted as current: the engine marks itself stale, fences
    /// possibly-lost 2PC decisions, and runs the stale-rejoin protocol
    /// ([`crate::rejoin`]) instead of booting normally.
    BootQuarantined,
    /// The node fail-stops: all volatile state is lost; durable state (and
    /// only durable state) survives into the next `Boot`.
    Crash,
    /// A protocol message arrived from a peer replica.
    Deliver {
        /// The sending replica.
        from: NodeId,
        /// The message body.
        msg: Msg,
        /// The sender's Lamport stamp, carried on the wire from the
        /// originating [`Effect::Send`]; the receiver merges it into its
        /// own causal counter (`max(local, remote) + 1`). Purely
        /// observational: it orders trace records and never feeds protocol
        /// decisions, durable state, or digests.
        lamport: u64,
    },
    /// A previously issued [`Effect::Send`] definitively failed: the callee
    /// is down or unreachable. Carries the original message so the engine
    /// can tell *which* RPC failed (fail-stop model — no byzantine
    /// ambiguity).
    CallFailed {
        /// The unreachable callee.
        to: NodeId,
        /// The message that could not be delivered.
        msg: Msg,
    },
    /// A timer set via [`Effect::SetTimer`] fired (and was not canceled).
    TimerFired(Timer),
    /// A client submitted an operation at this replica.
    External(ClientRequest),
}

/// An action the replica state machine asks its host to perform.
#[derive(Clone, Debug)]
pub enum Effect {
    /// Deliver `msg` to replica `to`; if `to` is down or unreachable, feed
    /// back [`Input::CallFailed`].
    Send {
        /// Destination replica.
        to: NodeId,
        /// Message body.
        msg: Msg,
        /// The sender's Lamport stamp at send time (ticked per send).
        /// Hosts carry it with the message and hand it back through
        /// [`Input::Deliver`]; it is trace metadata, not protocol state.
        lamport: u64,
    },
    /// Arm timer `id` to fire [`Input::TimerFired`]`(timer)` after `delay`,
    /// unless canceled first. Ids are unique per node for the lifetime of
    /// the engine (monotonic counter), so hosts key pending timers by
    /// `(NodeId, TimerId)`.
    SetTimer {
        /// Node-unique timer id (for cancellation).
        id: TimerId,
        /// Delay until firing.
        delay: SimDuration,
        /// Payload handed back on expiry.
        timer: Timer,
    },
    /// Disarm a pending timer. Canceling an already-fired or unknown id is
    /// a no-op.
    CancelTimer(TimerId),
    /// Apply `delta` to stable storage **before** acting on any effect that
    /// follows it. The engine emits at most one `Persist` per step, always
    /// first, so a host that journals the delta and then applies the rest
    /// preserves the protocol's write-ahead discipline (2PC prepare records
    /// and epoch installations hit disk before the acks that reveal them).
    /// Boxed: a delta carries whole-object snapshots and epoch lists, far
    /// larger than any other variant, and effects move through `Vec`s.
    Persist(Box<DurableDelta>),
    /// Surface a client-visible protocol event (operation completion,
    /// epoch installation, ...).
    Output(ProtocolEvent),
}

impl Effect {
    /// The destination node, for `Send` effects.
    pub fn send_to(&self) -> Option<NodeId> {
        match self {
            Effect::Send { to, .. } => Some(*to),
            Effect::SetTimer { .. }
            | Effect::CancelTimer(_)
            | Effect::Persist(_)
            | Effect::Output(_) => None,
        }
    }

    /// True if this effect is a `Persist`.
    pub fn is_persist(&self) -> bool {
        matches!(self, Effect::Persist(_))
    }
}
