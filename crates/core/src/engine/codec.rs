//! Deterministic byte codec for [`DurableDelta`] — the payload format of
//! the framed journal (format v2, see DESIGN.md §9).
//!
//! Every field is little-endian and self-delimiting: scalars are fixed
//! width, `Option`s carry a one-byte tag, and variable-length data is
//! length-prefixed with a `u32` count. Encoding is a pure function of the
//! delta — two engines that produce equal deltas produce byte-identical
//! records, which is what lets the determinism suite compare journals
//! across processes. Decoding never panics: every malformed input maps to
//! a [`DecodeError`] carrying the byte offset and a description, which the
//! framed replay turns into a quarantine verdict.

use bytes::Bytes;
use coterie_quorum::NodeId;

use crate::msg::{Action, OpId};
use crate::store::{LogEntry, PageId, PartialWrite, WriteLog};

use super::storage::DurableDelta;

/// A malformed journal payload: where decoding stopped and why.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset within the payload at which the error was detected.
    pub offset: usize,
    /// What the decoder expected there.
    pub what: &'static str,
}

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`) — the checksum the
/// framed journal stores per record. Hand-rolled so the engine stays free
/// of external dependencies.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        // lint:allow(arith): idx is masked to 0..=255, always in bounds
        crc = (crc >> 8) ^ CRC32_TABLE[idx];
    }
    !crc
}

static CRC32_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i: u32 = 0;
    while i < 256 {
        let mut crc = i;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // lint:allow(arith): i is bounded by the loop condition (< 256)
        table[i as usize] = crc;
        i += 1;
    }
    table
}

/// Encodes a delta into the journal payload format.
pub fn encode_delta(delta: &DurableDelta) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    put_opt_u64(&mut out, delta.version);
    put_opt_bool(&mut out, delta.stale);
    put_opt_u64(&mut out, delta.dversion);
    match &delta.epoch {
        None => out.push(0),
        Some((enumber, elist)) => {
            out.push(1);
            put_u64(&mut out, *enumber);
            put_nodes(&mut out, elist);
        }
    }
    put_len(&mut out, delta.pages.len());
    for (page, contents) in &delta.pages {
        put_u16(&mut out, *page);
        put_bytes(&mut out, contents);
    }
    match &delta.log {
        None => out.push(0),
        Some(log) => {
            out.push(1);
            put_log(&mut out, log);
        }
    }
    match &delta.prepared {
        None => out.push(0),
        Some(slot) => {
            out.push(1);
            match slot {
                None => out.push(0),
                Some((op, action)) => {
                    out.push(1);
                    put_op(&mut out, *op);
                    put_action(&mut out, action);
                }
            }
        }
    }
    put_len(&mut out, delta.decisions.len());
    for (op, commit) in &delta.decisions {
        put_op(&mut out, *op);
        out.push(u8::from(*commit));
    }
    put_opt_u64(&mut out, delta.op_counter);
    match &delta.last_good {
        None => out.push(0),
        Some(good) => {
            out.push(1);
            put_nodes(&mut out, good);
        }
    }
    put_opt_u64(&mut out, delta.quarantine_fence);
    put_opt_bool(&mut out, delta.rejoin_pending);
    out
}

/// Decodes a journal payload back into a delta. Fails (never panics) on
/// any truncation, bad tag, or internal inconsistency — including
/// non-increasing write-log versions, which a bit flip can produce and
/// which would otherwise corrupt propagation.
pub fn decode_delta(payload: &[u8]) -> Result<DurableDelta, DecodeError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let mut delta = DurableDelta {
        version: r.opt_u64()?,
        stale: r.opt_bool()?,
        dversion: r.opt_u64()?,
        ..DurableDelta::default()
    };
    if r.tag("epoch option tag")? {
        let enumber = r.u64("epoch number")?;
        let elist = r.nodes()?;
        delta.epoch = Some((enumber, elist));
    }
    let n_pages = r.count("page count")?;
    for _ in 0..n_pages {
        let page: PageId = r.u16("page id")?;
        let contents = r.bytes("page contents")?;
        delta.pages.push((page, contents));
    }
    if r.tag("log option tag")? {
        delta.log = Some(r.log()?);
    }
    if r.tag("prepared option tag")? {
        if r.tag("prepared slot tag")? {
            let op = r.op()?;
            let action = r.action()?;
            delta.prepared = Some(Some((op, action)));
        } else {
            delta.prepared = Some(None);
        }
    }
    let n_decisions = r.count("decision count")?;
    for _ in 0..n_decisions {
        let op = r.op()?;
        let commit = r.bool("decision flag")?;
        delta.decisions.push((op, commit));
    }
    delta.op_counter = r.opt_u64()?;
    if r.tag("last-good option tag")? {
        delta.last_good = Some(r.nodes()?);
    }
    delta.quarantine_fence = r.opt_u64()?;
    delta.rejoin_pending = r.opt_bool()?;
    if r.pos != r.buf.len() {
        return Err(DecodeError {
            offset: r.pos,
            what: "trailing bytes after delta",
        });
    }
    Ok(delta)
}

// ---- encoding primitives ------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Writes a collection length as a `u32` count prefix. Well-formed deltas
/// never approach `MAX_COUNT`, let alone `u32::MAX`; if an impossible
/// length ever arrived here, saturating makes the *decoder* reject the
/// record (the count exceeds `MAX_COUNT`) instead of silently truncating
/// the count and mis-framing everything after it.
fn put_len(out: &mut Vec<u8>, n: usize) {
    debug_assert!(n <= MAX_COUNT as usize, "collection exceeds MAX_COUNT");
    put_u32(out, u32::try_from(n).unwrap_or(u32::MAX));
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_u64(out, v);
        }
    }
}

fn put_opt_bool(out: &mut Vec<u8>, v: Option<bool>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            out.push(u8::from(v));
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, bytes: &Bytes) {
    put_len(out, bytes.len());
    out.extend_from_slice(bytes);
}

fn put_nodes(out: &mut Vec<u8>, nodes: &[NodeId]) {
    put_len(out, nodes.len());
    for n in nodes {
        put_u32(out, n.0);
    }
}

fn put_op(out: &mut Vec<u8>, op: OpId) {
    put_u32(out, op.node.0);
    put_u64(out, op.seq);
}

fn put_write(out: &mut Vec<u8>, write: &PartialWrite) {
    put_len(out, write.pages.len());
    for (page, contents) in &write.pages {
        put_u16(out, *page);
        put_bytes(out, contents);
    }
}

fn put_log(out: &mut Vec<u8>, log: &WriteLog) {
    put_u64(out, log.cap() as u64);
    put_len(out, log.len());
    for entry in log.iter() {
        put_u64(out, entry.version);
        put_write(out, &entry.write);
    }
}

fn put_action(out: &mut Vec<u8>, action: &Action) {
    match action {
        Action::DoUpdate {
            writes,
            new_version,
            stale,
            good,
            base,
        } => {
            out.push(0);
            put_len(out, writes.len());
            for write in writes {
                put_write(out, write);
            }
            put_u64(out, *new_version);
            put_nodes(out, stale);
            put_nodes(out, good);
            match base {
                None => out.push(0),
                Some((pages, version)) => {
                    out.push(1);
                    put_len(out, pages.len());
                    for p in pages {
                        put_bytes(out, p);
                    }
                    put_u64(out, *version);
                }
            }
        }
        Action::MarkStale { desired_version } => {
            out.push(1);
            put_u64(out, *desired_version);
        }
        Action::NewEpoch {
            list,
            enumber,
            good,
            stale,
            desired_version,
        } => {
            out.push(2);
            put_nodes(out, list);
            put_u64(out, *enumber);
            put_nodes(out, good);
            put_nodes(out, stale);
            put_u64(out, *desired_version);
        }
    }
}

// ---- decoding primitives ------------------------------------------------

/// Caps decoded collection counts: a corrupted length prefix must produce
/// a [`DecodeError`], not an attempted multi-gigabyte allocation. The cap
/// is generous (every real delta is orders of magnitude smaller) and only
/// bounds the *initial reservation*; actual element reads still hit
/// end-of-input first if the count lies.
const MAX_COUNT: u32 = 1 << 20;

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, what: &'static str) -> DecodeError {
        DecodeError {
            offset: self.pos,
            what,
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(self.err(what))?;
        let slice = self.buf.get(self.pos..end).ok_or(self.err(what))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, DecodeError> {
        let s = self.take(2, what)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let s = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    fn bool(&mut self, what: &'static str) -> Result<bool, DecodeError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => {
                self.pos -= 1;
                Err(self.err(what))
            }
        }
    }

    fn tag(&mut self, what: &'static str) -> Result<bool, DecodeError> {
        self.bool(what)
    }

    fn count(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let n = self.u32(what)?;
        if n > MAX_COUNT {
            self.pos -= 4;
            return Err(self.err(what));
        }
        Ok(n)
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, DecodeError> {
        if self.tag("u64 option tag")? {
            Ok(Some(self.u64("u64 value")?))
        } else {
            Ok(None)
        }
    }

    fn opt_bool(&mut self) -> Result<Option<bool>, DecodeError> {
        if self.tag("bool option tag")? {
            Ok(Some(self.bool("bool value")?))
        } else {
            Ok(None)
        }
    }

    fn bytes(&mut self, what: &'static str) -> Result<Bytes, DecodeError> {
        let len = self.count(what)? as usize;
        let slice = self.take(len, what)?;
        Ok(Bytes::copy_from_slice(slice))
    }

    fn nodes(&mut self) -> Result<Vec<NodeId>, DecodeError> {
        let n = self.count("node count")?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            out.push(NodeId(self.u32("node id")?));
        }
        Ok(out)
    }

    fn op(&mut self) -> Result<OpId, DecodeError> {
        let node = NodeId(self.u32("op node")?);
        let seq = self.u64("op seq")?;
        Ok(OpId { node, seq })
    }

    fn write(&mut self) -> Result<PartialWrite, DecodeError> {
        let n = self.count("write page count")?;
        let mut pages = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let page: PageId = self.u16("write page id")?;
            let contents = self.bytes("write page contents")?;
            pages.push((page, contents));
        }
        // Direct construction (not `PartialWrite::new`) preserves the
        // encoded order byte-for-byte; the encoder only ever sees
        // already-deduplicated writes.
        Ok(PartialWrite { pages })
    }

    fn log(&mut self) -> Result<WriteLog, DecodeError> {
        let cap = self.u64("log cap")?;
        if cap > u64::from(MAX_COUNT) {
            self.pos -= 8;
            return Err(self.err("log cap"));
        }
        let n = self.count("log entry count")?;
        if u64::from(n) > cap {
            return Err(self.err("log entry count exceeds cap"));
        }
        let mut log = WriteLog::new(cap as usize);
        let mut last_version = 0u64;
        for i in 0..n {
            let version = self.u64("log entry version")?;
            if i > 0 && version <= last_version {
                return Err(self.err("log versions must increase"));
            }
            last_version = version;
            let write = self.write()?;
            log.push(LogEntry { version, write });
        }
        Ok(log)
    }

    fn action(&mut self) -> Result<Action, DecodeError> {
        match self.u8("action tag")? {
            0 => {
                let n = self.count("do-update write count")?;
                let mut writes = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    writes.push(self.write()?);
                }
                let new_version = self.u64("action new_version")?;
                let stale = self.nodes()?;
                let good = self.nodes()?;
                let base = if self.tag("base option tag")? {
                    let n = self.count("base page count")?;
                    let mut pages = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        pages.push(self.bytes("base page")?);
                    }
                    let version = self.u64("base version")?;
                    Some((pages, version))
                } else {
                    None
                };
                Ok(Action::DoUpdate {
                    writes,
                    new_version,
                    stale,
                    good,
                    base,
                })
            }
            1 => {
                let desired_version = self.u64("mark-stale desired version")?;
                Ok(Action::MarkStale { desired_version })
            }
            2 => {
                let list = self.nodes()?;
                let enumber = self.u64("new-epoch number")?;
                let good = self.nodes()?;
                let stale = self.nodes()?;
                let desired_version = self.u64("new-epoch desired version")?;
                Ok(Action::NewEpoch {
                    list,
                    enumber,
                    good,
                    stale,
                    desired_version,
                })
            }
            _ => {
                self.pos -= 1;
                Err(self.err("action tag"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolConfig;
    use crate::node::Durable;
    use coterie_quorum::GridCoterie;
    use std::sync::Arc;

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    fn rich_delta() -> DurableDelta {
        let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 4);
        let old = Durable::pristine(&config);
        let mut new = old.clone();
        new.version = 7;
        new.stale = true;
        new.dversion = 9;
        new.enumber = 3;
        new.elist = vec![NodeId(0), NodeId(2), NodeId(3)];
        new.object
            .apply(&PartialWrite::new([(0, b("aa")), (2, b(""))]));
        new.log.push(LogEntry {
            version: 7,
            write: PartialWrite::new([(0, b("aa"))]),
        });
        new.prepared = Some((
            OpId {
                node: NodeId(2),
                seq: 40,
            },
            Action::NewEpoch {
                list: vec![NodeId(0), NodeId(1)],
                enumber: 4,
                good: vec![NodeId(0)],
                stale: vec![NodeId(1)],
                desired_version: 8,
            },
        ));
        new.decisions.insert(
            OpId {
                node: NodeId(0),
                seq: 1,
            },
            true,
        );
        new.decisions.insert(
            OpId {
                node: NodeId(0),
                seq: 2,
            },
            false,
        );
        new.op_counter = 12;
        new.last_good = vec![NodeId(0), NodeId(2)];
        new.quarantine_fence = 1_000_000;
        new.rejoin_pending = true;
        DurableDelta::diff(&old, &new).expect("changed")
    }

    #[test]
    fn round_trips_rich_delta() {
        let delta = rich_delta();
        let encoded = encode_delta(&delta);
        let decoded = decode_delta(&encoded).expect("decodes");
        assert_eq!(decoded, delta);
    }

    #[test]
    fn round_trips_empty_delta() {
        let delta = DurableDelta::default();
        let decoded = decode_delta(&encode_delta(&delta)).expect("decodes");
        assert_eq!(decoded, delta);
    }

    #[test]
    fn round_trips_each_action() {
        for action in [
            Action::DoUpdate {
                writes: vec![
                    PartialWrite::new([(1, b("x"))]),
                    PartialWrite::new([(0, b("y")), (2, b("z"))]),
                ],
                new_version: 3,
                stale: vec![NodeId(3)],
                good: vec![NodeId(0), NodeId(1)],
                base: Some((vec![b("p0"), b("p1")], 1)),
            },
            Action::MarkStale { desired_version: 5 },
            Action::NewEpoch {
                list: vec![NodeId(0)],
                enumber: 1,
                good: vec![],
                stale: vec![],
                desired_version: 0,
            },
        ] {
            let delta = DurableDelta {
                prepared: Some(Some((
                    OpId {
                        node: NodeId(1),
                        seq: 3,
                    },
                    action.clone(),
                ))),
                ..DurableDelta::default()
            };
            let decoded = decode_delta(&encode_delta(&delta)).expect("decodes");
            assert_eq!(decoded, delta);
        }
    }

    #[test]
    fn every_truncation_errors_not_panics() {
        let encoded = encode_delta(&rich_delta());
        for cut in 0..encoded.len() {
            let err = decode_delta(&encoded[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut encoded = encode_delta(&DurableDelta::default());
        encoded.push(0);
        let err = decode_delta(&encoded).expect_err("trailing byte");
        assert_eq!(err.what, "trailing bytes after delta");
    }

    #[test]
    fn bad_tags_error_with_offset() {
        // Version option tag must be 0 or 1.
        let err = decode_delta(&[9]).expect_err("bad tag");
        assert_eq!(err.offset, 0);
    }

    #[test]
    fn huge_count_is_rejected_without_allocation() {
        // stale=None, version=None, dversion=None, epoch=None, then a
        // page count of u32::MAX.
        let mut buf = vec![0, 0, 0, 0];
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_delta(&buf).expect_err("count too large");
        assert_eq!(err.what, "page count");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn encoding_is_deterministic() {
        let delta = rich_delta();
        assert_eq!(encode_delta(&delta), encode_delta(&delta));
    }
}
