//! Deterministic, seeded storage-fault injection.
//!
//! A [`Failpoints`] registry is owned by a *host* (the step driver, the
//! simnet adapter) and consulted at named sites — e.g. just before a
//! journal append. Faults fire either as one-shot armed events or with a
//! per-mille probability, and every draw comes from a private
//! [`Rng64`] stream, so a given `(seed, schedule)` pair injects exactly
//! the same faults on every run. The registry keeps a log of fired faults
//! so harnesses can report *which* injections a failing seed performed.
//!
//! The engine itself never sees this type: fault injection happens in the
//! host at the effect boundary, preserving the sans-I/O contract that
//! `step` is a pure function of its inputs.

use std::collections::{BTreeMap, VecDeque};

use super::rng::Rng64;

/// The storage faults a host can inject at a persist site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The append fails wholesale: no bytes reach the journal and the
    /// node crashes (a persist error is fail-stop for the replica).
    AppendFail,
    /// The append is torn: only a prefix of the record reaches the
    /// journal before the node crashes.
    TornWrite,
    /// A single bit of the existing journal flips in place (latent media
    /// corruption; discovered at the next replay).
    BitFlip,
}

/// One injected fault, for post-hoc reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FiredFault {
    /// The site that fired.
    pub site: String,
    /// The fault injected.
    pub kind: FaultKind,
    /// 0-based global sequence number of the firing.
    pub seq: u64,
}

/// Well-known failpoint site names shared by hosts and harnesses.
pub mod sites {
    /// Consulted once per journal append (the `Persist` effect).
    pub const JOURNAL_APPEND: &str = "journal.append";
}

/// A deterministic failpoint registry (see module docs).
#[derive(Clone, Debug)]
pub struct Failpoints {
    rng: Rng64,
    /// One-shot faults, consumed front-first per site.
    armed: BTreeMap<String, VecDeque<FaultKind>>,
    /// Probabilistic faults: per-mille chance per check, drawn in
    /// insertion order (deterministic: `BTreeMap` + per-kind slots).
    rates: BTreeMap<String, Vec<(FaultKind, u16)>>,
    fired: Vec<FiredFault>,
}

impl Failpoints {
    /// A registry with its own seeded RNG stream.
    pub fn new(seed: u64) -> Self {
        Failpoints {
            // Decorrelate from engine RNGs, which seed with `seed ^ node`.
            rng: Rng64::new(seed ^ 0xFA11_0000_0000_0001),
            armed: BTreeMap::new(),
            rates: BTreeMap::new(),
            fired: Vec::new(),
        }
    }

    /// Arms a one-shot fault at `site`; multiple arms queue in order.
    pub fn arm(&mut self, site: &str, kind: FaultKind) {
        self.armed
            .entry(site.to_string())
            .or_default()
            .push_back(kind);
    }

    /// Sets a probabilistic fault: each [`check`](Failpoints::check) of
    /// `site` fires `kind` with probability `per_mille`/1000. Setting the
    /// same kind again replaces its rate; 0 removes it.
    pub fn set_rate(&mut self, site: &str, kind: FaultKind, per_mille: u16) {
        let slots = self.rates.entry(site.to_string()).or_default();
        slots.retain(|(k, _)| *k != kind);
        if per_mille > 0 {
            slots.push((kind, per_mille.min(1000)));
        }
        if slots.is_empty() {
            self.rates.remove(site);
        }
    }

    /// Consults the registry at `site`. Armed one-shots fire first (in
    /// arm order), then probabilistic rates are drawn. Every probabilistic
    /// slot consumes exactly one RNG draw whether or not it fires, so the
    /// injection schedule depends only on the sequence of `check` calls.
    pub fn check(&mut self, site: &str) -> Option<FaultKind> {
        if let Some(queue) = self.armed.get_mut(site) {
            if let Some(kind) = queue.pop_front() {
                if queue.is_empty() {
                    self.armed.remove(site);
                }
                return Some(self.record(site, kind));
            }
        }
        let slots = self.rates.get(site).cloned().unwrap_or_default();
        let mut hit = None;
        for (kind, per_mille) in slots {
            let draw = self.rng.below(1000);
            if hit.is_none() && draw < u64::from(per_mille) {
                hit = Some(kind);
            }
        }
        hit.map(|kind| self.record(site, kind))
    }

    /// A deterministic auxiliary draw in `0..n` — hosts use this to pick
    /// torn-write cut points and bit-flip positions from the same stream.
    pub fn draw(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.rng.below(n)
    }

    /// Every fault fired so far, in firing order.
    pub fn fired(&self) -> &[FiredFault] {
        &self.fired
    }

    /// True if no faults are armed and no rates are set.
    pub fn is_quiet(&self) -> bool {
        self.armed.is_empty() && self.rates.is_empty()
    }

    fn record(&mut self, site: &str, kind: FaultKind) -> FaultKind {
        let seq = self.fired.len() as u64;
        self.fired.push(FiredFault {
            site: site.to_string(),
            kind,
            seq,
        });
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_faults_fire_once_in_order() {
        let mut fp = Failpoints::new(1);
        fp.arm(sites::JOURNAL_APPEND, FaultKind::TornWrite);
        fp.arm(sites::JOURNAL_APPEND, FaultKind::AppendFail);
        assert_eq!(fp.check(sites::JOURNAL_APPEND), Some(FaultKind::TornWrite));
        assert_eq!(fp.check(sites::JOURNAL_APPEND), Some(FaultKind::AppendFail));
        assert_eq!(fp.check(sites::JOURNAL_APPEND), None);
        assert_eq!(fp.fired().len(), 2);
        assert_eq!(fp.fired()[0].kind, FaultKind::TornWrite);
    }

    #[test]
    fn rates_are_deterministic_per_seed() {
        let run = |seed| {
            let mut fp = Failpoints::new(seed);
            fp.set_rate("s", FaultKind::BitFlip, 200);
            (0..100)
                .map(|_| fp.check("s").is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed, same schedule");
        assert_ne!(run(7), run(8), "different seed, different schedule");
        let hits = run(7).iter().filter(|h| **h).count();
        assert!(hits > 5 && hits < 50, "~20% rate, got {hits}/100");
    }

    #[test]
    fn zero_rate_clears_and_full_rate_always_fires() {
        let mut fp = Failpoints::new(3);
        fp.set_rate("s", FaultKind::AppendFail, 1000);
        assert_eq!(fp.check("s"), Some(FaultKind::AppendFail));
        fp.set_rate("s", FaultKind::AppendFail, 0);
        assert_eq!(fp.check("s"), None);
        assert!(fp.is_quiet() || !fp.rates.contains_key("s"));
    }

    #[test]
    fn unknown_sites_never_fire_and_consume_no_draws() {
        let mut a = Failpoints::new(9);
        let mut b = Failpoints::new(9);
        // `a` checks a site with no registration 50 times first.
        for _ in 0..50 {
            assert_eq!(a.check("nothing.here"), None);
        }
        a.set_rate("s", FaultKind::TornWrite, 500);
        b.set_rate("s", FaultKind::TornWrite, 500);
        let sa: Vec<bool> = (0..20).map(|_| a.check("s").is_some()).collect();
        let sb: Vec<bool> = (0..20).map(|_| b.check("s").is_some()).collect();
        assert_eq!(sa, sb, "quiet checks must not advance the stream");
    }

    #[test]
    fn draw_is_bounded() {
        let mut fp = Failpoints::new(5);
        for n in [1u64, 2, 17, 1000] {
            for _ in 0..10 {
                assert!(fp.draw(n) < n);
            }
        }
        assert_eq!(fp.draw(0), 0);
    }
}
