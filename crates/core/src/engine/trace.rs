//! Deterministic protocol tracing: structured [`TraceEvent`]s, the
//! [`TraceSink`] observer contract, and the bounded [`TraceRing`] flight
//! recorder.
//!
//! Observation must never perturb the protocol, so the layer is built from
//! the same material as the engine itself:
//!
//! * Events are plain `Copy` data — no allocation happens on the emission
//!   path, and a disabled sink ([`NoopSink`]) costs one virtual call that
//!   discards a small struct.
//! * Every record carries three clocks: the host-provided [`SimTime`], a
//!   per-node monotonic **sequence number** (total order of one node's
//!   events), and a **Lamport counter** carried on the wire with every
//!   message (`Effect::Send` / `Input::Deliver`), so records from
//!   different nodes merge into a causally consistent history.
//! * The Lamport counter ticks on sends and merges on deliveries whether
//!   or not any sink is attached, so an enabled run and a disabled run are
//!   byte-identical in every protocol-visible artifact (journals, effects,
//!   digests) — the counter is engine state, the *records* are not.
//!
//! Rendering is std-only and hand-rolled (the engine crate carries no
//! serde): [`render_jsonl`] produces one deterministic JSON object per
//! line, and [`causal_merge`] orders records from many rings by
//! `(lamport, time, node, seq)` — a valid linear extension of the
//! happens-before relation the Lamport stamps encode.

use std::collections::VecDeque;
use std::fmt::Write as _;

use coterie_base::SimTime;
use coterie_quorum::NodeId;

use crate::msg::{MsgClass, OpId};

use super::failpoint::FaultKind;

/// How a checked journal replay classified the journal, as seen by the
/// flight recorder (the full verdict with payloads lives in
/// [`ReplayVerdict`](super::storage::ReplayVerdict); tracing only needs
/// the class).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayClass {
    /// Framing intact, every record acknowledged.
    Clean,
    /// Unacknowledged torn tail dropped; bootable.
    TornTail,
    /// Damage inside the acknowledged prefix; boots into stale-rejoin.
    Quarantined,
}

/// One structured protocol transition.
///
/// Variants are deliberately small and `Copy`: the emission path allocates
/// nothing, so tracing can stay compiled into the engine with a no-op sink
/// at zero marginal cost. The enum is registered in `coterie-lint`'s P1
/// surface registry — every variant must be emitted by live protocol code
/// and rendered by [`TraceEvent::kind`]'s exhaustive match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message left this node for `to`.
    MsgSend {
        /// Destination replica.
        to: NodeId,
        /// Coarse class of the message.
        class: MsgClass,
    },
    /// A message from `from` was delivered to this node.
    MsgRecv {
        /// Sending replica.
        from: NodeId,
        /// Coarse class of the message.
        class: MsgClass,
    },
    /// A previously sent message definitively failed (`CallFailed`).
    MsgBounce {
        /// The unreachable callee.
        to: NodeId,
        /// Coarse class of the undeliverable message.
        class: MsgClass,
    },
    /// The replica lock was granted to `op`.
    LockAcquire {
        /// The acquiring operation.
        op: OpId,
        /// True for exclusive (write/epoch) grants, false for shared.
        exclusive: bool,
    },
    /// A pipelined lock handoff: `from_op`'s exclusive lock transferred
    /// directly to `to_op` without an intervening release.
    LockHandoff {
        /// The releasing operation.
        from_op: OpId,
        /// The operation inheriting the lock.
        to_op: OpId,
    },
    /// The replica lock held by `op` was released (or its lease expired).
    LockRelease {
        /// The releasing operation.
        op: OpId,
    },
    /// 2PC phase 1 opened: this coordinator multicast `Prepare` for `op`.
    PrepareIssued {
        /// The transaction.
        op: OpId,
    },
    /// 2PC phase 1 answered: this participant voted on `op`.
    VoteCast {
        /// The transaction.
        op: OpId,
        /// The vote.
        yes: bool,
    },
    /// 2PC phase 2: a decision for `op` was applied at this node.
    DecisionTaken {
        /// The transaction.
        op: OpId,
        /// Commit (true) or abort (false).
        commit: bool,
    },
    /// An epoch check opened at this coordinator.
    EpochCheckStart {
        /// The epoch-check operation.
        op: OpId,
        /// The epoch number current when the check started.
        enumber: u64,
    },
    /// A new epoch was installed at this node.
    EpochInstalled {
        /// The installed epoch number.
        enumber: u64,
    },
    /// The stale-rejoin handshake started at this node.
    RejoinStart {
        /// The rejoin poll operation.
        op: OpId,
    },
    /// The stale-rejoin handshake completed at this node.
    RejoinDone {
        /// The learned desired version.
        dversion: u64,
        /// The learned epoch number.
        enumber: u64,
    },
    /// The host appended one persisted delta to the journal
    /// (write-through path).
    JournalAppend {
        /// Records in the append (1 for write-through).
        records: u64,
    },
    /// The host flushed a group-commit batch (one header commit; on real
    /// storage, one fsync).
    JournalFlush {
        /// Coalesced records covered by the flush.
        records: u64,
    },
    /// The host replayed the journal during a recovery.
    JournalReplay {
        /// The replay classification.
        class: ReplayClass,
    },
    /// A storage failpoint fired at the journal boundary.
    FailpointTrip {
        /// The injected fault.
        kind: FaultKind,
    },
}

impl TraceEvent {
    /// Stable snake_case tag for this event, used as the `ev` field of the
    /// JSONL rendering. Exhaustive on purpose: this match is the lint-
    /// designated consumer of the `TraceEvent` surface.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MsgSend { .. } => "msg_send",
            TraceEvent::MsgRecv { .. } => "msg_recv",
            TraceEvent::MsgBounce { .. } => "msg_bounce",
            TraceEvent::LockAcquire { .. } => "lock_acquire",
            TraceEvent::LockHandoff { .. } => "lock_handoff",
            TraceEvent::LockRelease { .. } => "lock_release",
            TraceEvent::PrepareIssued { .. } => "prepare_issued",
            TraceEvent::VoteCast { .. } => "vote_cast",
            TraceEvent::DecisionTaken { .. } => "decision_taken",
            TraceEvent::EpochCheckStart { .. } => "epoch_check_start",
            TraceEvent::EpochInstalled { .. } => "epoch_installed",
            TraceEvent::RejoinStart { .. } => "rejoin_start",
            TraceEvent::RejoinDone { .. } => "rejoin_done",
            TraceEvent::JournalAppend { .. } => "journal_append",
            TraceEvent::JournalFlush { .. } => "journal_flush",
            TraceEvent::JournalReplay { .. } => "journal_replay",
            TraceEvent::FailpointTrip { .. } => "failpoint_trip",
        }
    }

    /// Writes the event-specific JSON fields (no braces, leading comma
    /// included when non-empty) into `out`.
    fn render_fields(&self, out: &mut String) {
        match self {
            TraceEvent::MsgSend { to, class } => {
                let _ = write!(out, ",\"to\":{},\"class\":\"{}\"", to.0, class_name(*class));
            }
            TraceEvent::MsgRecv { from, class } => {
                let _ = write!(
                    out,
                    ",\"from\":{},\"class\":\"{}\"",
                    from.0,
                    class_name(*class)
                );
            }
            TraceEvent::MsgBounce { to, class } => {
                let _ = write!(out, ",\"to\":{},\"class\":\"{}\"", to.0, class_name(*class));
            }
            TraceEvent::LockAcquire { op, exclusive } => {
                let _ = write!(out, ",\"op\":\"{}\",\"exclusive\":{exclusive}", op_str(op));
            }
            TraceEvent::LockHandoff { from_op, to_op } => {
                let _ = write!(
                    out,
                    ",\"from_op\":\"{}\",\"to_op\":\"{}\"",
                    op_str(from_op),
                    op_str(to_op)
                );
            }
            TraceEvent::LockRelease { op } => {
                let _ = write!(out, ",\"op\":\"{}\"", op_str(op));
            }
            TraceEvent::PrepareIssued { op } => {
                let _ = write!(out, ",\"op\":\"{}\"", op_str(op));
            }
            TraceEvent::VoteCast { op, yes } => {
                let _ = write!(out, ",\"op\":\"{}\",\"yes\":{yes}", op_str(op));
            }
            TraceEvent::DecisionTaken { op, commit } => {
                let _ = write!(out, ",\"op\":\"{}\",\"commit\":{commit}", op_str(op));
            }
            TraceEvent::EpochCheckStart { op, enumber } => {
                let _ = write!(out, ",\"op\":\"{}\",\"enumber\":{enumber}", op_str(op));
            }
            TraceEvent::EpochInstalled { enumber } => {
                let _ = write!(out, ",\"enumber\":{enumber}");
            }
            TraceEvent::RejoinStart { op } => {
                let _ = write!(out, ",\"op\":\"{}\"", op_str(op));
            }
            TraceEvent::RejoinDone { dversion, enumber } => {
                let _ = write!(out, ",\"dversion\":{dversion},\"enumber\":{enumber}");
            }
            TraceEvent::JournalAppend { records } => {
                let _ = write!(out, ",\"records\":{records}");
            }
            TraceEvent::JournalFlush { records } => {
                let _ = write!(out, ",\"records\":{records}");
            }
            TraceEvent::JournalReplay { class } => {
                let tag = match class {
                    ReplayClass::Clean => "clean",
                    ReplayClass::TornTail => "torn_tail",
                    ReplayClass::Quarantined => "quarantined",
                };
                let _ = write!(out, ",\"replay\":\"{tag}\"");
            }
            TraceEvent::FailpointTrip { kind } => {
                let tag = match kind {
                    FaultKind::AppendFail => "append_fail",
                    FaultKind::TornWrite => "torn_write",
                    FaultKind::BitFlip => "bit_flip",
                };
                let _ = write!(out, ",\"fault\":\"{tag}\"");
            }
        }
    }
}

/// Stable snake_case tag for a message class.
fn class_name(class: MsgClass) -> &'static str {
    match class {
        MsgClass::Permission => "permission",
        MsgClass::Commit => "commit",
        MsgClass::Fetch => "fetch",
        MsgClass::Propagation => "propagation",
        MsgClass::EpochCheck => "epoch_check",
    }
}

fn op_str(op: &OpId) -> String {
    format!("n{}#{}", op.node.0, op.seq)
}

/// One stamped trace record: the event plus its three clocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Host-provided time of the step that emitted the event.
    pub at: SimTime,
    /// The emitting node.
    pub node: NodeId,
    /// Per-node monotonic sequence number (total order of one node's
    /// events, across crashes).
    pub seq: u64,
    /// Lamport counter at emission: ticked on every send, merged
    /// (`max(local, remote) + 1`) on every delivery.
    pub lamport: u64,
    /// The event.
    pub event: TraceEvent,
}

/// Where the engine reports trace records. Implementations must be cheap
/// and must not fail: the engine calls [`record`](TraceSink::record)
/// mid-step and ignores nothing it returns (there is nothing to return).
pub trait TraceSink {
    /// Accepts one stamped record.
    fn record(&mut self, rec: TraceRecord);
}

/// The default sink: discards everything. Stamping still happens (the
/// clocks are engine state), so enabling a real sink later changes no
/// protocol-visible byte.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _rec: TraceRecord) {}
}

/// A bounded per-node flight recorder: keeps the last `cap` records,
/// counting what it had to drop. `Clone` so forked drivers (the
/// interleaving explorer) carry their history with them.
#[derive(Clone, Debug)]
pub struct TraceRing {
    cap: usize,
    dropped: u64,
    events: VecDeque<TraceRecord>,
}

impl TraceRing {
    /// An empty ring keeping at most `cap` records (`cap` is clamped to at
    /// least 1).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap: cap.max(1),
            dropped: 0,
            events: VecDeque::new(),
        }
    }

    /// Records retained, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.events.iter()
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Records evicted to stay within the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for TraceRing {
    fn record(&mut self, rec: TraceRecord) {
        if self.events.len() >= self.cap {
            self.events.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
        self.events.push_back(rec);
    }
}

/// Merges per-node rings into one causally ordered history: sorted by
/// `(lamport, time, node, seq)`. Lamport order is consistent with
/// happens-before (a delivery's stamp strictly exceeds its send's), so the
/// result is a valid linear extension; the remaining keys make ties
/// deterministic.
pub fn causal_merge(rings: &[&TraceRing]) -> Vec<TraceRecord> {
    let mut all: Vec<TraceRecord> = rings.iter().flat_map(|r| r.records().copied()).collect();
    all.sort_by_key(|r| (r.lamport, r.at, r.node.0, r.seq));
    all
}

/// Renders records as JSONL: one deterministic, hand-rolled JSON object
/// per line, e.g.
/// `{"at":120,"node":2,"seq":17,"lamport":41,"ev":"msg_send","to":0,"class":"commit"}`.
pub fn render_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = write!(
            out,
            "{{\"at\":{},\"node\":{},\"seq\":{},\"lamport\":{},\"ev\":\"{}\"",
            r.at.0,
            r.node.0,
            r.seq,
            r.lamport,
            r.event.kind()
        );
        r.event.render_fields(&mut out);
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32, seq: u64, lamport: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            at: SimTime(seq),
            node: NodeId(node),
            seq,
            lamport,
            event,
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut ring = TraceRing::new(2);
        for i in 0..5 {
            ring.record(rec(0, i, i, TraceEvent::EpochInstalled { enumber: i }));
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let kept: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn merge_orders_by_lamport_then_ties() {
        let mut a = TraceRing::new(8);
        let mut b = TraceRing::new(8);
        a.record(rec(
            0,
            1,
            5,
            TraceEvent::MsgSend {
                to: NodeId(1),
                class: MsgClass::Commit,
            },
        ));
        b.record(rec(
            1,
            1,
            6,
            TraceEvent::MsgRecv {
                from: NodeId(0),
                class: MsgClass::Commit,
            },
        ));
        b.record(rec(1, 2, 2, TraceEvent::EpochInstalled { enumber: 1 }));
        let merged = causal_merge(&[&a, &b]);
        let lamports: Vec<u64> = merged.iter().map(|r| r.lamport).collect();
        assert_eq!(lamports, vec![2, 5, 6]);
    }

    #[test]
    fn jsonl_rendering_is_stable() {
        let records = vec![
            rec(
                2,
                17,
                41,
                TraceEvent::MsgSend {
                    to: NodeId(0),
                    class: MsgClass::Commit,
                },
            ),
            rec(
                0,
                3,
                42,
                TraceEvent::VoteCast {
                    op: OpId {
                        node: NodeId(1),
                        seq: 9,
                    },
                    yes: true,
                },
            ),
        ];
        let jsonl = render_jsonl(&records);
        assert_eq!(
            jsonl,
            "{\"at\":17,\"node\":2,\"seq\":17,\"lamport\":41,\"ev\":\"msg_send\",\
             \"to\":0,\"class\":\"commit\"}\n\
             {\"at\":3,\"node\":0,\"seq\":3,\"lamport\":42,\"ev\":\"vote_cast\",\
             \"op\":\"n1#9\",\"yes\":true}\n"
        );
    }
}
