//! A substrate-free harness for the engine: hold a whole cluster's worth
//! of [`ReplicaNode`]s plus their in-flight messages and armed timers, and
//! let the caller decide *which* pending event happens next.
//!
//! This is the building block for schedule exploration: because the driver
//! is `Clone`, an explorer can fork the cluster at any point and try every
//! enabled event from the same state. It also journals every
//! [`Effect::Persist`] into a per-node [`MemJournal`], so crash-replay
//! tests can compare reconstructed durable state against the live engine.

use std::fmt::Write as _;

use coterie_base::{SimDuration, SimTime, TimerId};
use coterie_quorum::NodeId;

use crate::config::ProtocolConfig;
use crate::msg::{ClientRequest, Msg, ProtocolEvent};
use crate::node::{Durable, ReplicaNode, Timer};

use super::io::{Effect, Input};
use super::storage::{MemJournal, StableStorage};

/// An in-flight protocol message.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// The message.
    pub msg: Msg,
}

/// An armed (not yet fired) timer.
#[derive(Clone, Debug)]
pub struct PendingTimer {
    /// Owning node.
    pub node: NodeId,
    /// Node-unique id (cancellation key).
    pub id: TimerId,
    /// Nominal expiry time.
    pub fire_at: SimTime,
    /// Payload.
    pub timer: Timer,
}

/// One schedulable event, as chosen by an explorer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverEvent {
    /// Deliver the `i`-th pending message.
    Deliver(usize),
    /// Fire the `i`-th pending timer.
    Fire(usize),
    /// Fail-stop a node.
    Crash(NodeId),
    /// Restart a crashed node.
    Recover(NodeId),
}

/// A cluster of engines plus the pending-event pools they feed on.
#[derive(Clone, Debug)]
pub struct StepDriver {
    config: ProtocolConfig,
    nodes: Vec<ReplicaNode>,
    down: Vec<bool>,
    now: SimTime,
    messages: Vec<Envelope>,
    timers: Vec<PendingTimer>,
    outputs: Vec<(SimTime, NodeId, ProtocolEvent)>,
    journals: Vec<MemJournal>,
}

impl StepDriver {
    /// Builds and boots an `n`-node cluster.
    pub fn new(n: usize, config: ProtocolConfig) -> Self {
        let mut driver = StepDriver {
            nodes: (0..n as u32)
                .map(|id| ReplicaNode::new(NodeId(id), config.clone()))
                .collect(),
            config,
            down: vec![false; n],
            now: SimTime::ZERO,
            messages: Vec::new(),
            timers: Vec::new(),
            outputs: Vec::new(),
            journals: vec![MemJournal::new(); n],
        };
        for id in 0..n as u32 {
            driver.step_node(NodeId(id), Input::Boot);
        }
        driver
    }

    /// Current driver time (advances only when timers fire or the caller
    /// calls [`advance`](StepDriver::advance)).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Moves time forward without firing anything.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Submits a client request at `node`.
    pub fn inject(&mut self, node: NodeId, request: ClientRequest) {
        assert!(!self.down[node.0 as usize], "cannot inject at a down node");
        self.step_node(node, Input::External(request));
    }

    /// The in-flight messages, in send order.
    pub fn pending_messages(&self) -> &[Envelope] {
        &self.messages
    }

    /// The armed timers, in arming order.
    pub fn pending_timers(&self) -> &[PendingTimer] {
        &self.timers
    }

    /// Number of replicas in the cluster.
    pub fn cluster_size(&self) -> usize {
        self.nodes.len()
    }

    /// True if `node` is currently crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.0 as usize]
    }

    /// Read access to a node's engine.
    pub fn node(&self, node: NodeId) -> &ReplicaNode {
        &self.nodes[node.0 as usize]
    }

    /// Protocol events emitted so far, in emission order.
    pub fn outputs(&self) -> &[(SimTime, NodeId, ProtocolEvent)] {
        &self.outputs
    }

    /// The per-node journal of persisted deltas.
    pub fn journal(&self, node: NodeId) -> &MemJournal {
        &self.journals[node.0 as usize]
    }

    /// Reconstructs `node`'s durable state purely from its journal.
    pub fn replay_journal(&self, node: NodeId) -> Durable {
        self.journals[node.0 as usize].replay(&self.config)
    }

    /// Delivers the `i`-th pending message. If the destination is down the
    /// message bounces as a `CallFailed` to its sender (the fail-stop
    /// notification of the paper's model); if the sender is down too, the
    /// bounce is dropped.
    ///
    /// Each delivery advances time by 1 µs, so completion timestamps
    /// strictly follow the injection timestamps of the requests that caused
    /// them (the real-time order the 1SR checker's recency rule relies on).
    pub fn deliver(&mut self, i: usize) {
        self.now += SimDuration::from_micros(1);
        let env = self.messages.remove(i);
        if self.down[env.to.0 as usize] {
            if !self.down[env.from.0 as usize] {
                self.step_node(
                    env.from,
                    Input::CallFailed {
                        to: env.to,
                        msg: env.msg,
                    },
                );
            }
        } else {
            self.step_node(
                env.to,
                Input::Deliver {
                    from: env.from,
                    msg: env.msg,
                },
            );
        }
    }

    /// Fires the `i`-th pending timer, advancing time to its nominal expiry
    /// if that lies in the future.
    pub fn fire(&mut self, i: usize) {
        let t = self.timers.remove(i);
        debug_assert!(!self.down[t.node.0 as usize], "down nodes hold no timers");
        self.now = self.now.max(t.fire_at);
        self.step_node(t.node, Input::TimerFired(t.timer));
    }

    /// Fail-stops `node`: volatile state and armed timers are lost; in-flight
    /// messages to it will bounce on delivery.
    pub fn crash(&mut self, node: NodeId) {
        assert!(!self.down[node.0 as usize], "node already down");
        self.down[node.0 as usize] = true;
        self.timers.retain(|t| t.node != node);
        self.step_node(node, Input::Crash);
    }

    /// Restarts a crashed node (durable state intact).
    pub fn recover(&mut self, node: NodeId) {
        assert!(self.down[node.0 as usize], "node not down");
        self.down[node.0 as usize] = false;
        self.step_node(node, Input::Boot);
    }

    /// Runs a fixed, deterministic schedule for `d` of driver time: pending
    /// messages deliver immediately in send order; when none are pending,
    /// the earliest timer due within the window fires (ties broken by node
    /// then id). Returns once no message is in flight and no timer is due.
    ///
    /// This is the "zero-latency network, well-behaved clocks" schedule —
    /// useful as a baseline; the interleaving explorer exists precisely to
    /// try all the *other* schedules.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        loop {
            if !self.messages.is_empty() {
                self.deliver(0);
                continue;
            }
            let next = self
                .timers
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| (t.fire_at, t.node.0, t.id.0))
                .map(|(i, t)| (i, t.fire_at));
            match next {
                Some((i, at)) if at <= deadline => self.fire(i),
                _ => break,
            }
        }
        self.now = deadline;
    }

    /// Applies one schedulable event.
    pub fn perform(&mut self, event: DriverEvent) {
        match event {
            DriverEvent::Deliver(i) => self.deliver(i),
            DriverEvent::Fire(i) => self.fire(i),
            DriverEvent::Crash(n) => self.crash(n),
            DriverEvent::Recover(n) => self.recover(n),
        }
    }

    fn step_node(&mut self, node: NodeId, input: Input) {
        let effects = self.nodes[node.0 as usize].step(self.now, input);
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => self.messages.push(Envelope {
                    from: node,
                    to,
                    msg,
                }),
                Effect::SetTimer { id, delay, timer } => self.timers.push(PendingTimer {
                    node,
                    id,
                    fire_at: self.now + delay,
                    timer,
                }),
                Effect::CancelTimer(id) => {
                    self.timers.retain(|t| !(t.node == node && t.id == id));
                }
                Effect::Persist(delta) => self.journals[node.0 as usize].append(&delta),
                Effect::Output(ev) => self.outputs.push((self.now, node, ev)),
            }
        }
    }

    /// A deterministic digest of the cluster's logical state: engine states,
    /// liveness flags, the pending message/timer pools (order-insensitive,
    /// expiry-time-blind), and the output history. Two drivers with equal
    /// digests behave identically under equal future schedules, so an
    /// explorer can prune revisits.
    pub fn state_digest(&self) -> u64 {
        let mut repr = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let _ = write!(repr, "n{i};down={};", self.down[i]);
            canonical_node(&mut repr, node);
        }
        let mut msgs: Vec<String> = self
            .messages
            .iter()
            .map(|e| format!("{}>{}:{:?}", e.from.0, e.to.0, e.msg))
            .collect();
        msgs.sort_unstable();
        let mut tmrs: Vec<String> = self
            .timers
            .iter()
            .map(|t| format!("{}#{}:{:?}", t.node.0, t.id.0, t.timer))
            .collect();
        tmrs.sort_unstable();
        for s in msgs.iter().chain(tmrs.iter()) {
            repr.push_str(s);
            repr.push('\n');
        }
        let _ = write!(repr, "outs={}", self.outputs.len());
        for (_, n, e) in &self.outputs {
            let _ = write!(repr, ";{}:{e:?}", n.0);
        }
        fnv1a(repr.as_bytes())
    }
}

/// Writes a canonical (iteration-order-independent) textual form of one
/// engine's full state into `out`.
fn canonical_node(out: &mut String, node: &ReplicaNode) {
    let d = &node.durable;
    let _ = write!(
        out,
        "v={},st={},dv={},e={},el={:?},obj={:x},log=({},{}),prep={:?},opc={},lg={:?};",
        d.version,
        d.stale,
        d.dversion,
        d.enumber,
        d.elist,
        d.object.digest(),
        d.log.len(),
        d.log.newest_version(),
        d.prepared,
        d.op_counter,
        d.last_good,
    );
    // Durable/Volatile keyed state lives in BTree collections, so plain
    // iteration is already in canonical (ascending-key) order.
    let decisions: Vec<_> = d.decisions.iter().map(|(op, c)| (*op, *c)).collect();
    let _ = write!(out, "dec={decisions:?};");

    let v = &node.vol;
    let _ = write!(out, "lock={:?},", v.lock.exclusive_holder());
    let shared: Vec<_> = v.lock.shared_holders().collect();
    let _ = write!(out, "shared={shared:?};");
    let leases: Vec<_> = v.lock_leases.iter().map(|(op, id)| (*op, id.0)).collect();
    let _ = write!(out, "leases={leases:?};");
    sorted_map(out, "writes", &v.writes);
    sorted_map(out, "reads", &v.reads);
    sorted_map(out, "epochs", &v.epochs);
    let attempts: Vec<_> = v
        .propagator
        .attempts
        .iter()
        .map(|(n, a)| (*n, *a))
        .collect();
    let _ = write!(
        out,
        "prop=({:?},{:?},{attempts:?},{});inc={:?};pep={:?};",
        v.propagator.remaining,
        v.propagator.in_flight,
        v.propagator.kick_armed,
        v.incoming_prop,
        v.pending_epoch_prepare,
    );
    let retry: Vec<_> = v.decision_retry_armed.iter().copied().collect();
    let _ = write!(
        out,
        "eck=({:?},{},{});dra={retry:?};elec={:?};seq={};rng={:?};",
        v.last_epoch_check_seen,
        v.epoch_check_active,
        v.epoch_retry_armed,
        v.election,
        node.timer_seq,
        node.rng,
    );
}

fn sorted_map<V: std::fmt::Debug>(
    out: &mut String,
    label: &str,
    map: &std::collections::BTreeMap<crate::msg::OpId, V>,
) {
    // BTreeMap iterates in key order, so the rendering is canonical as-is.
    let entries: Vec<_> = map.iter().collect();
    let _ = write!(out, "{label}={entries:?};");
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
