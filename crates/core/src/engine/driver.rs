//! A substrate-free harness for the engine: hold a whole cluster's worth
//! of [`ReplicaNode`]s plus their in-flight messages and armed timers, and
//! let the caller decide *which* pending event happens next.
//!
//! This is the building block for schedule exploration: because the driver
//! is `Clone`, an explorer can fork the cluster at any point and try every
//! enabled event from the same state. It also journals every
//! [`Effect::Persist`] into a per-node [`FramedJournal`], so crash-replay
//! tests can compare reconstructed durable state against the live engine —
//! and, through the per-node [`Failpoints`], storage faults (failed,
//! torn, or bit-flipped appends) can be injected at the journal boundary
//! deterministically.

use std::fmt::Write as _;

use coterie_base::{SimDuration, SimTime, TimerId};
use coterie_quorum::NodeId;

use crate::config::ProtocolConfig;
use crate::msg::{ClientRequest, Msg, ProtocolEvent};
use crate::node::{Durable, ReplicaNode, Timer};

use super::failpoint::{sites, Failpoints, FaultKind, FiredFault};
use super::io::{Effect, Input};
use super::metrics::{keys, MetricsRegistry};
use super::storage::{DurableDelta, FramedJournal, FramedReplay, StableStorage};
use super::trace::{ReplayClass, TraceEvent, TraceRecord, TraceRing, TraceSink};

/// An in-flight protocol message.
#[derive(Clone, Debug)]
pub struct Envelope {
    /// Sender.
    pub from: NodeId,
    /// Destination.
    pub to: NodeId,
    /// The message.
    pub msg: Msg,
    /// The sender's Lamport stamp (trace metadata carried on the wire).
    pub lamport: u64,
}

/// An armed (not yet fired) timer.
#[derive(Clone, Debug)]
pub struct PendingTimer {
    /// Owning node.
    pub node: NodeId,
    /// Node-unique id (cancellation key).
    pub id: TimerId,
    /// Nominal expiry time.
    pub fire_at: SimTime,
    /// Payload.
    pub timer: Timer,
}

/// One schedulable event, as chosen by an explorer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverEvent {
    /// Deliver the `i`-th pending message.
    Deliver(usize),
    /// Fire the `i`-th pending timer.
    Fire(usize),
    /// Fail-stop a node.
    Crash(NodeId),
    /// Restart a crashed node.
    Recover(NodeId),
}

/// A cluster of engines plus the pending-event pools they feed on.
#[derive(Clone, Debug)]
pub struct StepDriver {
    config: ProtocolConfig,
    nodes: Vec<ReplicaNode>,
    down: Vec<bool>,
    now: SimTime,
    messages: Vec<Envelope>,
    timers: Vec<PendingTimer>,
    outputs: Vec<(SimTime, NodeId, ProtocolEvent)>,
    journals: Vec<FramedJournal>,
    failpoints: Vec<Failpoints>,
    /// Partition island id per node; nodes in different islands cannot
    /// exchange messages (deliveries bounce as `CallFailed`).
    partition: Vec<u8>,
    /// Per-node group-commit coalescing buffer (deltas journaled but not
    /// yet flushed). Always empty when `group_commit_max_batch <= 1`.
    gc_pending: Vec<Vec<DurableDelta>>,
    /// Per-node observable effects (sends/outputs) held back behind a
    /// buffered delta until the covering flush (ack-before-flush).
    gc_deferred: Vec<Vec<Effect>>,
    /// Per-node count of journal flushes (header commits) performed.
    flushes: Vec<u64>,
    /// Per-node flight recorders; `None` until
    /// [`enable_tracing`](StepDriver::enable_tracing).
    tracing: Option<Vec<TraceRing>>,
}

impl StepDriver {
    /// Builds and boots an `n`-node cluster.
    pub fn new(n: usize, config: ProtocolConfig) -> Self {
        let seed = config.seed;
        let mut driver = StepDriver {
            nodes: (0..n as u32)
                .map(|id| ReplicaNode::new(NodeId(id), config.clone()))
                .collect(),
            config,
            down: vec![false; n],
            now: SimTime::ZERO,
            messages: Vec::new(),
            timers: Vec::new(),
            outputs: Vec::new(),
            journals: vec![FramedJournal::new(); n],
            failpoints: (0..n as u64)
                .map(|id| Failpoints::new(seed ^ (id << 32)))
                .collect(),
            partition: vec![0; n],
            gc_pending: vec![Vec::new(); n],
            gc_deferred: vec![Vec::new(); n],
            flushes: vec![0; n],
            tracing: None,
        };
        for id in 0..n as u32 {
            driver.step_node(NodeId(id), Input::Boot);
        }
        driver
    }

    /// Current driver time (advances only when timers fire or the caller
    /// calls [`advance`](StepDriver::advance)).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Moves time forward without firing anything.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Submits a client request at `node`.
    pub fn inject(&mut self, node: NodeId, request: ClientRequest) {
        assert!(!self.down[node.0 as usize], "cannot inject at a down node");
        self.step_node(node, Input::External(request));
    }

    /// The in-flight messages, in send order.
    pub fn pending_messages(&self) -> &[Envelope] {
        &self.messages
    }

    /// The armed timers, in arming order.
    pub fn pending_timers(&self) -> &[PendingTimer] {
        &self.timers
    }

    /// Number of replicas in the cluster.
    pub fn cluster_size(&self) -> usize {
        self.nodes.len()
    }

    /// True if `node` is currently crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.down[node.0 as usize]
    }

    /// Read access to a node's engine.
    pub fn node(&self, node: NodeId) -> &ReplicaNode {
        &self.nodes[node.0 as usize]
    }

    /// Protocol events emitted so far, in emission order.
    pub fn outputs(&self) -> &[(SimTime, NodeId, ProtocolEvent)] {
        &self.outputs
    }

    /// The per-node framed journal of persisted deltas.
    pub fn journal(&self, node: NodeId) -> &FramedJournal {
        &self.journals[node.0 as usize]
    }

    /// Reconstructs `node`'s durable state purely from its journal.
    pub fn replay_journal(&self, node: NodeId) -> Durable {
        self.journals[node.0 as usize].replay(&self.config)
    }

    /// Checked replay of `node`'s journal: durable state plus the framing
    /// verdict (clean / torn tail / quarantined).
    pub fn replay_checked(&self, node: NodeId) -> FramedReplay {
        self.journals[node.0 as usize].replay_checked(&self.config)
    }

    /// Arms a one-shot storage fault at `node`'s next journal append.
    pub fn arm_storage_fault(&mut self, node: NodeId, kind: FaultKind) {
        self.failpoints[node.0 as usize].arm(sites::JOURNAL_APPEND, kind);
    }

    /// Sets a probabilistic storage-fault rate (per mille per append) at
    /// `node`'s journal. Zero removes the rate.
    pub fn set_storage_fault_rate(&mut self, node: NodeId, kind: FaultKind, per_mille: u16) {
        self.failpoints[node.0 as usize].set_rate(sites::JOURNAL_APPEND, kind, per_mille);
    }

    /// Storage faults that actually fired at `node`, in order.
    pub fn fired_faults(&self, node: NodeId) -> &[FiredFault] {
        self.failpoints[node.0 as usize].fired()
    }

    /// Splits the cluster into partition islands: `islands[i]` is node
    /// `i`'s island id, and messages between different islands bounce as
    /// `CallFailed` (the fail-stop notification — an unreachable peer is
    /// indistinguishable from a crashed one in this model).
    pub fn set_partition(&mut self, islands: Vec<u8>) {
        assert_eq!(islands.len(), self.nodes.len(), "one island id per node");
        self.partition = islands;
    }

    /// Heals all partitions.
    pub fn heal_partition(&mut self) {
        self.partition = vec![0; self.nodes.len()];
    }

    /// True if `a` and `b` can currently exchange messages.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.partition[a.0 as usize] == self.partition[b.0 as usize]
    }

    /// Delivers the `i`-th pending message. If the destination is down the
    /// message bounces as a `CallFailed` to its sender (the fail-stop
    /// notification of the paper's model); if the sender is down too, the
    /// bounce is dropped.
    ///
    /// Each delivery advances time by 1 µs, so completion timestamps
    /// strictly follow the injection timestamps of the requests that caused
    /// them (the real-time order the 1SR checker's recency rule relies on).
    pub fn deliver(&mut self, i: usize) {
        self.now += SimDuration::from_micros(1);
        let env = self.messages.remove(i);
        if self.down[env.to.0 as usize] || !self.connected(env.from, env.to) {
            if !self.down[env.from.0 as usize] {
                self.step_node(
                    env.from,
                    Input::CallFailed {
                        to: env.to,
                        msg: env.msg,
                    },
                );
            }
        } else {
            self.step_node(
                env.to,
                Input::Deliver {
                    from: env.from,
                    msg: env.msg,
                    lamport: env.lamport,
                },
            );
        }
    }

    /// Fires the `i`-th pending timer, advancing time to its nominal expiry
    /// if that lies in the future.
    pub fn fire(&mut self, i: usize) {
        let t = self.timers.remove(i);
        debug_assert!(!self.down[t.node.0 as usize], "down nodes hold no timers");
        self.now = self.now.max(t.fire_at);
        self.step_node(t.node, Input::TimerFired(t.timer));
    }

    /// Fail-stops `node`: volatile state and armed timers are lost; in-flight
    /// messages to it will bounce on delivery.
    pub fn crash(&mut self, node: NodeId) {
        assert!(!self.down[node.0 as usize], "node already down");
        let i = node.0 as usize;
        // A crash mid-coalesce leaves the buffered batch as a torn tail on
        // media: some prefix of its bytes, count never bumped. Replay drops
        // it — correct, because every observable effect behind it was still
        // deferred (ack-before-flush), so nothing it covered was promised.
        if !self.gc_pending[i].is_empty() {
            let batch = std::mem::take(&mut self.gc_pending[i]);
            let total: usize = batch
                .iter()
                .map(|d| super::codec::encode_delta(d).len() + 8)
                .sum();
            let keep = self.failpoints[i].draw(total as u64) as usize;
            self.journals[i].append_batch_torn(&batch, keep);
        }
        self.gc_deferred[i].clear();
        self.down[i] = true;
        self.timers.retain(|t| t.node != node);
        self.step_node(node, Input::Crash);
    }

    /// Restarts a crashed node from its journal, exactly as a real host
    /// would: the engine's in-memory durable state is discarded and the
    /// checked replay decides how to boot. A clean or torn-tail journal
    /// boots normally (the torn tail is truncated first — it was never
    /// acknowledged). A quarantined journal boots into the stale-rejoin
    /// protocol: the longest intact prefix is installed, the damaged
    /// history is discarded, and the node re-enters the cluster stale.
    pub fn recover(&mut self, node: NodeId) {
        assert!(self.down[node.0 as usize], "node not down");
        self.down[node.0 as usize] = false;
        let i = node.0 as usize;
        let replay = self.journals[i].replay_checked(&self.config);
        let class = match &replay.verdict {
            super::storage::ReplayVerdict::Clean => ReplayClass::Clean,
            super::storage::ReplayVerdict::TornTail { .. } => ReplayClass::TornTail,
            super::storage::ReplayVerdict::Quarantined { .. } => ReplayClass::Quarantined,
        };
        self.trace_host(node, TraceEvent::JournalReplay { class });
        if replay.verdict.is_bootable() {
            self.journals[i].truncate_tail();
            self.nodes[i].install_durable(replay.durable);
            self.step_node(node, Input::Boot);
        } else {
            self.journals[i].reset_to(&replay.durable, &self.config);
            self.nodes[i].install_durable(replay.durable);
            self.step_node(node, Input::BootQuarantined);
        }
    }

    /// Runs a fixed, deterministic schedule for `d` of driver time: pending
    /// messages deliver immediately in send order; when none are pending,
    /// the earliest timer due within the window fires (ties broken by node
    /// then id). Returns once no message is in flight and no timer is due.
    ///
    /// This is the "zero-latency network, well-behaved clocks" schedule —
    /// useful as a baseline; the interleaving explorer exists precisely to
    /// try all the *other* schedules.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        loop {
            if !self.messages.is_empty() {
                self.deliver(0);
                continue;
            }
            // Message pool drained: a real host's flush deadline
            // (`group_commit_max_delay`, ~ms) expires before any protocol
            // timer (~tens of ms), so the buffers flush before timers fire.
            if self.flush_group_commit() {
                continue;
            }
            let next = self
                .timers
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| (t.fire_at, t.node.0, t.id.0))
                .map(|(i, t)| (i, t.fire_at));
            match next {
                Some((i, at)) if at <= deadline => self.fire(i),
                _ => break,
            }
        }
        self.now = deadline;
    }

    /// Applies one schedulable event.
    pub fn perform(&mut self, event: DriverEvent) {
        match event {
            DriverEvent::Deliver(i) => self.deliver(i),
            DriverEvent::Fire(i) => self.fire(i),
            DriverEvent::Crash(n) => self.crash(n),
            DriverEvent::Recover(n) => self.recover(n),
        }
    }

    fn step_node(&mut self, node: NodeId, input: Input) {
        let i = node.0 as usize;
        let effects = match self.tracing.as_mut() {
            Some(rings) => self.nodes[i].step_traced(self.now, input, &mut rings[i]),
            None => self.nodes[i].step(self.now, input),
        };
        let group = self.config.group_commit_max_batch > 1;
        for effect in effects {
            match effect {
                Effect::Send { to, msg, lamport } => {
                    if group && !self.gc_pending[i].is_empty() {
                        self.gc_deferred[i].push(Effect::Send { to, msg, lamport });
                    } else {
                        self.messages.push(Envelope {
                            from: node,
                            to,
                            msg,
                            lamport,
                        });
                    }
                }
                Effect::SetTimer { id, delay, timer } => self.timers.push(PendingTimer {
                    node,
                    id,
                    fire_at: self.now + delay,
                    timer,
                }),
                Effect::CancelTimer(id) => {
                    self.timers.retain(|t| !(t.node == node && t.id == id));
                }
                Effect::Persist(delta) => {
                    if group {
                        // Coalesce; the covering flush happens at the batch
                        // cap (below) or when the schedule goes idle
                        // (`run_for`) or the caller flushes explicitly.
                        self.gc_pending[i].push(*delta);
                        if self.gc_pending[i].len() >= self.config.group_commit_max_batch
                            && !self.flush_node(node)
                        {
                            return; // node fail-stopped mid-flush
                        }
                    } else if !self.persist(node, &delta) {
                        // The append failed (wholly or torn): the write
                        // never became stable, so the effects that were to
                        // follow it must not happen — the node fail-stops
                        // mid-step, exactly like a crash between the disk
                        // write and the acks it would have covered.
                        self.down[i] = true;
                        self.timers.retain(|t| t.node != node);
                        self.step_node(node, Input::Crash);
                        return;
                    }
                }
                Effect::Output(ev) => {
                    if group && !self.gc_pending[i].is_empty() {
                        self.gc_deferred[i].push(Effect::Output(ev));
                    } else {
                        self.outputs.push((self.now, node, ev));
                    }
                }
            }
        }
    }

    /// Flushes `node`'s group-commit buffer: one batched journal append
    /// (the failpoint registry is consulted once per *flush*, matching a
    /// real host's one-write-per-fsync fault surface), then the deferred
    /// observable effects are released in their original order. Returns
    /// false if the node fail-stopped (append fault).
    fn flush_node(&mut self, node: NodeId) -> bool {
        let i = node.0 as usize;
        if !self.gc_pending[i].is_empty() {
            let batch = std::mem::take(&mut self.gc_pending[i]);
            let fault = self.failpoints[i].check(sites::JOURNAL_APPEND);
            let ok = match fault {
                None => {
                    self.journals[i].append_batch(&batch);
                    true
                }
                Some(FaultKind::AppendFail) => false,
                Some(FaultKind::TornWrite) => {
                    let total: usize = batch
                        .iter()
                        .map(|d| super::codec::encode_delta(d).len() + 8)
                        .sum();
                    let keep = self.failpoints[i].draw(total as u64) as usize;
                    self.journals[i].append_batch_torn(&batch, keep);
                    false
                }
                Some(FaultKind::BitFlip) => {
                    self.journals[i].append_batch(&batch);
                    let len = self.journals[i].bytes().len() as u64;
                    let byte = self.failpoints[i].draw(len) as usize;
                    let bit = self.failpoints[i].draw(8) as u8;
                    self.journals[i].flip_bit(byte, bit);
                    true
                }
            };
            if let Some(kind) = fault {
                self.trace_host(node, TraceEvent::FailpointTrip { kind });
            }
            if ok {
                self.trace_host(
                    node,
                    TraceEvent::JournalFlush {
                        records: batch.len() as u64,
                    },
                );
            }
            if !ok {
                // Nothing covered by the lost batch was acknowledged; the
                // node fail-stops exactly like a write-through append
                // fault, dropping the deferred effects with it.
                self.gc_deferred[i].clear();
                self.down[i] = true;
                self.timers.retain(|t| t.node != node);
                self.step_node(node, Input::Crash);
                return false;
            }
            self.flushes[i] += 1;
        }
        for effect in std::mem::take(&mut self.gc_deferred[i]) {
            match effect {
                Effect::Send { to, msg, lamport } => self.messages.push(Envelope {
                    from: node,
                    to,
                    msg,
                    lamport,
                }),
                Effect::Output(ev) => self.outputs.push((self.now, node, ev)),
                // buffer_step defers only Send/Output; timers and persists
                // are applied immediately, never deferred, so reaching one
                // of these arms would be a buffer_step bug — dropping the
                // effect is still safe.
                Effect::SetTimer { .. } | Effect::CancelTimer(_) | Effect::Persist(_) => {}
            }
        }
        true
    }

    /// Flushes every node's group-commit buffer; returns true if any node
    /// had buffered deltas or deferred effects to release.
    pub fn flush_group_commit(&mut self) -> bool {
        let mut any = false;
        for id in 0..self.nodes.len() as u32 {
            let i = id as usize;
            if self.down[i] {
                continue;
            }
            if !self.gc_pending[i].is_empty() || !self.gc_deferred[i].is_empty() {
                any = true;
                self.flush_node(NodeId(id));
            }
        }
        any
    }

    /// Journal flushes (header commits; fsyncs on a real host) performed
    /// by `node` so far.
    pub fn flushes(&self, node: NodeId) -> u64 {
        self.flushes[node.0 as usize]
    }

    /// Attaches a flight recorder of capacity `cap` to every node. Every
    /// engine transition and host-level journal event from here on is
    /// retained (bounded, oldest dropped first). Tracing is observational:
    /// effects, journals, and digests are byte-identical with or without
    /// it.
    pub fn enable_tracing(&mut self, cap: usize) {
        self.tracing = Some(vec![TraceRing::new(cap); self.nodes.len()]);
    }

    /// True once [`enable_tracing`](StepDriver::enable_tracing) ran.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.is_some()
    }

    /// `node`'s flight recorder, if tracing is enabled.
    pub fn trace_ring(&self, node: NodeId) -> Option<&TraceRing> {
        self.tracing.as_ref().map(|r| &r[node.0 as usize])
    }

    /// All retained records, causally merged across nodes (empty when
    /// tracing is disabled).
    pub fn merged_trace(&self) -> Vec<TraceRecord> {
        match &self.tracing {
            Some(rings) => {
                let refs: Vec<&TraceRing> = rings.iter().collect();
                super::trace::causal_merge(&refs)
            }
            None => Vec::new(),
        }
    }

    /// Stamps and records a host-level event (journal append/flush/replay,
    /// failpoint trip) against `node`'s recorder. No-op when tracing is
    /// disabled — host events, unlike engine events, do not consume
    /// sequence numbers in untraced runs, which is fine because nothing
    /// observes them there.
    fn trace_host(&mut self, node: NodeId, event: TraceEvent) {
        let i = node.0 as usize;
        if let Some(rings) = self.tracing.as_mut() {
            let (seq, lamport) = self.nodes[i].trace_stamp();
            rings[i].record(TraceRecord {
                at: self.now,
                node,
                seq,
                lamport,
                event,
            });
        }
    }

    /// A unified snapshot of the cluster's metrics: every node's registry
    /// merged, plus the driver's own journal-flush counter.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut merged = MetricsRegistry::new();
        for node in &self.nodes {
            merged.merge(&node.stats.registry);
        }
        merged.add(keys::JOURNAL_FLUSHES, self.flushes.iter().sum());
        merged
    }

    /// Deltas currently coalescing in `node`'s group-commit buffer.
    pub fn gc_buffered(&self, node: NodeId) -> usize {
        self.gc_pending[node.0 as usize].len()
    }

    /// Appends `delta` to `node`'s journal, consulting the failpoint
    /// registry. Returns false if the node must fail-stop (append failed
    /// or tore). A bit-flip fault appends normally, then silently corrupts
    /// a random journal bit — latent damage discovered at the next replay.
    fn persist(&mut self, node: NodeId, delta: &DurableDelta) -> bool {
        let i = node.0 as usize;
        match self.failpoints[i].check(sites::JOURNAL_APPEND) {
            None => {
                self.journals[i].append_delta(delta);
                self.trace_host(node, TraceEvent::JournalAppend { records: 1 });
                true
            }
            Some(FaultKind::AppendFail) => {
                self.trace_host(
                    node,
                    TraceEvent::FailpointTrip {
                        kind: FaultKind::AppendFail,
                    },
                );
                false
            }
            Some(FaultKind::TornWrite) => {
                let record_len = super::codec::encode_delta(delta).len() + 8;
                let keep = self.failpoints[i].draw(record_len as u64) as usize;
                self.journals[i].append_torn(delta, keep);
                self.trace_host(
                    node,
                    TraceEvent::FailpointTrip {
                        kind: FaultKind::TornWrite,
                    },
                );
                false
            }
            Some(FaultKind::BitFlip) => {
                self.journals[i].append_delta(delta);
                let len = self.journals[i].bytes().len() as u64;
                let byte = self.failpoints[i].draw(len) as usize;
                let bit = self.failpoints[i].draw(8) as u8;
                self.journals[i].flip_bit(byte, bit);
                self.trace_host(
                    node,
                    TraceEvent::FailpointTrip {
                        kind: FaultKind::BitFlip,
                    },
                );
                self.trace_host(node, TraceEvent::JournalAppend { records: 1 });
                true
            }
        }
    }

    /// A deterministic digest of the cluster's logical state: engine states,
    /// liveness flags, the pending message/timer pools (order-insensitive,
    /// expiry-time-blind), and the output history. Two drivers with equal
    /// digests behave identically under equal future schedules, so an
    /// explorer can prune revisits.
    pub fn state_digest(&self) -> u64 {
        let mut repr = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let _ = write!(
                repr,
                "n{i};down={};isl={};gcp={:?};gcd={:?};",
                self.down[i], self.partition[i], self.gc_pending[i], self.gc_deferred[i]
            );
            canonical_node(&mut repr, node);
        }
        let mut msgs: Vec<String> = self
            .messages
            .iter()
            .map(|e| format!("{}>{}:{:?}", e.from.0, e.to.0, e.msg))
            .collect();
        msgs.sort_unstable();
        let mut tmrs: Vec<String> = self
            .timers
            .iter()
            .map(|t| format!("{}#{}:{:?}", t.node.0, t.id.0, t.timer))
            .collect();
        tmrs.sort_unstable();
        for s in msgs.iter().chain(tmrs.iter()) {
            repr.push_str(s);
            repr.push('\n');
        }
        let _ = write!(repr, "outs={}", self.outputs.len());
        for (_, n, e) in &self.outputs {
            let _ = write!(repr, ";{}:{e:?}", n.0);
        }
        fnv1a(repr.as_bytes())
    }
}

/// Writes a canonical (iteration-order-independent) textual form of one
/// engine's full state into `out`.
fn canonical_node(out: &mut String, node: &ReplicaNode) {
    let d = &node.durable;
    let _ = write!(
        out,
        "v={},st={},dv={},e={},el={:?},obj={:x},log=({},{}),prep={:?},opc={},lg={:?},qf={};",
        d.version,
        d.stale,
        d.dversion,
        d.enumber,
        d.elist,
        d.object.digest(),
        d.log.len(),
        d.log.newest_version(),
        d.prepared,
        d.op_counter,
        d.last_good,
        d.quarantine_fence,
    );
    // Durable/Volatile keyed state lives in BTree collections, so plain
    // iteration is already in canonical (ascending-key) order.
    let decisions: Vec<_> = d.decisions.iter().map(|(op, c)| (*op, *c)).collect();
    let _ = write!(out, "dec={decisions:?};");

    let v = &node.vol;
    let _ = write!(out, "lock={:?},", v.lock.exclusive_holder());
    let shared: Vec<_> = v.lock.shared_holders().collect();
    let _ = write!(out, "shared={shared:?};");
    let leases: Vec<_> = v.lock_leases.iter().map(|(op, id)| (*op, id.0)).collect();
    let _ = write!(out, "leases={leases:?};");
    sorted_map(out, "writes", &v.writes);
    let _ = write!(out, "write_queue={:?};", v.write_queue);
    sorted_map(out, "reads", &v.reads);
    sorted_map(out, "epochs", &v.epochs);
    let attempts: Vec<_> = v
        .propagator
        .attempts
        .iter()
        .map(|(n, a)| (*n, *a))
        .collect();
    let _ = write!(
        out,
        "prop=({:?},{:?},{attempts:?},{});inc={:?};pep={:?};",
        v.propagator.remaining,
        v.propagator.in_flight,
        v.propagator.kick_armed,
        v.incoming_prop,
        v.pending_epoch_prepare,
    );
    let retry: Vec<_> = v.decision_retry_armed.iter().copied().collect();
    let _ = write!(
        out,
        "eck=({:?},{},{});dra={retry:?};rej={:?};elec={:?};seq={};rng={:?};",
        v.last_epoch_check_seen,
        v.epoch_check_active,
        v.epoch_retry_armed,
        v.rejoin,
        v.election,
        node.timer_seq,
        node.rng,
    );
}

fn sorted_map<V: std::fmt::Debug>(
    out: &mut String,
    label: &str,
    map: &std::collections::BTreeMap<crate::msg::OpId, V>,
) {
    // BTreeMap iterates in key order, so the rendering is canonical as-is.
    let entries: Vec<_> = map.iter().collect();
    let _ = write!(out, "{label}={entries:?};");
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}
