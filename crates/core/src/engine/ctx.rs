//! The per-step context handed to protocol handlers.
//!
//! This mirrors the callback context the simulator used to provide, but is
//! owned by the engine: effects accumulate into the step's output vector,
//! randomness comes from the engine's [`Rng64`], and timer ids come from
//! the node's own monotonic counter. Protocol handlers are substrate-blind
//! — they only ever see this struct.
//!
//! The context also carries the tracing state (see
//! [`trace`](super::trace)): a per-node sequence counter, the Lamport
//! causal counter, and the step's [`TraceSink`]. Both counters advance
//! identically whether the sink records or discards, so attaching a real
//! sink never changes a protocol-visible byte.

use coterie_base::{SimDuration, SimTime, TimerId};
use coterie_quorum::NodeId;

use crate::msg::{Msg, ProtocolEvent};
use crate::node::Timer;

use super::io::Effect;
use super::rng::Rng64;
use super::trace::{TraceEvent, TraceRecord, TraceSink};

/// The context threaded through every protocol handler during one
/// [`ReplicaNode::step`](crate::node::ReplicaNode::step).
pub struct NodeCtx<'a> {
    pub(crate) me: NodeId,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut Rng64,
    pub(crate) effects: &'a mut Vec<Effect>,
    pub(crate) timer_seq: &'a mut u64,
    pub(crate) lamport: &'a mut u64,
    pub(crate) trace_seq: &'a mut u64,
    pub(crate) sink: &'a mut dyn TraceSink,
}

impl<'a> NodeCtx<'a> {
    /// This node's id.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// The time of the input being processed (host-provided).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Requests delivery of `msg` to `to` (or a `CallFailed` bounce). The
    /// send ticks the Lamport counter and stamps the effect with it.
    pub fn send(&mut self, to: NodeId, msg: Msg) {
        *self.lamport += 1;
        let class = msg.class();
        self.effects.push(Effect::Send {
            to,
            msg,
            lamport: *self.lamport,
        });
        self.trace(TraceEvent::MsgSend { to, class });
    }

    /// Requests delivery of `msg` to every node in `targets`.
    pub fn multicast<I: IntoIterator<Item = NodeId>>(&mut self, targets: I, msg: Msg) {
        for to in targets {
            self.send(to, msg.clone());
        }
    }

    /// Arms a timer that fires after `delay` unless canceled or the node
    /// crashes first. Ids are node-unique (monotonic per engine lifetime).
    pub fn set_timer(&mut self, delay: SimDuration, timer: Timer) -> TimerId {
        let id = TimerId(*self.timer_seq);
        *self.timer_seq += 1;
        self.effects.push(Effect::SetTimer { id, delay, timer });
        id
    }

    /// Cancels a pending timer (no-op if already fired or unknown).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }

    /// Emits a client-visible protocol event.
    pub fn output(&mut self, out: ProtocolEvent) {
        self.effects.push(Effect::Output(out));
    }

    /// Draws a uniform value in `[0, n)` from the engine's deterministic
    /// RNG; `n` must be positive.
    pub fn rand_below(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }

    /// Merges a remote Lamport stamp into the local counter
    /// (`max(local, remote) + 1`) — called once per delivered message,
    /// before the handler runs, so every event the delivery causes is
    /// ordered after the send.
    pub(crate) fn observe_lamport(&mut self, remote: u64) {
        *self.lamport = (*self.lamport).max(remote) + 1;
    }

    /// Records a trace event, stamped with the step time, the per-node
    /// sequence counter (ticked here), and the current Lamport value. The
    /// counters advance even under a [`NoopSink`](super::trace::NoopSink),
    /// keeping enabled and disabled runs byte-identical.
    pub(crate) fn trace(&mut self, event: TraceEvent) {
        *self.trace_seq += 1;
        self.sink.record(TraceRecord {
            at: self.now,
            node: self.me,
            seq: *self.trace_seq,
            lamport: *self.lamport,
            event,
        });
    }
}
