//! Durability: deltas, the stable-storage contract, and an in-memory
//! journal.
//!
//! The engine never writes to disk; it *describes* what must become
//! durable. After every [`step`](crate::node::ReplicaNode::step) that
//! changes [`Durable`], the engine emits exactly one
//! [`Effect::Persist`](super::io::Effect::Persist) carrying a
//! [`DurableDelta`] — the precise set of fields that changed, computed by
//! diffing against a shadow copy. Two properties matter:
//!
//! * **Atomicity of epoch installation.** The paper requires the epoch
//!   tuple `(enumber, elist)` to change atomically; the delta carries the
//!   pair as one field, and a whole delta is applied atomically by
//!   [`StableStorage::append`], so no torn epoch can be observed on replay.
//! * **Write-ahead ordering.** The `Persist` effect is always the *first*
//!   effect of a step: a host that journals before sending guarantees the
//!   2PC prepare record is stable before the vote that promises it.

use bytes::Bytes;
use coterie_quorum::NodeId;

use crate::config::ProtocolConfig;
use crate::msg::{Action, OpId};
use crate::node::Durable;
use crate::store::{PageId, WriteLog};

/// The durable-state change produced by one engine step.
///
/// `None` / empty fields mean "unchanged". [`DurableDelta::apply`] replays
/// the change onto a [`Durable`]; [`DurableDelta::diff`] computes it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DurableDelta {
    /// New replica version number.
    pub version: Option<u64>,
    /// New stale flag.
    pub stale: Option<bool>,
    /// New desired version.
    pub dversion: Option<u64>,
    /// New epoch `(enumber, elist)` — one field so the pair is atomic.
    pub epoch: Option<(u64, Vec<NodeId>)>,
    /// Rewritten pages of the object.
    pub pages: Vec<(PageId, Bytes)>,
    /// Full replacement write log (logs are tiny and bounded; shipping the
    /// whole log keeps the delta trivially correct under trimming).
    pub log: Option<WriteLog>,
    /// New prepared-transaction slot (outer `Some` = changed; inner
    /// `Option` is the slot's new value).
    pub prepared: Option<Option<(OpId, Action)>>,
    /// Coordinator decisions recorded by this step. The decision map is
    /// append-only, so a delta only ever adds entries.
    pub decisions: Vec<(OpId, bool)>,
    /// New durable operation counter.
    pub op_counter: Option<u64>,
    /// New good list from the most recent write.
    pub last_good: Option<Vec<NodeId>>,
}

impl DurableDelta {
    /// Computes the delta carrying `old` to `new`, or `None` if the states
    /// are identical.
    ///
    /// Cheap by construction: scalar fields compare as integers, pages
    /// compare per-slot (`Bytes` content equality over refcounted slices),
    /// the log compares by `(len, newest version)` — sound because log
    /// versions are strictly increasing — and decisions compare by length,
    /// sound because the map is append-only.
    pub fn diff(old: &Durable, new: &Durable) -> Option<DurableDelta> {
        let mut d = DurableDelta::default();
        if new.version != old.version {
            d.version = Some(new.version);
        }
        if new.stale != old.stale {
            d.stale = Some(new.stale);
        }
        if new.dversion != old.dversion {
            d.dversion = Some(new.dversion);
        }
        if new.enumber != old.enumber || new.elist != old.elist {
            d.epoch = Some((new.enumber, new.elist.clone()));
        }
        debug_assert_eq!(old.object.n_pages(), new.object.n_pages());
        for p in 0..new.object.n_pages() as PageId {
            let (o, n) = (old.object.page(p), new.object.page(p));
            if o != n {
                // lint:allow(panic): p < n_pages, and old/new page counts are equal
                d.pages.push((p, n.expect("page in range").clone()));
            }
        }
        let log_id = |l: &WriteLog| (l.len(), l.newest_version());
        if log_id(&new.log) != log_id(&old.log) {
            d.log = Some(new.log.clone());
        }
        if new.prepared != old.prepared {
            d.prepared = Some(new.prepared.clone());
        }
        if new.decisions.len() != old.decisions.len() {
            // `decisions` is a BTreeMap, so the filtered additions come
            // out already sorted by op id — the order the journal records.
            let added: Vec<(OpId, bool)> = new
                .decisions
                .iter()
                .filter(|(op, _)| !old.decisions.contains_key(op))
                .map(|(op, commit)| (*op, *commit))
                .collect();
            debug_assert_eq!(
                added.len() + old.decisions.len(),
                new.decisions.len(),
                "decision map must be append-only"
            );
            d.decisions = added;
        }
        if new.op_counter != old.op_counter {
            d.op_counter = Some(new.op_counter);
        }
        if new.last_good != old.last_good {
            d.last_good = Some(new.last_good.clone());
        }
        if d == DurableDelta::default() {
            None
        } else {
            Some(d)
        }
    }

    /// Applies this delta to `durable`.
    pub fn apply(&self, durable: &mut Durable) {
        if let Some(v) = self.version {
            durable.version = v;
        }
        if let Some(s) = self.stale {
            durable.stale = s;
        }
        if let Some(v) = self.dversion {
            durable.dversion = v;
        }
        if let Some((enumber, elist)) = &self.epoch {
            durable.enumber = *enumber;
            durable.elist = elist.clone();
        }
        for (p, contents) in &self.pages {
            durable.object.write_page(*p, contents.clone());
        }
        if let Some(log) = &self.log {
            durable.log = log.clone();
        }
        if let Some(prepared) = &self.prepared {
            durable.prepared = prepared.clone();
        }
        for (op, commit) in &self.decisions {
            durable.decisions.insert(*op, *commit);
        }
        if let Some(c) = self.op_counter {
            durable.op_counter = c;
        }
        if let Some(g) = &self.last_good {
            durable.last_good = g.clone();
        }
    }
}

/// The contract between the engine's hosts and a durability backend.
///
/// `append` must be atomic: after a crash, replay sees every delta up to
/// some prefix boundary, never half of one. The in-memory [`MemJournal`]
/// satisfies this trivially; a disk-backed implementation would frame and
/// checksum records.
pub trait StableStorage {
    /// Atomically appends one step's durable change.
    fn append(&mut self, delta: &DurableDelta);

    /// Reconstructs the durable state from the journal: the pristine state
    /// for `config`, plus every appended delta in order.
    fn replay(&self, config: &ProtocolConfig) -> Durable;
}

/// An append-only in-memory journal of [`DurableDelta`]s with optional
/// compaction.
#[derive(Clone, Debug, Default)]
pub struct MemJournal {
    /// Compacted prefix, if [`compact`](MemJournal::compact) has run.
    base: Option<Durable>,
    /// Deltas appended since the base.
    deltas: Vec<DurableDelta>,
    appended_total: u64,
}

impl MemJournal {
    /// An empty journal.
    pub fn new() -> Self {
        MemJournal::default()
    }

    /// Number of deltas currently retained (since the last compaction).
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// True if nothing has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty() && self.base.is_none()
    }

    /// Total deltas appended over the journal's lifetime (compaction does
    /// not reset this).
    pub fn appended_total(&self) -> u64 {
        self.appended_total
    }

    /// The deltas retained since the last compaction, in append order.
    /// Determinism tests serialize these to compare runs byte-for-byte.
    pub fn deltas(&self) -> &[DurableDelta] {
        &self.deltas
    }

    /// Folds all retained deltas into a single base snapshot, bounding
    /// memory while preserving [`replay`](StableStorage::replay) results.
    pub fn compact(&mut self, config: &ProtocolConfig) {
        let folded = self.replay(config);
        self.base = Some(folded);
        self.deltas.clear();
    }
}

impl StableStorage for MemJournal {
    fn append(&mut self, delta: &DurableDelta) {
        self.deltas.push(delta.clone());
        self.appended_total += 1;
    }

    fn replay(&self, config: &ProtocolConfig) -> Durable {
        let mut durable = match &self.base {
            Some(base) => base.clone(),
            None => Durable::pristine(config),
        };
        for delta in &self.deltas {
            delta.apply(&mut durable);
        }
        durable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{LogEntry, PartialWrite};
    use coterie_quorum::GridCoterie;
    use std::sync::Arc;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::new(Arc::new(GridCoterie::new()), 4)
    }

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn diff_of_identical_states_is_none() {
        let d = Durable::pristine(&cfg());
        assert!(DurableDelta::diff(&d, &d.clone()).is_none());
    }

    #[test]
    fn diff_then_apply_round_trips() {
        let config = cfg();
        let old = Durable::pristine(&config);
        let mut new = old.clone();
        new.version = 3;
        new.stale = true;
        new.dversion = 5;
        new.enumber = 2;
        new.elist = vec![NodeId(0), NodeId(2)];
        new.object
            .apply(&PartialWrite::new([(1, b("hello")), (3, b("world"))]));
        new.log.push(LogEntry {
            version: 3,
            write: PartialWrite::new([(1, b("hello"))]),
        });
        new.prepared = Some((
            OpId {
                node: NodeId(1),
                seq: 9,
            },
            Action::MarkStale { desired_version: 7 },
        ));
        new.decisions.insert(
            OpId {
                node: NodeId(0),
                seq: 1,
            },
            true,
        );
        new.op_counter = 11;
        new.last_good = vec![NodeId(0)];

        let delta = DurableDelta::diff(&old, &new).expect("changed");
        let mut rebuilt = old.clone();
        delta.apply(&mut rebuilt);
        assert_eq!(rebuilt, new);
    }

    #[test]
    fn journal_replay_reconstructs_state() {
        let config = cfg();
        let mut state = Durable::pristine(&config);
        let mut journal = MemJournal::new();

        for v in 1..=6u64 {
            let mut next = state.clone();
            next.version = v;
            next.object
                .apply(&PartialWrite::new([((v % 4) as PageId, b("pg"))]));
            next.log.push(LogEntry {
                version: v,
                write: PartialWrite::new([((v % 4) as PageId, b("pg"))]),
            });
            let delta = DurableDelta::diff(&state, &next).expect("changed");
            journal.append(&delta);
            state = next;

            assert_eq!(journal.replay(&config), state);
        }
        assert_eq!(journal.appended_total(), 6);

        journal.compact(&config);
        assert_eq!(journal.len(), 0);
        assert_eq!(
            journal.replay(&config),
            state,
            "compaction preserves replay"
        );
        assert_eq!(journal.appended_total(), 6);
    }

    #[test]
    fn epoch_changes_atomically() {
        let config = cfg();
        let old = Durable::pristine(&config);
        let mut new = old.clone();
        new.enumber = 4;
        new.elist = vec![NodeId(1), NodeId(3)];
        let delta = DurableDelta::diff(&old, &new).unwrap();
        assert_eq!(delta.epoch, Some((4, vec![NodeId(1), NodeId(3)])));
        // The rest of the delta is empty: nothing else is touched.
        assert_eq!(
            DurableDelta {
                epoch: None,
                ..delta
            },
            DurableDelta::default()
        );
    }
}
