//! Durability: deltas, the stable-storage contract, and an in-memory
//! journal.
//!
//! The engine never writes to disk; it *describes* what must become
//! durable. After every [`step`](crate::node::ReplicaNode::step) that
//! changes [`Durable`], the engine emits exactly one
//! [`Effect::Persist`](super::io::Effect::Persist) carrying a
//! [`DurableDelta`] — the precise set of fields that changed, computed by
//! diffing against a shadow copy. Two properties matter:
//!
//! * **Atomicity of epoch installation.** The paper requires the epoch
//!   tuple `(enumber, elist)` to change atomically; the delta carries the
//!   pair as one field, and a whole delta is applied atomically by
//!   [`StableStorage::append`], so no torn epoch can be observed on replay.
//! * **Write-ahead ordering.** The `Persist` effect is always the *first*
//!   effect of a step: a host that journals before sending guarantees the
//!   2PC prepare record is stable before the vote that promises it.

use bytes::Bytes;
use coterie_quorum::NodeId;

use crate::config::ProtocolConfig;
use crate::msg::{Action, OpId};
use crate::node::Durable;
use crate::store::{PageId, WriteLog};

/// The durable-state change produced by one engine step.
///
/// `None` / empty fields mean "unchanged". [`DurableDelta::apply`] replays
/// the change onto a [`Durable`]; [`DurableDelta::diff`] computes it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DurableDelta {
    /// New replica version number.
    pub version: Option<u64>,
    /// New stale flag.
    pub stale: Option<bool>,
    /// New desired version.
    pub dversion: Option<u64>,
    /// New epoch `(enumber, elist)` — one field so the pair is atomic.
    pub epoch: Option<(u64, Vec<NodeId>)>,
    /// Rewritten pages of the object.
    pub pages: Vec<(PageId, Bytes)>,
    /// Full replacement write log (logs are tiny and bounded; shipping the
    /// whole log keeps the delta trivially correct under trimming).
    pub log: Option<WriteLog>,
    /// New prepared-transaction slot (outer `Some` = changed; inner
    /// `Option` is the slot's new value).
    pub prepared: Option<Option<(OpId, Action)>>,
    /// Coordinator decisions recorded by this step. The decision map is
    /// append-only, so a delta only ever adds entries.
    pub decisions: Vec<(OpId, bool)>,
    /// New durable operation counter.
    pub op_counter: Option<u64>,
    /// New good list from the most recent write.
    pub last_good: Option<Vec<NodeId>>,
    /// New quarantine fence (see [`Durable::quarantine_fence`]).
    pub quarantine_fence: Option<u64>,
    /// New rejoin-pending flag (see [`Durable::rejoin_pending`]).
    pub rejoin_pending: Option<bool>,
}

impl DurableDelta {
    /// Computes the delta carrying `old` to `new`, or `None` if the states
    /// are identical.
    ///
    /// Cheap by construction: scalar fields compare as integers, pages
    /// compare per-slot (`Bytes` content equality over refcounted slices),
    /// the log compares by `(len, newest version)` — sound because log
    /// versions are strictly increasing — and decisions compare by length,
    /// sound because the map is append-only.
    pub fn diff(old: &Durable, new: &Durable) -> Option<DurableDelta> {
        let mut d = DurableDelta::default();
        if new.version != old.version {
            d.version = Some(new.version);
        }
        if new.stale != old.stale {
            d.stale = Some(new.stale);
        }
        if new.dversion != old.dversion {
            d.dversion = Some(new.dversion);
        }
        if new.enumber != old.enumber || new.elist != old.elist {
            d.epoch = Some((new.enumber, new.elist.clone()));
        }
        debug_assert_eq!(old.object.n_pages(), new.object.n_pages());
        for p in 0..new.object.n_pages() as PageId {
            let (o, n) = (old.object.page(p), new.object.page(p));
            if o != n {
                // lint:allow(panic): p < n_pages, and old/new page counts are equal
                d.pages.push((p, n.expect("page in range").clone()));
            }
        }
        let log_id = |l: &WriteLog| (l.len(), l.newest_version());
        if log_id(&new.log) != log_id(&old.log) {
            d.log = Some(new.log.clone());
        }
        if new.prepared != old.prepared {
            d.prepared = Some(new.prepared.clone());
        }
        if new.decisions.len() != old.decisions.len() {
            // `decisions` is a BTreeMap, so the filtered additions come
            // out already sorted by op id — the order the journal records.
            let added: Vec<(OpId, bool)> = new
                .decisions
                .iter()
                .filter(|(op, _)| !old.decisions.contains_key(op))
                .map(|(op, commit)| (*op, *commit))
                .collect();
            debug_assert_eq!(
                added.len().saturating_add(old.decisions.len()),
                new.decisions.len(),
                "decision map must be append-only"
            );
            d.decisions = added;
        }
        if new.op_counter != old.op_counter {
            d.op_counter = Some(new.op_counter);
        }
        if new.last_good != old.last_good {
            d.last_good = Some(new.last_good.clone());
        }
        if new.quarantine_fence != old.quarantine_fence {
            d.quarantine_fence = Some(new.quarantine_fence);
        }
        if new.rejoin_pending != old.rejoin_pending {
            d.rejoin_pending = Some(new.rejoin_pending);
        }
        if d == DurableDelta::default() {
            None
        } else {
            Some(d)
        }
    }

    /// Applies this delta to `durable`.
    pub fn apply(&self, durable: &mut Durable) {
        if let Some(v) = self.version {
            durable.version = v;
        }
        if let Some(s) = self.stale {
            durable.stale = s;
        }
        if let Some(v) = self.dversion {
            durable.dversion = v;
        }
        if let Some((enumber, elist)) = &self.epoch {
            durable.enumber = *enumber;
            durable.elist = elist.clone();
        }
        for (p, contents) in &self.pages {
            durable.object.write_page(*p, contents.clone());
        }
        if let Some(log) = &self.log {
            durable.log = log.clone();
        }
        if let Some(prepared) = &self.prepared {
            durable.prepared = prepared.clone();
        }
        for (op, commit) in &self.decisions {
            durable.decisions.insert(*op, *commit);
        }
        if let Some(c) = self.op_counter {
            durable.op_counter = c;
        }
        if let Some(g) = &self.last_good {
            durable.last_good = g.clone();
        }
        if let Some(f) = self.quarantine_fence {
            durable.quarantine_fence = f;
        }
        if let Some(p) = self.rejoin_pending {
            durable.rejoin_pending = p;
        }
    }
}

/// The contract between the engine's hosts and a durability backend.
///
/// `append` must be atomic: after a crash, replay sees every delta up to
/// some prefix boundary, never half of one. The in-memory [`MemJournal`]
/// satisfies this trivially; a disk-backed implementation would frame and
/// checksum records.
pub trait StableStorage {
    /// Atomically appends one step's durable change.
    fn append(&mut self, delta: &DurableDelta);

    /// Reconstructs the durable state from the journal: the pristine state
    /// for `config`, plus every appended delta in order.
    fn replay(&self, config: &ProtocolConfig) -> Durable;
}

/// An append-only in-memory journal of [`DurableDelta`]s with optional
/// compaction.
#[derive(Clone, Debug, Default)]
pub struct MemJournal {
    /// Compacted prefix, if [`compact`](MemJournal::compact) has run.
    base: Option<Durable>,
    /// Deltas appended since the base.
    deltas: Vec<DurableDelta>,
    appended_total: u64,
}

impl MemJournal {
    /// An empty journal.
    pub fn new() -> Self {
        MemJournal::default()
    }

    /// Number of deltas currently retained (since the last compaction).
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// True if nothing has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty() && self.base.is_none()
    }

    /// Total deltas appended over the journal's lifetime (compaction does
    /// not reset this).
    pub fn appended_total(&self) -> u64 {
        self.appended_total
    }

    /// The deltas retained since the last compaction, in append order.
    /// Determinism tests serialize these to compare runs byte-for-byte.
    pub fn deltas(&self) -> &[DurableDelta] {
        &self.deltas
    }

    /// Folds all retained deltas into a single base snapshot, bounding
    /// memory while preserving [`replay`](StableStorage::replay) results.
    pub fn compact(&mut self, config: &ProtocolConfig) {
        let folded = self.replay(config);
        self.base = Some(folded);
        self.deltas.clear();
    }
}

impl StableStorage for MemJournal {
    fn append(&mut self, delta: &DurableDelta) {
        self.deltas.push(delta.clone());
        self.appended_total += 1;
    }

    fn replay(&self, config: &ProtocolConfig) -> Durable {
        let mut durable = match &self.base {
            Some(base) => base.clone(),
            None => Durable::pristine(config),
        };
        for delta in &self.deltas {
            delta.apply(&mut durable);
        }
        durable
    }
}

/// Journal format v2 magic bytes (`"CTJ2"`).
pub const JOURNAL_MAGIC: [u8; 4] = *b"CTJ2";

/// Byte length of the v2 header: magic, record count, count checksum.
pub const JOURNAL_HEADER_LEN: usize = 16;

/// Why a replay quarantined a journal instead of recovering from it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The magic bytes are wrong: this is not a v2 journal.
    BadMagic,
    /// The record-count header fails its checksum — the commit pointer
    /// itself is corrupt, so *which* records were acknowledged is unknown.
    HeaderCorrupt,
    /// A committed record (index < header count) extends past the end of
    /// the journal.
    RecordTruncated {
        /// 0-based index of the bad record.
        index: u64,
    },
    /// A committed record's payload fails its CRC-32.
    ChecksumMismatch {
        /// 0-based index of the bad record.
        index: u64,
    },
    /// A committed record's payload checksums correctly but does not
    /// decode as a [`DurableDelta`] (format damage the CRC missed, or an
    /// internal inconsistency such as non-increasing log versions).
    Undecodable {
        /// 0-based index of the bad record.
        index: u64,
        /// What the decoder objected to.
        what: &'static str,
    },
}

/// The outcome of a checked replay of a framed journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplayVerdict {
    /// Every committed record replayed and no extra bytes followed.
    Clean,
    /// All committed records replayed; trailing bytes past the last
    /// committed record were dropped. This is the signature of a torn
    /// final append — the record was never acknowledged (the count was
    /// not bumped), so dropping it is a correct crash recovery.
    TornTail {
        /// Unacknowledged bytes dropped from the tail.
        dropped_bytes: usize,
    },
    /// A record *inside* the committed prefix is damaged. Acknowledged
    /// durable state has been lost; the replica must not trust the
    /// replayed prefix as current and instead rejoins the cluster stale
    /// (see `handle_boot_quarantined`).
    Quarantined {
        /// What was damaged.
        reason: QuarantineReason,
    },
}

impl ReplayVerdict {
    /// True when the replayed state may boot normally (clean or torn
    /// tail); false when the replica must take the stale-rejoin path.
    pub fn is_bootable(&self) -> bool {
        !matches!(self, ReplayVerdict::Quarantined { .. })
    }
}

/// A checked replay: the reconstructed durable state (of the longest
/// intact committed prefix), how many records built it, and the verdict.
#[derive(Clone, Debug)]
pub struct FramedReplay {
    /// State rebuilt from the intact committed prefix.
    pub durable: Durable,
    /// Records applied to build it.
    pub records_applied: u64,
    /// What the replay concluded about the journal.
    pub verdict: ReplayVerdict,
}

/// Journal format v2: a byte buffer of length-prefixed, CRC-checksummed
/// [`DurableDelta`] records behind a checksummed record-count header.
///
/// Layout:
///
/// ```text
/// [magic "CTJ2" | count: u64 LE | crc32(count bytes): u32 LE]   header, 16 B
/// [len: u32 LE | crc32(payload): u32 LE | payload: len B]*      records
/// ```
///
/// An append writes the whole record *after* the current end, then bumps
/// the count header (the commit point, one atomic in-place sector write).
/// A crash between the two leaves a complete-but-uncommitted or torn
/// record after the committed prefix — replay drops it as
/// [`ReplayVerdict::TornTail`]. Damage *inside* the committed prefix
/// (checksum or decode failure, truncation, corrupt header) can only come
/// from media corruption and yields [`ReplayVerdict::Quarantined`]:
/// acknowledged state was lost, and recovering "as far as we got" would
/// silently forget 2PC votes and decisions the cluster already observed.
#[derive(Clone, Debug)]
pub struct FramedJournal {
    buf: Vec<u8>,
    /// Mirror of the committed record count (authoritative for appends;
    /// replay always re-reads it from the buffer).
    count: u64,
    appended_total: u64,
}

impl Default for FramedJournal {
    fn default() -> Self {
        FramedJournal::new()
    }
}

/// Little-endian `len` prefix for one record. Payloads are bounded far
/// below `u32::MAX` (encoded collections are `MAX_COUNT`-capped), so the
/// saturation is unreachable; if it ever fired, the record would fail its
/// own length check on replay rather than silently truncate.
fn len_prefix(payload: &[u8]) -> [u8; 4] {
    debug_assert!(u32::try_from(payload.len()).is_ok(), "oversized payload");
    u32::try_from(payload.len())
        .unwrap_or(u32::MAX)
        .to_le_bytes()
}

impl FramedJournal {
    /// A fresh journal holding only the header (count 0).
    pub fn new() -> Self {
        let mut j = FramedJournal {
            buf: Vec::with_capacity(256),
            count: 0,
            appended_total: 0,
        };
        j.buf.extend_from_slice(&JOURNAL_MAGIC);
        j.buf.extend_from_slice(&0u64.to_le_bytes());
        j.buf
            .extend_from_slice(&super::codec::crc32(&0u64.to_le_bytes()).to_le_bytes());
        j
    }

    /// Adopts raw bytes as a journal (mutation tests and host recovery).
    /// The count mirror is taken from the header if it is intact, else 0 —
    /// appending to a corrupt journal is not meaningful anyway.
    pub fn from_bytes(buf: Vec<u8>) -> Self {
        let count = read_committed_count(&buf).unwrap_or(0);
        FramedJournal {
            buf,
            count,
            appended_total: count,
        }
    }

    /// The raw journal bytes (determinism tests serialize these).
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Committed records, per the append-side mirror.
    pub fn committed_records(&self) -> u64 {
        self.count
    }

    /// Total records appended over the journal's lifetime (resets and
    /// torn appends included).
    pub fn appended_total(&self) -> u64 {
        self.appended_total
    }

    /// Appends one record and commits it by bumping the count header.
    pub fn append_delta(&mut self, delta: &DurableDelta) {
        let payload = super::codec::encode_delta(delta);
        self.buf.extend_from_slice(&len_prefix(&payload));
        self.buf
            .extend_from_slice(&super::codec::crc32(&payload).to_le_bytes());
        self.buf.extend_from_slice(&payload);
        self.count += 1;
        self.appended_total += 1;
        self.rewrite_header();
    }

    /// Group commit (DESIGN.md §10): appends every record of `deltas` and
    /// commits them all with a *single* header rewrite — one frame-flush
    /// (one fsync on real storage) amortized over the whole batch. The
    /// resulting bytes are identical to appending the same deltas one at a
    /// time: records are laid out in order and the header ends at the same
    /// final count, so replay cannot tell group commit happened.
    pub fn append_batch(&mut self, deltas: &[DurableDelta]) {
        if deltas.is_empty() {
            return;
        }
        for delta in deltas {
            let payload = super::codec::encode_delta(delta);
            self.buf.extend_from_slice(&len_prefix(&payload));
            self.buf
                .extend_from_slice(&super::codec::crc32(&payload).to_le_bytes());
            self.buf.extend_from_slice(&payload);
        }
        self.count += deltas.len() as u64;
        self.appended_total += deltas.len() as u64;
        self.rewrite_header();
    }

    /// A torn group-commit flush: only `keep` bytes of the batch's records
    /// reach the journal and the count is *not* bumped, so replay drops
    /// the whole batch as a torn tail. Correct because the single header
    /// rewrite is the batch's only commit point — a crash anywhere before
    /// it loses every delta of the batch, none of which was acknowledged
    /// (ack-before-flush). At least one byte is always dropped.
    pub fn append_batch_torn(&mut self, deltas: &[DurableDelta], keep: usize) {
        let mut record = Vec::new();
        for delta in deltas {
            let payload = super::codec::encode_delta(delta);
            record.extend_from_slice(&len_prefix(&payload));
            record.extend_from_slice(&super::codec::crc32(&payload).to_le_bytes());
            record.extend_from_slice(&payload);
        }
        let keep = keep.min(record.len().saturating_sub(1));
        self.buf
            .extend_from_slice(record.get(..keep).unwrap_or(&record));
        self.appended_total += deltas.len() as u64;
    }

    /// A torn append: only `keep` bytes of the record reach the journal
    /// and the count is *not* bumped — the on-media state after a crash
    /// mid-append. At least one byte is always dropped (a fully-written
    /// record would be indistinguishable from a pre-commit crash, which
    /// is the same recovery anyway).
    pub fn append_torn(&mut self, delta: &DurableDelta, keep: usize) {
        let payload = super::codec::encode_delta(delta);
        let mut record = Vec::with_capacity(payload.len().saturating_add(8));
        record.extend_from_slice(&len_prefix(&payload));
        record.extend_from_slice(&super::codec::crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        let keep = keep.min(record.len().saturating_sub(1));
        self.buf
            .extend_from_slice(record.get(..keep).unwrap_or(&record));
        self.appended_total += 1;
    }

    /// Flips one bit in place; returns false if `byte` is out of range.
    pub fn flip_bit(&mut self, byte: usize, bit: u8) -> bool {
        match self.buf.get_mut(byte) {
            Some(b) => {
                *b ^= 1u8 << (bit % 8);
                true
            }
            None => false,
        }
    }

    /// Drops unacknowledged bytes past the last committed record — the
    /// torn tail a crash mid-append leaves behind. Recovery must call this
    /// before appending again, or the next record would land after the
    /// garbage and corrupt the committed prefix. Returns the bytes
    /// dropped. A journal whose committed prefix does not parse (a
    /// quarantine case) is left untouched; [`reset_to`](Self::reset_to)
    /// owns that recovery.
    pub fn truncate_tail(&mut self) -> usize {
        if self.buf.len() < JOURNAL_HEADER_LEN || self.buf[..4] != JOURNAL_MAGIC {
            return 0;
        }
        let Some(count) = read_committed_count(&self.buf) else {
            return 0;
        };
        let mut pos = JOURNAL_HEADER_LEN;
        for _ in 0..count {
            // checked_add: a corrupted length prefix near usize::MAX must
            // not wrap `pos` back into the committed prefix.
            let Some(body) = pos.checked_add(8) else {
                return 0;
            };
            let Some(header) = self.buf.get(pos..body) else {
                return 0;
            };
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
            let Some(next) = body.checked_add(len) else {
                return 0;
            };
            if self.buf.len() < next {
                return 0;
            }
            pos = next;
        }
        let dropped = self.buf.len().saturating_sub(pos);
        self.buf.truncate(pos);
        self.count = count;
        dropped
    }

    /// Replaces the journal with a fresh one whose single record carries
    /// `durable` (as a delta from pristine). This is the quarantine-
    /// recovery baseline: the damaged history is discarded and the
    /// journal restarts from the state the replica rejoined with.
    pub fn reset_to(&mut self, durable: &Durable, config: &ProtocolConfig) {
        let mut fresh = FramedJournal::new();
        if let Some(delta) = DurableDelta::diff(&Durable::pristine(config), durable) {
            fresh.append_delta(&delta);
        }
        fresh.appended_total = self.appended_total.saturating_add(fresh.count);
        *self = fresh;
    }

    /// Replays the journal, verifying framing and checksums (see the type
    /// docs for the verdict semantics). Never panics, whatever the bytes.
    pub fn replay_checked(&self, config: &ProtocolConfig) -> FramedReplay {
        let mut durable = Durable::pristine(config);
        let buf = &self.buf;
        if buf.len() < JOURNAL_HEADER_LEN {
            // Journal creation itself was torn; nothing was ever
            // committed, so pristine boot is correct.
            return FramedReplay {
                durable,
                records_applied: 0,
                verdict: ReplayVerdict::TornTail {
                    dropped_bytes: buf.len(),
                },
            };
        }
        if buf[..4] != JOURNAL_MAGIC {
            return quarantined(durable, 0, QuarantineReason::BadMagic);
        }
        let count = match read_committed_count(buf) {
            Some(c) => c,
            None => return quarantined(durable, 0, QuarantineReason::HeaderCorrupt),
        };
        let mut pos = JOURNAL_HEADER_LEN;
        for index in 0..count {
            // checked_add throughout: on 32-bit hosts a corrupted length
            // prefix could wrap `pos + 8 + len` back inside the buffer and
            // mis-parse instead of quarantining.
            let Some(body) = pos.checked_add(8) else {
                return quarantined(durable, index, QuarantineReason::RecordTruncated { index });
            };
            let Some(header) = buf.get(pos..body) else {
                return quarantined(durable, index, QuarantineReason::RecordTruncated { index });
            };
            let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
            let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
            let Some(end) = body.checked_add(len) else {
                return quarantined(durable, index, QuarantineReason::RecordTruncated { index });
            };
            let Some(payload) = buf.get(body..end) else {
                return quarantined(durable, index, QuarantineReason::RecordTruncated { index });
            };
            if super::codec::crc32(payload) != crc {
                return quarantined(durable, index, QuarantineReason::ChecksumMismatch { index });
            }
            match super::codec::decode_delta(payload) {
                Ok(delta) => delta.apply(&mut durable),
                Err(e) => {
                    return quarantined(
                        durable,
                        index,
                        QuarantineReason::Undecodable {
                            index,
                            what: e.what,
                        },
                    );
                }
            }
            pos = end;
        }
        let dropped = buf.len().saturating_sub(pos);
        FramedReplay {
            durable,
            records_applied: count,
            verdict: if dropped == 0 {
                ReplayVerdict::Clean
            } else {
                ReplayVerdict::TornTail {
                    dropped_bytes: dropped,
                }
            },
        }
    }

    fn rewrite_header(&mut self) {
        if self.buf.len() < JOURNAL_HEADER_LEN {
            // Adopted bytes shorter than a header (torn creation): nothing
            // to rewrite in place; replay treats this as an empty journal.
            return;
        }
        let count_bytes = self.count.to_le_bytes();
        let crc = super::codec::crc32(&count_bytes).to_le_bytes();
        self.buf[4..12].copy_from_slice(&count_bytes);
        self.buf[12..16].copy_from_slice(&crc);
    }
}

/// The coalescing half of group commit (DESIGN.md §10): deltas accumulate
/// here until the batch cap is hit or the host's flush deadline fires, then
/// drain into one [`FramedJournal::append_batch`]. The buffer itself is
/// host-agnostic bookkeeping — *hosts* own the two correctness rules that
/// make coalescing safe:
///
/// * **Ack-before-flush**: every effect of a step whose `Persist` is still
///   buffered (sends, outputs — anything observable) must be deferred
///   until the covering flush commits. A buffered delta that never reaches
///   media is then indistinguishable from a crash just before the step.
/// * **Crash = torn tail**: a crash with a non-empty buffer loses the
///   whole buffered suffix; since nothing it covered was acknowledged,
///   replay's torn-tail classification recovers correctly.
#[derive(Clone, Debug, Default)]
pub struct GroupCommitBuffer {
    pending: Vec<DurableDelta>,
    max_batch: usize,
}

impl GroupCommitBuffer {
    /// A buffer flushing after at most `max_batch` deltas (minimum 1).
    pub fn new(max_batch: usize) -> Self {
        GroupCommitBuffer {
            pending: Vec::new(),
            max_batch: max_batch.max(1),
        }
    }

    /// Buffers one delta; returns true when the batch cap is reached and
    /// the caller must flush now.
    pub fn push(&mut self, delta: DurableDelta) -> bool {
        self.pending.push(delta);
        self.pending.len() >= self.max_batch
    }

    /// Deltas currently buffered.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The buffered deltas (digest/inspection; flushing uses `drain`).
    pub fn pending(&self) -> &[DurableDelta] {
        &self.pending
    }

    /// Takes the buffered batch, leaving the buffer empty.
    pub fn drain(&mut self) -> Vec<DurableDelta> {
        std::mem::take(&mut self.pending)
    }
}

/// Reads the committed count from a header, or `None` if the header is
/// missing or fails its checksum.
fn read_committed_count(buf: &[u8]) -> Option<u64> {
    let header = buf.get(..JOURNAL_HEADER_LEN)?;
    let mut count_bytes = [0u8; 8];
    count_bytes.copy_from_slice(&header[4..12]);
    let mut crc_bytes = [0u8; 4];
    crc_bytes.copy_from_slice(&header[12..16]);
    if super::codec::crc32(&count_bytes) != u32::from_le_bytes(crc_bytes) {
        return None;
    }
    Some(u64::from_le_bytes(count_bytes))
}

fn quarantined(durable: Durable, records_applied: u64, reason: QuarantineReason) -> FramedReplay {
    FramedReplay {
        durable,
        records_applied,
        verdict: ReplayVerdict::Quarantined { reason },
    }
}

impl StableStorage for FramedJournal {
    fn append(&mut self, delta: &DurableDelta) {
        self.append_delta(delta);
    }

    /// Unchecked-contract replay: returns the longest intact prefix. Hosts
    /// that care about the verdict call
    /// [`replay_checked`](FramedJournal::replay_checked) directly.
    fn replay(&self, config: &ProtocolConfig) -> Durable {
        self.replay_checked(config).durable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{LogEntry, PartialWrite};
    use coterie_quorum::GridCoterie;
    use std::sync::Arc;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::new(Arc::new(GridCoterie::new()), 4)
    }

    fn b(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn diff_of_identical_states_is_none() {
        let d = Durable::pristine(&cfg());
        assert!(DurableDelta::diff(&d, &d.clone()).is_none());
    }

    #[test]
    fn diff_then_apply_round_trips() {
        let config = cfg();
        let old = Durable::pristine(&config);
        let mut new = old.clone();
        new.version = 3;
        new.stale = true;
        new.dversion = 5;
        new.enumber = 2;
        new.elist = vec![NodeId(0), NodeId(2)];
        new.object
            .apply(&PartialWrite::new([(1, b("hello")), (3, b("world"))]));
        new.log.push(LogEntry {
            version: 3,
            write: PartialWrite::new([(1, b("hello"))]),
        });
        new.prepared = Some((
            OpId {
                node: NodeId(1),
                seq: 9,
            },
            Action::MarkStale { desired_version: 7 },
        ));
        new.decisions.insert(
            OpId {
                node: NodeId(0),
                seq: 1,
            },
            true,
        );
        new.op_counter = 11;
        new.last_good = vec![NodeId(0)];
        new.rejoin_pending = true;

        let delta = DurableDelta::diff(&old, &new).expect("changed");
        let mut rebuilt = old.clone();
        delta.apply(&mut rebuilt);
        assert_eq!(rebuilt, new);
    }

    #[test]
    fn journal_replay_reconstructs_state() {
        let config = cfg();
        let mut state = Durable::pristine(&config);
        let mut journal = MemJournal::new();

        for v in 1..=6u64 {
            let mut next = state.clone();
            next.version = v;
            next.object
                .apply(&PartialWrite::new([((v % 4) as PageId, b("pg"))]));
            next.log.push(LogEntry {
                version: v,
                write: PartialWrite::new([((v % 4) as PageId, b("pg"))]),
            });
            let delta = DurableDelta::diff(&state, &next).expect("changed");
            journal.append(&delta);
            state = next;

            assert_eq!(journal.replay(&config), state);
        }
        assert_eq!(journal.appended_total(), 6);

        journal.compact(&config);
        assert_eq!(journal.len(), 0);
        assert_eq!(
            journal.replay(&config),
            state,
            "compaction preserves replay"
        );
        assert_eq!(journal.appended_total(), 6);
    }

    /// A journal of `n` simple version-bump deltas plus the final state.
    fn build_framed(config: &ProtocolConfig, n: u64) -> (FramedJournal, Durable) {
        let mut state = Durable::pristine(config);
        let mut journal = FramedJournal::new();
        for v in 1..=n {
            let mut next = state.clone();
            next.version = v;
            next.object
                .apply(&PartialWrite::new([((v % 4) as PageId, b("pg"))]));
            next.log.push(LogEntry {
                version: v,
                write: PartialWrite::new([((v % 4) as PageId, b("pg"))]),
            });
            let delta = DurableDelta::diff(&state, &next).expect("changed");
            journal.append_delta(&delta);
            state = next;
        }
        (journal, state)
    }

    #[test]
    fn framed_clean_replay_reconstructs_state() {
        let config = cfg();
        let (journal, state) = build_framed(&config, 6);
        let replay = journal.replay_checked(&config);
        assert_eq!(replay.verdict, ReplayVerdict::Clean);
        assert_eq!(replay.records_applied, 6);
        assert_eq!(replay.durable, state);
        assert_eq!(journal.committed_records(), 6);
        // The StableStorage contract view agrees.
        assert_eq!(journal.replay(&config), state);
    }

    #[test]
    fn framed_torn_append_recovers_committed_prefix() {
        let config = cfg();
        let (mut journal, state) = build_framed(&config, 3);
        let mut next = state.clone();
        next.version = 9;
        let delta = DurableDelta::diff(&state, &next).expect("changed");
        journal.append_torn(&delta, 5);
        let replay = journal.replay_checked(&config);
        assert_eq!(replay.verdict, ReplayVerdict::TornTail { dropped_bytes: 5 });
        assert_eq!(replay.durable, state, "torn record dropped, prefix kept");
        assert!(replay.verdict.is_bootable());
    }

    #[test]
    fn framed_torn_append_never_keeps_whole_record() {
        let config = cfg();
        let (mut journal, state) = build_framed(&config, 1);
        let mut next = state.clone();
        next.version = 2;
        let delta = DurableDelta::diff(&state, &next).expect("changed");
        journal.append_torn(&delta, usize::MAX);
        let replay = journal.replay_checked(&config);
        assert!(
            matches!(replay.verdict, ReplayVerdict::TornTail { .. }),
            "even keep=MAX drops at least one byte: {:?}",
            replay.verdict
        );
        assert_eq!(replay.durable, state);
    }

    #[test]
    fn framed_midstream_bit_flip_quarantines() {
        let config = cfg();
        let (journal, _) = build_framed(&config, 5);
        // Flip one payload bit of the second record: offset just past the
        // header and the first record's frame.
        let mut corrupt = journal.clone();
        assert!(corrupt.flip_bit(JOURNAL_HEADER_LEN + 8 + 2, 3));
        let replay = corrupt.replay_checked(&config);
        match replay.verdict {
            ReplayVerdict::Quarantined { .. } => {}
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert!(!replay.verdict.is_bootable());
    }

    #[test]
    fn framed_header_count_flip_quarantines_not_truncates() {
        let config = cfg();
        let (journal, _) = build_framed(&config, 5);
        // Flip a count bit (header offset 4..12): without the header CRC
        // this would masquerade as a torn tail and silently drop
        // acknowledged records.
        let mut corrupt = journal.clone();
        assert!(corrupt.flip_bit(5, 0));
        let replay = corrupt.replay_checked(&config);
        assert_eq!(
            replay.verdict,
            ReplayVerdict::Quarantined {
                reason: QuarantineReason::HeaderCorrupt
            }
        );
    }

    #[test]
    fn framed_bad_magic_quarantines() {
        let config = cfg();
        let (journal, _) = build_framed(&config, 2);
        let mut corrupt = journal.clone();
        assert!(corrupt.flip_bit(0, 7));
        assert_eq!(
            corrupt.replay_checked(&config).verdict,
            ReplayVerdict::Quarantined {
                reason: QuarantineReason::BadMagic
            }
        );
    }

    #[test]
    fn framed_torn_creation_boots_pristine() {
        let config = cfg();
        let journal = FramedJournal::from_bytes(vec![b'C', b'T']);
        let replay = journal.replay_checked(&config);
        assert_eq!(replay.verdict, ReplayVerdict::TornTail { dropped_bytes: 2 });
        assert_eq!(replay.durable, Durable::pristine(&config));
    }

    #[test]
    fn framed_reset_to_restarts_history() {
        let config = cfg();
        let (mut journal, state) = build_framed(&config, 4);
        let total_before = journal.appended_total();
        journal.reset_to(&state, &config);
        let replay = journal.replay_checked(&config);
        assert_eq!(replay.verdict, ReplayVerdict::Clean);
        assert_eq!(replay.durable, state);
        assert_eq!(journal.committed_records(), 1);
        assert!(journal.appended_total() > total_before);
    }

    #[test]
    fn batch_append_is_byte_identical_to_sequential() {
        let config = cfg();
        let (one_by_one, state) = build_framed(&config, 5);
        // Re-derive the same delta sequence and append it as one batch.
        let mut deltas = Vec::new();
        let replayed = one_by_one.replay_checked(&config);
        assert_eq!(replayed.durable, state);
        let mut cur = Durable::pristine(&config);
        for v in 1..=5u64 {
            let mut next = cur.clone();
            next.version = v;
            next.object
                .apply(&PartialWrite::new([((v % 4) as PageId, b("pg"))]));
            next.log.push(LogEntry {
                version: v,
                write: PartialWrite::new([((v % 4) as PageId, b("pg"))]),
            });
            deltas.push(DurableDelta::diff(&cur, &next).expect("changed"));
            cur = next;
        }
        let mut batched = FramedJournal::new();
        batched.append_batch(&deltas);
        assert_eq!(batched.bytes(), one_by_one.bytes());
        assert_eq!(batched.committed_records(), 5);
    }

    #[test]
    fn torn_batch_flush_drops_whole_batch() {
        let config = cfg();
        let (mut journal, state) = build_framed(&config, 2);
        let d1 = DurableDelta {
            version: Some(3),
            ..DurableDelta::default()
        };
        let d2 = DurableDelta {
            version: Some(4),
            ..DurableDelta::default()
        };
        journal.append_batch_torn(&[d1, d2], usize::MAX);
        let replay = journal.replay_checked(&config);
        assert!(
            matches!(replay.verdict, ReplayVerdict::TornTail { .. }),
            "torn batch must classify as torn tail: {:?}",
            replay.verdict
        );
        assert_eq!(replay.durable, state, "no partial batch survives");
        // truncate_tail heals the journal for further appends.
        let mut healed = journal.clone();
        assert!(healed.truncate_tail() > 0);
        assert_eq!(healed.replay_checked(&config).verdict, ReplayVerdict::Clean);
    }

    #[test]
    fn epoch_changes_atomically() {
        let config = cfg();
        let old = Durable::pristine(&config);
        let mut new = old.clone();
        new.enumber = 4;
        new.elist = vec![NodeId(1), NodeId(3)];
        let delta = DurableDelta::diff(&old, &new).unwrap();
        assert_eq!(delta.epoch, Some((4, vec![NodeId(1), NodeId(3)])));
        // The rest of the delta is empty: nothing else is touched.
        assert_eq!(
            DurableDelta {
                epoch: None,
                ..delta
            },
            DurableDelta::default()
        );
    }
}
