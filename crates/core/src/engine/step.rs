//! The engine's single entry point: [`ReplicaNode::step`].
//!
//! One input in, a batch of effects out. The dispatch below is the former
//! simulator-callback wiring, now substrate-free: handlers receive an
//! engine-owned [`NodeCtx`] backed by locals, so the borrow of `self` stays
//! free for the protocol methods.

use coterie_base::SimTime;

use crate::config::Mode;
use crate::msg::Msg;
use crate::node::{ReplicaNode, Timer, Volatile};

use super::ctx::NodeCtx;
use super::io::{Effect, Input};
use super::metrics::keys;
use super::storage::DurableDelta;
use super::trace::{NoopSink, TraceEvent, TraceSink};

impl ReplicaNode {
    /// Advances the state machine by one input at time `now`, returning the
    /// effects the host must apply.
    ///
    /// If the step changed durable state, the **first** effect is the
    /// [`Effect::Persist`] describing the change; hosts that journal must
    /// make it stable before acting on the effects after it.
    pub fn step(&mut self, now: SimTime, input: Input) -> Vec<Effect> {
        let mut sink = NoopSink;
        self.step_traced(now, input, &mut sink)
    }

    /// [`step`](ReplicaNode::step) with an attached [`TraceSink`]: every
    /// protocol transition the step performs is reported to `sink` as a
    /// stamped [`TraceEvent`]. Tracing is purely
    /// observational — the returned effects, durable deltas, and digests
    /// are byte-identical to an untraced step.
    pub fn step_traced(
        &mut self,
        now: SimTime,
        input: Input,
        sink: &mut dyn TraceSink,
    ) -> Vec<Effect> {
        let mut effects = Vec::new();
        // Move the engine-owned substrate state into locals so the context
        // can borrow them while protocol handlers borrow `self`.
        let mut rng = self.rng;
        let mut timer_seq = self.timer_seq;
        let mut lamport = self.lamport;
        let mut trace_seq = self.trace_seq;
        {
            let mut ctx = NodeCtx {
                me: self.me,
                now,
                rng: &mut rng,
                effects: &mut effects,
                timer_seq: &mut timer_seq,
                lamport: &mut lamport,
                trace_seq: &mut trace_seq,
                sink,
            };
            self.dispatch(&mut ctx, input);
        }
        self.rng = rng;
        self.timer_seq = timer_seq;
        self.lamport = lamport;
        self.trace_seq = trace_seq;

        if let Some(delta) = DurableDelta::diff(&self.shadow, &self.durable) {
            delta.apply(&mut self.shadow);
            debug_assert_eq!(
                self.shadow, self.durable,
                "delta must capture the full change"
            );
            effects.insert(0, Effect::Persist(Box::new(delta)));
        }
        effects
    }

    fn dispatch(&mut self, ctx: &mut NodeCtx<'_>, input: Input) {
        match input {
            Input::Boot => self.handle_boot(ctx),
            Input::BootQuarantined => self.handle_boot_quarantined(ctx),
            Input::Crash => self.vol = Volatile::default(),
            Input::Deliver { from, msg, lamport } => {
                ctx.observe_lamport(lamport);
                self.handle_message(ctx, from, msg)
            }
            Input::CallFailed { to, msg } => self.handle_call_failed(ctx, to, msg),
            Input::TimerFired(timer) => self.handle_timer(ctx, timer),
            Input::External(request) => self.start_client_request(ctx, request, 0),
        }
    }

    fn handle_boot(&mut self, ctx: &mut NodeCtx<'_>) {
        // Fence any in-doubt prepared transaction behind the replica lock
        // and chase its outcome.
        if let Some((op, _)) = self.durable.prepared.clone() {
            self.vol.lock.force_exclusive(op);
            self.arm_decision_retry(ctx, op);
        }
        if matches!(self.config.mode, Mode::Dynamic { .. }) {
            self.arm_epoch_tick(ctx);
        }
        // A crash during the stale-rejoin handshake can replay clean (the
        // quarantined boot's own delta healed the journal), landing here
        // instead of in `handle_boot_quarantined`. The durable flag keeps
        // the interruption visible: re-enter the poll, because until it
        // completes this replica's desired version lacks the rejoin bound
        // and must not be trusted.
        if self.durable.rejoin_pending {
            self.start_rejoin(ctx);
        }
    }

    fn handle_message(&mut self, ctx: &mut NodeCtx<'_>, from: coterie_quorum::NodeId, msg: Msg) {
        let class = msg.class();
        self.stats.registry.inc(keys::msgs_in(class));
        ctx.trace(TraceEvent::MsgRecv { from, class });
        match msg {
            Msg::WriteReq { op } => self.srv_write_req(ctx, from, op),
            Msg::ReadReq { op } => self.srv_read_req(ctx, from, op),
            Msg::EpochCheckReq { op } => self.srv_epoch_check_req(ctx, from, op),
            Msg::StateResp { op, granted, state } => {
                self.on_state_resp(ctx, from, op, granted, state)
            }
            Msg::Release { op } => self.release_lock(ctx, op),
            Msg::Prepare { op, action, extra } => self.srv_prepare(ctx, from, op, action, extra),
            Msg::Vote { op, yes } => self.on_vote(ctx, from, op, yes),
            Msg::Decision { op, commit, chain } => self.srv_decision(ctx, from, op, commit, chain),
            Msg::DecisionQuery { op } => self.srv_decision_query(ctx, from, op),
            Msg::FetchReq { op } => self.srv_fetch_req(ctx, from, op),
            Msg::FetchResp { op, version, pages } => {
                self.on_fetch_resp(ctx, from, op, version, pages)
            }
            Msg::PropOffer { prop, version } => self.srv_prop_offer(ctx, from, prop, version),
            Msg::PropResp { prop, reply } => self.on_prop_resp(ctx, from, prop, reply),
            Msg::PropData {
                prop,
                payload,
                source_version,
            } => self.srv_prop_data(ctx, from, prop, payload, source_version),
            Msg::PropAck { prop, ok } => self.on_prop_ack(ctx, from, prop, ok),
            Msg::PropCancel { prop } => self.srv_prop_cancel(ctx, from, prop),
            Msg::Election { round } => self.srv_election(ctx, from, round),
            Msg::ElectionAlive { round } => self.on_election_alive(ctx, from, round),
            Msg::Coordinator => self.srv_coordinator(ctx, from),
            Msg::RejoinQuery { op } => self.srv_rejoin_query(ctx, from, op),
            Msg::RejoinInfo { op, state } => self.on_rejoin_info(ctx, from, op, state),
        }
    }

    fn handle_call_failed(&mut self, ctx: &mut NodeCtx<'_>, to: coterie_quorum::NodeId, msg: Msg) {
        let class = msg.class();
        self.stats.registry.inc(keys::msgs_bounced(class));
        ctx.trace(TraceEvent::MsgBounce { to, class });
        match msg {
            Msg::WriteReq { op } => self.on_write_peer_failed(ctx, op, to),
            Msg::ReadReq { op } => self.on_read_peer_failed(ctx, op, to),
            Msg::EpochCheckReq { op } => self.on_epoch_peer_failed(ctx, op, to),
            // An unreachable 2PC participant is an implicit "no" (it cannot
            // have prepared: it never received the Prepare).
            Msg::Prepare { op, .. } => self.on_vote(ctx, to, op, false),
            Msg::FetchReq { op } => self.on_fetch_failed(ctx, op, to),
            Msg::PropOffer { prop, .. } | Msg::PropData { prop, .. } => {
                self.on_prop_peer_failed(ctx, prop, to)
            }
            Msg::DecisionQuery { op } => {
                // Coordinator unreachable: stay blocked, re-query later
                // (deduplicated: at most one retry chain per op).
                if self
                    .durable
                    .prepared
                    .as_ref()
                    .is_some_and(|(p, _)| *p == op)
                {
                    self.arm_decision_retry(ctx, op);
                }
            }
            // Lost responses and notifications are covered by coordinator
            // timeouts; lost decisions are re-fetched by the participant.
            // An unreachable rejoin peer is retried by the RejoinRetry
            // timer chain.
            Msg::RejoinQuery { .. }
            | Msg::RejoinInfo { .. }
            | Msg::StateResp { .. }
            | Msg::Vote { .. }
            | Msg::Decision { .. }
            | Msg::Release { .. }
            | Msg::FetchResp { .. }
            | Msg::PropResp { .. }
            | Msg::PropAck { .. }
            | Msg::PropCancel { .. }
            | Msg::Election { .. }
            | Msg::ElectionAlive { .. }
            | Msg::Coordinator => {}
        }
    }

    fn handle_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: Timer) {
        match timer {
            Timer::Collect { op } => self.on_collect_timeout(ctx, op),
            Timer::Votes { op } => self.on_vote_timeout(ctx, op),
            Timer::Fetch { op } => self.on_fetch_timeout(ctx, op),
            Timer::RetryClient { attempt, request } => {
                self.start_client_request(ctx, request, attempt)
            }
            Timer::LockLease { op } => self.handle_lock_lease(ctx, op),
            Timer::EpochTick => self.on_epoch_tick(ctx),
            Timer::EpochRetry => self.on_epoch_retry(ctx),
            Timer::PropKick => self.on_prop_kick(ctx),
            Timer::WriteQueueKick => self.on_write_queue_kick(ctx),
            Timer::PropTimeout { prop } => self.on_prop_timeout(ctx, prop),
            Timer::PropLease { prop } => self.on_prop_lease(ctx, prop),
            Timer::DecisionRetry { op } => self.on_decision_retry(ctx, op),
            Timer::RejoinRetry => self.on_rejoin_retry(ctx),
            Timer::ElectionTimeout { round } => self.on_election_timeout(ctx, round),
            // Host-owned: journaling hosts intercept this before the engine
            // ever sees it. Reaching here (e.g. a host without group
            // commit replaying a recorded timer) is a harmless no-op.
            Timer::HostFlush => {}
        }
    }
}
