//! The sans-I/O protocol engine.
//!
//! This layer is the entire protocol of the paper — write, read,
//! propagation, and epoch checking — packaged as a **pure deterministic
//! state machine**. A replica consumes [`Input`] events and returns a
//! `Vec<`[`Effect`]`>`; it never touches a clock, an RNG source, a network
//! socket, or a disk:
//!
//! * **time** is told to the engine with every [`ReplicaNode::step`] call;
//! * **randomness** (retry jitter, propagation staggering) comes from an
//!   engine-owned [`Rng64`] seeded from
//!   [`ProtocolConfig::seed`](crate::config::ProtocolConfig::seed), so it is
//!   part of the state machine, not an ambient source;
//! * **transport, timers, durability** are requested as effects and applied
//!   by whatever host embeds the engine — the discrete-event simulator, the
//!   threaded runtime (both via the `simnet-host` feature), or the
//!   substrate-free [`StepDriver`].
//!
//! **Determinism guarantee:** two `ReplicaNode`s constructed with the same
//! `(NodeId, ProtocolConfig)` and fed the same sequence of `(now, Input)`
//! pairs return byte-identical effect sequences and end in identical
//! states. Everything observable flows through `step`.
//!
//! Durable state (the paper's §4 per-node tuple plus the 2PC artifacts)
//! additionally travels through [`Effect::Persist`]: whenever a step
//! changes [`Durable`](crate::node::Durable), the engine prepends a
//! [`DurableDelta`] describing exactly what changed — epoch installation is
//! a single atomic delta, mirroring the paper's atomic epoch commit. Hosts
//! that care about real durability append deltas to a [`StableStorage`]
//! journal; replaying the journal reconstructs `Durable` after a crash.

pub mod codec;
pub mod ctx;
pub mod driver;
pub mod failpoint;
pub mod io;
pub mod metrics;
pub mod rng;
pub mod step;
pub mod storage;
pub mod trace;

pub use codec::{crc32, decode_delta, encode_delta, DecodeError};
pub use coterie_base::{SimDuration, SimTime, TimerId};
pub use ctx::NodeCtx;
pub use driver::{DriverEvent, StepDriver};
pub use failpoint::{sites, Failpoints, FaultKind, FiredFault};
pub use io::{Effect, Input};
pub use metrics::{keys, Histogram, MetricsRegistry};
pub use rng::Rng64;
pub use storage::{
    DurableDelta, FramedJournal, FramedReplay, MemJournal, QuarantineReason, ReplayVerdict,
    StableStorage,
};
pub use trace::{
    causal_merge, render_jsonl, NoopSink, ReplayClass, TraceEvent, TraceRecord, TraceRing,
    TraceSink,
};

#[allow(unused_imports)] // doc links
use crate::node::ReplicaNode;
