//! # coterie-core
//!
//! The dynamic structured coterie protocol of Rabinovich & Lazowska
//! (SIGMOD 1992, "Improving Fault Tolerance and Supporting Partial Writes
//! in Structured Coterie Protocols for Replicated Objects").
//!
//! Every replica runs a [`ReplicaNode`], a **sans-I/O state machine**
//! (see [`engine`]) that implements:
//!
//! * the **write protocol** (§4.1): quorum permission over the current
//!   epoch, the common light path, `HeavyProcedure` when the light quorum
//!   fails, stale marking with desired version numbers, and two-phase
//!   commit;
//! * the **read protocol**: shared-lock quorum, current-replica selection
//!   honoring desired version numbers, and a single data fetch;
//! * the **propagation protocol** (§4.2): asynchronous catch-up of stale
//!   replicas by log shipping or snapshots, with the three-way offer
//!   handshake;
//! * the **epoch checking protocol** (§4.3): periodic all-replica polls that
//!   atomically re-form the epoch around failures and repairs — this is
//!   what makes a structured coterie protocol *dynamic*;
//! * the **static baselines**: the conventional static protocol
//!   ([`Mode::Static`]) and the conventional partial-write discipline
//!   ([`WriteMode::WriteAllCurrent`]) the paper compares against.
//!
//! The protocol is generic over the coterie rule: plugging in
//! [`coterie_quorum::GridCoterie`] yields the paper's *dynamic grid
//! protocol*; [`coterie_quorum::MajorityCoterie`] yields dynamic voting.
//!
//! The engine consumes [`Input`]s and emits [`Effect`]s; hosts apply them
//! to a substrate. The [`StepDriver`] below is the substrate-free host
//! (the `simnet-host` feature adds adapters for the discrete-event
//! simulator and the threaded runtime):
//!
//! ```
//! use coterie_core::{ClientRequest, PartialWrite, ProtocolConfig, StepDriver};
//! use coterie_base::SimDuration;
//! use coterie_quorum::{GridCoterie, NodeId};
//! use std::sync::Arc;
//!
//! let config = ProtocolConfig::new(Arc::new(GridCoterie::new()), 9);
//! let mut driver = StepDriver::new(9, config);
//! driver.inject(
//!     NodeId(0),
//!     ClientRequest::Write {
//!         id: 1,
//!         write: PartialWrite::new([(0, bytes::Bytes::from_static(b"hello"))]),
//!     },
//! );
//! driver.run_for(SimDuration::from_secs(1));
//! assert!(driver
//!     .outputs()
//!     .iter()
//!     .any(|(_, _, e)| matches!(e, coterie_core::ProtocolEvent::WriteOk { .. })));
//! ```

pub mod classify;
pub mod config;
pub mod election;
pub mod engine;
pub mod epoch;
#[cfg(feature = "simnet-host")]
pub mod host;
pub mod locks;
pub mod msg;
pub mod node;
pub mod propagate;
pub mod read;
pub mod rejoin;
mod router;
pub mod server;
pub mod store;
pub mod write;

pub use classify::Classified;
pub use config::{Mode, ProtocolConfig, WriteMode};
pub use election::InitiatorPolicy;
pub use engine::driver::{Envelope, PendingTimer};
pub use engine::{
    causal_merge, keys, render_jsonl, DriverEvent, DurableDelta, Effect, Failpoints, FaultKind,
    FiredFault, FramedJournal, FramedReplay, Histogram, Input, MemJournal, MetricsRegistry,
    NodeCtx, NoopSink, QuarantineReason, ReplayClass, ReplayVerdict, Rng64, StableStorage,
    StepDriver, TraceEvent, TraceRecord, TraceRing, TraceSink,
};
#[cfg(feature = "simnet-host")]
pub use host::{JournaledNode, WireMsg};
pub use locks::{LockGrant, ReplicaLock};
pub use msg::{
    Action, ClientRequest, FailReason, Msg, MsgClass, OpId, PropPayload, PropReply, ProtocolEvent,
    StateTuple,
};
pub use node::{Durable, NodeStats, ReplicaNode, Timer, Volatile};
pub use rejoin::RejoinState;
pub use store::{LogEntry, PageId, PagedObject, PartialWrite, WriteLog};
