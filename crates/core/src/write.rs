//! The write coordinator (§4.1 of the paper and its Appendix pseudo-code).
//!
//! Light path: ask a quorum over the coordinator's epoch list for
//! permission; if the granted responses include a write quorum over the
//! maximum-epoch list and contain a current replica, apply the write to the
//! current ("good") replicas and mark the rest stale, under two-phase
//! commit. Otherwise fall back to `HeavyProcedure`: poll *all* replicas and
//! re-evaluate; if even that fails, abort — "there is no reason to wait for
//! possible epoch change because such an operation can succeed only if it
//! can obtain a quorum as well".
//!
//! The [`WriteMode::WriteAllCurrent`](crate::config::WriteMode) baseline
//! implements the conventional partial-write discipline the paper argues
//! against: a write needs a quorum of *current* replicas, so obsolete
//! quorum members must be synchronously reconciled first.

use crate::classify::Classified;
use crate::config::WriteMode;
use crate::engine::metrics::keys;
use crate::engine::trace::TraceEvent;
use crate::msg::{Action, ClientRequest, FailReason, Msg, OpId, ProtocolEvent, StateTuple};
use crate::node::{NodeCtx, ReplicaNode, Timer};
use crate::store::PartialWrite;
use bytes::Bytes;
use coterie_base::TimerId;
use coterie_quorum::{quorum_seed, NodeId, NodeSet, QuorumKind};
use std::collections::BTreeMap;

/// Phase of a coordinated write.
#[derive(Clone, Debug)]
pub enum WPhase {
    /// Gathering permission-phase responses.
    Collect,
    /// Write-all-current baseline: fetching a reconciliation snapshot from
    /// a current replica before committing.
    FetchBase {
        /// Evaluated responses that triggered the reconciliation.
        classified: Classified,
        /// Obsolete quorum members to reconcile.
        targets: Vec<NodeId>,
        /// The snapshot source.
        source: NodeId,
        /// Fetch timeout.
        timer: TimerId,
    },
    /// Two-phase commit in progress.
    Voting {
        /// Required participants (the quorum responders); all must vote yes.
        participants: Vec<NodeId>,
        /// Required participants that voted yes so far.
        yes: NodeSet,
        /// Best-effort extra current replicas (§4.1 safety threshold);
        /// their no-votes and failures are ignored.
        optional: Vec<NodeId>,
        /// Optional participants that voted yes.
        optional_yes: NodeSet,
        /// The version this write produces.
        new_version: u64,
        /// Nodes being marked stale.
        stale: Vec<NodeId>,
        /// Vote timeout.
        timer: TimerId,
    },
}

/// One client write riding in a (possibly batched) write round.
#[derive(Clone, Debug)]
pub struct BatchEntry {
    /// The client request id (echoed in the response).
    pub client_id: u64,
    /// The write payload.
    pub write: PartialWrite,
    /// Retry attempt (0 for the first try).
    pub attempt: u32,
}

/// Volatile state of one coordinated write round.
#[derive(Clone, Debug)]
pub struct WriteCoordinator {
    /// The operation id.
    pub op: OpId,
    /// The client writes committing in this round, in commit order: entry
    /// `i` produces version `new_version - batch.len() + 1 + i`. A single
    /// entry is the unbatched case; more is coordinator-side write
    /// batching (DESIGN.md §10).
    pub batch: Vec<BatchEntry>,
    /// How many consecutive rounds (this one included) have run under one
    /// permission phase; 0 means this round ran its own permission phase.
    /// Bounded by [`pipeline_window`](crate::config::ProtocolConfig::pipeline_window).
    pub chain_len: u32,
    /// Current phase.
    pub phase: WPhase,
    /// Granted (locked) responses by node.
    pub granted: BTreeMap<NodeId, StateTuple>,
    /// Nodes that answered but refused the lock (busy).
    pub refused: NodeSet,
    /// Nodes that failed (`RPC.CallFailed` or collection timeout).
    pub failed: NodeSet,
    /// Nodes polled so far.
    pub polled: NodeSet,
    /// Whether `HeavyProcedure` has run.
    pub heavy: bool,
    /// Collection timeout, while in `Collect`.
    pub collect_timer: Option<TimerId>,
}

impl WriteCoordinator {
    fn answered(&self) -> NodeSet {
        NodeSet::from_iter(self.granted.keys().copied())
            .union(self.refused)
            .union(self.failed)
    }

    fn collect_done(&self) -> bool {
        self.polled.is_subset_of(self.answered())
    }
}

impl ReplicaNode {
    /// Starts coordinating a client write. With batching enabled, a write
    /// arriving while another round is in flight queues instead of opening
    /// a competing round against the same replicas; the queue drains into
    /// the next round (one permission phase and one 2PC for the whole
    /// batch) when the in-flight round finishes.
    pub(crate) fn start_write(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        client_id: u64,
        write: PartialWrite,
        attempt: u32,
    ) {
        let entry = BatchEntry {
            client_id,
            write,
            attempt,
        };
        if self.config.max_write_batch > 1 && self.config.write_mode == WriteMode::StaleMarking {
            // Batched mode: every write goes through the queue, so an
            // arrival coalesces with an in-flight round's successors and
            // with a requeued batch waiting out its backoff.
            self.vol.write_queue.push_back(entry);
            self.maybe_launch_queued(ctx);
            return;
        }
        self.begin_write_round(ctx, vec![entry]);
    }

    /// Launches the next queued batch if no round is in flight and the
    /// queue is not held under contention backoff.
    pub(crate) fn maybe_launch_queued(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.vol.write_queue.is_empty()
            || self.vol.write_queue_held
            || !self.vol.writes.is_empty()
        {
            return;
        }
        let take = self
            .config
            .max_write_batch
            .max(1)
            .min(self.vol.write_queue.len());
        let batch: Vec<BatchEntry> = self.vol.write_queue.drain(..take).collect();
        self.begin_write_round(ctx, batch);
    }

    /// Opens a write round (permission phase) for `batch`.
    fn begin_write_round(&mut self, ctx: &mut NodeCtx<'_>, batch: Vec<BatchEntry>) {
        let op = self.next_op();
        let view = self.durable.epoch_view();
        let seed = quorum_seed(self.me, op.seq);
        // The quorum function; under write-all-current the conventional
        // discipline polls everyone up front (§1: "the coordinator must
        // either perform the write on all accessible replicas ...").
        let quorum = match self.config.write_mode {
            WriteMode::StaleMarking => {
                self.config
                    .rule
                    .pick_quorum(&view, view.set(), seed, QuorumKind::Write)
            }
            WriteMode::WriteAllCurrent => Some(NodeSet::from_iter(self.all_nodes())),
        };
        let Some(quorum) = quorum else {
            for entry in batch {
                self.stats.registry.inc(keys::WRITES_FAILED);
                ctx.output(ProtocolEvent::Failed {
                    id: entry.client_id,
                    reason: FailReason::NoQuorum,
                });
            }
            // No round went in flight, so nothing will complete later to
            // drain the queue; give queued writes their own (terminal)
            // evaluation now. Bounded: every recursion drains the queue.
            self.maybe_launch_queued(ctx);
            return;
        };
        let timeout = self.config.collect_timeout;
        let timer = ctx.set_timer(timeout, Timer::Collect { op });
        let wc = WriteCoordinator {
            op,
            batch,
            chain_len: 0,
            phase: WPhase::Collect,
            granted: BTreeMap::new(),
            refused: NodeSet::new(),
            failed: NodeSet::new(),
            polled: quorum,
            heavy: matches!(self.config.write_mode, WriteMode::WriteAllCurrent),
            collect_timer: Some(timer),
        };
        for node in quorum.iter() {
            ctx.send(node, Msg::WriteReq { op });
        }
        self.vol.writes.insert(op, wc);
    }

    /// A permission response for a write op.
    pub(crate) fn write_state_resp(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        op: OpId,
        granted: bool,
        state: StateTuple,
    ) {
        let Some(wc) = self.vol.writes.get_mut(&op) else {
            return;
        };
        if !matches!(wc.phase, WPhase::Collect) {
            return; // late response; the lock lease will clean up
        }
        if granted {
            wc.granted.insert(state.node, state);
        } else {
            wc.refused.insert(state.node);
        }
        if wc.collect_done() {
            self.evaluate_write(ctx, op);
        }
    }

    /// `RPC.CallFailed` for a write permission request.
    pub(crate) fn on_write_peer_failed(&mut self, ctx: &mut NodeCtx<'_>, op: OpId, to: NodeId) {
        let Some(wc) = self.vol.writes.get_mut(&op) else {
            return;
        };
        if !matches!(wc.phase, WPhase::Collect) {
            return;
        }
        wc.failed.insert(to);
        if wc.collect_done() {
            self.evaluate_write(ctx, op);
        }
    }

    /// Permission-phase timeout: treat silent nodes as failed.
    pub(crate) fn write_collect_timeout(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        let Some(wc) = self.vol.writes.get_mut(&op) else {
            return;
        };
        if !matches!(wc.phase, WPhase::Collect) {
            return;
        }
        wc.collect_timer = None;
        let silent = wc.polled.difference(wc.answered());
        wc.failed = wc.failed.union(silent);
        self.evaluate_write(ctx, op);
    }

    /// The decision core: the paper's `Write` / `HeavyProcedure` branches.
    fn evaluate_write(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        let Some(wc) = self.vol.writes.get_mut(&op) else {
            return;
        };
        if let Some(t) = wc.collect_timer.take() {
            ctx.cancel_timer(t);
        }
        let classified = Classified::evaluate(
            &*self.config.rule,
            &mut self.vol.plans,
            &wc.granted,
            QuorumKind::Write,
        );
        match classified {
            Some(c) if c.has_quorum => {
                if !c.has_current_replica() {
                    // "RESPONSES do not contain the response from a current
                    // replica": HeavyProcedure, or abort if already heavy.
                    if wc.heavy {
                        self.finish_write_fail(ctx, op, FailReason::NoCurrentReplica);
                    } else {
                        self.go_heavy_write(ctx, op);
                    }
                    return;
                }
                match self.config.write_mode {
                    WriteMode::StaleMarking => self.start_write_commit(ctx, op, c),
                    WriteMode::WriteAllCurrent => self.start_wac_commit(ctx, op, c),
                }
            }
            _ => {
                if wc.heavy {
                    // Terminal: decide between a retryable contention
                    // failure and a hard quorum failure.
                    let reason = self.write_failure_reason(op);
                    self.finish_write_fail(ctx, op, reason);
                } else if self.write_failure_reason(op) == FailReason::Contention {
                    // Busy (not failed) replicas blocked the quorum. The
                    // heavy procedure exists for *failures*; contention is
                    // better served by releasing everything and retrying
                    // the light path after backoff.
                    self.finish_write_fail(ctx, op, FailReason::Contention);
                } else {
                    self.go_heavy_write(ctx, op);
                }
            }
        }
    }

    /// Would the refused (busy) nodes have completed a quorum? Then the
    /// failure is contention and worth retrying.
    fn write_failure_reason(&mut self, op: OpId) -> FailReason {
        let Some(wc) = self.vol.writes.get(&op) else {
            return FailReason::NoQuorum;
        };
        let optimistic: BTreeMap<NodeId, StateTuple> = wc
            .granted
            .values()
            .cloned()
            .chain(wc.refused.iter().map(|n| StateTuple {
                node: n,
                version: 0,
                dversion: 0,
                stale: false,
                elist: self.durable.elist.clone(),
                enumber: self.durable.enumber,
                last_good: Vec::new(),
                wlocked: false,
                prepared_version: None,
            }))
            .map(|s| (s.node, s))
            .collect();
        match Classified::evaluate(
            &*self.config.rule,
            &mut self.vol.plans,
            &optimistic,
            QuorumKind::Write,
        ) {
            Some(c) if c.has_quorum && !wc.refused.is_empty() => FailReason::Contention,
            _ => FailReason::NoQuorum,
        }
    }

    /// `HeavyProcedure`: poll every replica not yet polled and re-evaluate.
    fn go_heavy_write(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        self.stats.registry.inc(keys::HEAVY_RUNS);
        let all = NodeSet::from_iter(self.all_nodes());
        let Some(wc) = self.vol.writes.get_mut(&op) else {
            return;
        };
        wc.heavy = true;
        let remaining = all.difference(wc.polled);
        if remaining.is_empty() {
            // Nothing new to ask: re-evaluate terminally.
            self.evaluate_write(ctx, op);
            return;
        }
        wc.polled = all;
        let timeout = self.config.collect_timeout;
        wc.collect_timer = Some(ctx.set_timer(timeout, Timer::Collect { op }));
        for node in remaining.iter() {
            ctx.send(node, Msg::WriteReq { op });
        }
    }

    /// Stale-marking commit: `do-update` to GOOD, `mark-stale` to STALE,
    /// under 2PC — plus the §4.1 safety-threshold extras: when GOOD is
    /// smaller than the threshold, additional current replicas (taken from
    /// the previous write's recorded good list) receive the update too,
    /// best-effort and with no prior permission round.
    fn start_write_commit(&mut self, ctx: &mut NodeCtx<'_>, op: OpId, c: Classified) {
        let threshold = self.config.safety_threshold;
        let mut optional: Vec<NodeId> = Vec::new();
        if threshold > 0 && c.good.len() < threshold {
            for &cand in &c.last_good {
                if c.good.len() + optional.len() >= threshold {
                    break;
                }
                if !c.responders.contains(cand) {
                    optional.push(cand);
                }
            }
        }
        let Some(wc) = self.vol.writes.get_mut(&op) else {
            return;
        };
        // lint:allow(panic): caller verified has_current_replica, so a max version exists
        let base_version = c.next_version().expect("has_current_replica checked") - 1;
        // A batch of k writes establishes k consecutive versions; the
        // round's version is the last of them.
        let new_version = base_version + wc.batch.len() as u64;
        let participants: Vec<NodeId> = c.good.iter().chain(c.stale.iter()).copied().collect();
        // The recorded good list: the intended holders of the new version.
        let mut good_list: Vec<NodeId> = c.good.iter().chain(optional.iter()).copied().collect();
        good_list.sort_unstable();
        let timeout = self.config.vote_timeout;
        let timer = ctx.set_timer(timeout, Timer::Votes { op });
        let writes: Vec<PartialWrite> = wc.batch.iter().map(|e| e.write.clone()).collect();
        ctx.trace(TraceEvent::PrepareIssued { op });
        for &node in c.good.iter().chain(optional.iter()) {
            ctx.send(
                node,
                Msg::Prepare {
                    op,
                    action: Action::DoUpdate {
                        writes: writes.clone(),
                        new_version,
                        stale: c.stale.clone(),
                        good: good_list.clone(),
                        base: None,
                    },
                    // Extras were never polled and lock at prepare time;
                    // required participants must still hold the
                    // permission-phase lock.
                    extra: optional.contains(&node),
                },
            );
        }
        for &node in &c.stale {
            ctx.send(
                node,
                Msg::Prepare {
                    op,
                    action: Action::MarkStale {
                        // The desired version equals "the version number
                        // that the up-to-date replicas will have after
                        // performing the current write".
                        desired_version: new_version,
                    },
                    extra: false,
                },
            );
        }
        // The fan-out above is done with these vectors: the phase takes
        // them by move.
        wc.phase = WPhase::Voting {
            participants,
            yes: NodeSet::new(),
            optional,
            optional_yes: NodeSet::new(),
            new_version,
            stale: c.stale,
            timer,
        };
    }

    /// Write-all-current commit: the write goes only to current replicas;
    /// if they alone do not form a write quorum, obsolete members must be
    /// synchronously reconciled first (snapshot fetch + restore).
    fn start_wac_commit(&mut self, ctx: &mut NodeCtx<'_>, op: OpId, c: Classified) {
        let good_set = NodeSet::from_iter(c.good.iter().copied());
        let rule = self.config.rule.clone();
        // One compiled plan covers all three quorum tests below; the clone
        // out of the cache keeps `self.vol` free for the coordinator borrow.
        let plan = self.vol.plans.plan_for(&*rule, &c.view).clone();
        if plan.includes_quorum_with(&*rule, good_set, QuorumKind::Write) {
            // Current replicas form a quorum: release the rest and commit.
            let Some(wc) = self.vol.writes.get_mut(&op) else {
                return;
            };
            let others: Vec<NodeId> = wc
                .granted
                .keys()
                .copied()
                .filter(|n| !good_set.contains(*n))
                .collect();
            for n in others {
                wc.granted.remove(&n);
                ctx.send(n, Msg::Release { op });
            }
            // lint:allow(panic): GOOD is nonempty on this path, so a max version exists
            let base = c.next_version().expect("good nonempty");
            let new_version = base + wc.batch.len() as u64 - 1;
            let timeout = self.config.vote_timeout;
            let timer = ctx.set_timer(timeout, Timer::Votes { op });
            let writes: Vec<PartialWrite> = wc.batch.iter().map(|e| e.write.clone()).collect();
            ctx.trace(TraceEvent::PrepareIssued { op });
            for &node in &c.good {
                ctx.send(
                    node,
                    Msg::Prepare {
                        op,
                        action: Action::DoUpdate {
                            writes: writes.clone(),
                            new_version,
                            stale: Vec::new(),
                            good: c.good.clone(),
                            base: None,
                        },
                        extra: false,
                    },
                );
            }
            wc.phase = WPhase::Voting {
                participants: c.good,
                yes: NodeSet::new(),
                optional: Vec::new(),
                optional_yes: NodeSet::new(),
                new_version,
                stale: Vec::new(),
                timer,
            };
            return;
        }
        // Need reconciliation: choose obsolete granted members until
        // good ∪ targets includes a quorum.
        let mut targets = Vec::new();
        let mut combined = good_set;
        {
            let Some(wc) = self.vol.writes.get(&op) else {
                return;
            };
            let mut candidates: Vec<NodeId> = wc
                .granted
                .keys()
                .copied()
                .filter(|n| !good_set.contains(*n))
                .collect();
            candidates.sort_unstable();
            for n in candidates {
                if plan.includes_quorum_with(&*rule, combined, QuorumKind::Write) {
                    break;
                }
                combined.insert(n);
                targets.push(n);
            }
        }
        if !plan.includes_quorum_with(&*rule, combined, QuorumKind::Write) {
            self.finish_write_fail(ctx, op, FailReason::NoQuorum);
            return;
        }
        // Fetch the snapshot from a current replica (prefer ourselves).
        let source = if c.good.contains(&self.me) {
            self.me
        } else {
            c.good[0]
        };
        self.stats.registry.inc(keys::SYNC_RECONCILIATIONS);
        ctx.output(ProtocolEvent::SyncReconciliation {
            targets: targets.len(),
        });
        if source == self.me {
            let pages = self.durable.object.snapshot();
            let version = self.durable.version;
            self.wac_commit_with_base(ctx, op, c, targets, pages, version);
            return;
        }
        let timeout = self.config.collect_timeout;
        let timer = ctx.set_timer(timeout, Timer::Fetch { op });
        let Some(wc) = self.vol.writes.get_mut(&op) else {
            return;
        };
        wc.phase = WPhase::FetchBase {
            classified: c,
            targets,
            source,
            timer,
        };
        ctx.send(source, Msg::FetchReq { op });
    }

    /// Reconciliation snapshot in hand: run the combined 2PC.
    pub(crate) fn wac_commit_with_base(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        op: OpId,
        c: Classified,
        targets: Vec<NodeId>,
        pages: Vec<Bytes>,
        base_version: u64,
    ) {
        let Some(wc) = self.vol.writes.get_mut(&op) else {
            return;
        };
        let new_version = base_version + wc.batch.len() as u64;
        let participants: Vec<NodeId> = c.good.iter().chain(targets.iter()).copied().collect();
        let participant_set = NodeSet::from_iter(participants.iter().copied());
        // Release granted members not participating.
        let others: Vec<NodeId> = wc
            .granted
            .keys()
            .copied()
            .filter(|n| !participant_set.contains(*n))
            .collect();
        for n in others {
            wc.granted.remove(&n);
            ctx.send(n, Msg::Release { op });
        }
        let timeout = self.config.vote_timeout;
        let timer = ctx.set_timer(timeout, Timer::Votes { op });
        let writes: Vec<PartialWrite> = wc.batch.iter().map(|e| e.write.clone()).collect();
        let good_list: Vec<NodeId> = participants.clone();
        wc.phase = WPhase::Voting {
            participants,
            yes: NodeSet::new(),
            optional: Vec::new(),
            optional_yes: NodeSet::new(),
            new_version,
            stale: Vec::new(),
            timer,
        };
        ctx.trace(TraceEvent::PrepareIssued { op });
        for &node in &c.good {
            ctx.send(
                node,
                Msg::Prepare {
                    op,
                    action: Action::DoUpdate {
                        writes: writes.clone(),
                        new_version,
                        stale: Vec::new(),
                        good: good_list.clone(),
                        base: None,
                    },
                    extra: false,
                },
            );
        }
        for &node in &targets {
            ctx.send(
                node,
                Msg::Prepare {
                    op,
                    action: Action::DoUpdate {
                        writes: writes.clone(),
                        new_version,
                        stale: Vec::new(),
                        good: good_list.clone(),
                        base: Some((pages.clone(), base_version)),
                    },
                    extra: false,
                },
            );
        }
    }

    /// The reconciliation fetch returned.
    pub(crate) fn write_fetch_resp(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        op: OpId,
        version: u64,
        pages: Vec<Bytes>,
    ) {
        let Some(wc) = self.vol.writes.get_mut(&op) else {
            return;
        };
        // Stray responses (the phase already moved on) restore the phase
        // untouched — no check-then-replace panic window.
        let (classified, targets, timer) = match std::mem::replace(&mut wc.phase, WPhase::Collect) {
            WPhase::FetchBase {
                classified,
                targets,
                timer,
                ..
            } => (classified, targets, timer),
            other => {
                wc.phase = other;
                return;
            }
        };
        ctx.cancel_timer(timer);
        // The source's version can only have grown; it remains current.
        self.wac_commit_with_base(ctx, op, classified, targets, pages, version);
    }

    /// Reconciliation fetch failed or timed out.
    pub(crate) fn write_fetch_failed(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        if self
            .vol
            .writes
            .get(&op)
            .is_some_and(|wc| matches!(wc.phase, WPhase::FetchBase { .. }))
        {
            self.finish_write_fail(ctx, op, FailReason::CommitFailed);
        }
    }

    /// A 2PC vote arrived for a write op. Required participants must all
    /// vote yes; optional (safety-threshold) participants are best-effort:
    /// their no-votes and failures simply drop them.
    pub(crate) fn write_vote(&mut self, ctx: &mut NodeCtx<'_>, op: OpId, from: NodeId, yes: bool) {
        let Some(wc) = self.vol.writes.get_mut(&op) else {
            return;
        };
        let WPhase::Voting {
            participants,
            yes: yes_set,
            optional,
            optional_yes,
            timer,
            ..
        } = &mut wc.phase
        else {
            return;
        };
        let is_optional = optional.contains(&from) || optional_yes.contains(from);
        if !yes {
            if is_optional {
                optional.retain(|&n| n != from);
                optional_yes.remove(from);
                return;
            }
            let timer = *timer;
            ctx.cancel_timer(timer);
            self.abort_write_commit(ctx, op);
            return;
        }
        if is_optional {
            optional_yes.insert(from);
        } else {
            yes_set.insert(from);
        }
        let all_yes = participants.iter().all(|p| yes_set.contains(*p));
        if !all_yes {
            return;
        }
        // Commit point: log the decision durably, then notify the required
        // participants plus every optional replica that managed to prepare.
        // (Optional replicas whose yes-vote arrives after this moment learn
        // the outcome through the decision-query path.)
        // Own the coordinator outright: the op is finished either way, and
        // removing it here avoids the replace-then-remove panic pattern.
        let Some(wc) = self.vol.writes.remove(&op) else {
            return;
        };
        let WPhase::Voting {
            participants,
            optional_yes: committed_optional,
            new_version,
            stale,
            timer,
            ..
        } = wc.phase.clone()
        else {
            return;
        };
        ctx.cancel_timer(timer);
        self.durable.decisions.insert(op, true);
        // Pipelined 2PC: with more writes queued and chain budget left,
        // allocate the next round now and ride its lock handoff on this
        // decision. Participants move their exclusive lock from `op` to
        // `next` instead of unlocking, and the next round's prepare follows
        // the decision in the same effect batch — no fresh permission phase
        // and no race against the decision's delivery (same-sender FIFO).
        let chain = self.plan_chain(&wc);
        let next = chain.as_ref().map(|(next_op, _)| *next_op);
        for p in participants
            .iter()
            .copied()
            .chain(committed_optional.iter())
        {
            ctx.send(
                p,
                Msg::Decision {
                    op,
                    commit: true,
                    chain: next,
                },
            );
        }
        // Release any granted nodes that were not participants (heavy polls
        // can grant more than the quorum used).
        let participant_set = NodeSet::from_iter(participants.iter().copied());
        for (&n, _) in wc
            .granted
            .iter()
            .filter(|(n, _)| !participant_set.contains(**n))
        {
            ctx.send(n, Msg::Release { op });
        }
        let touched = participants.len() + committed_optional.len();
        self.stats
            .registry
            .add(keys::WRITES_OK, wc.batch.len() as u64);
        if wc.batch.len() > 1 {
            self.stats
                .registry
                .add(keys::BATCHED_WRITES, wc.batch.len() as u64);
        }
        self.stats.registry.add(
            keys::REPLICAS_TOUCHED_SUM,
            (touched * wc.batch.len()) as u64,
        );
        self.stats.registry.add(
            keys::MARKED_STALE_SUM,
            (stale.len() * wc.batch.len()) as u64,
        );
        // One ack per batched client write, at its own version.
        let first_version = new_version + 1 - wc.batch.len() as u64;
        for (i, entry) in wc.batch.iter().enumerate() {
            ctx.output(ProtocolEvent::WriteOk {
                id: entry.client_id,
                version: first_version + i as u64,
                replicas_touched: touched,
                marked_stale: stale.len(),
            });
        }
        match chain {
            Some((next_op, batch)) => self.begin_chained_round(
                ctx,
                next_op,
                batch,
                &participants,
                committed_optional,
                new_version,
                stale,
                wc.chain_len + 1,
            ),
            None => self.maybe_launch_queued(ctx),
        }
    }

    /// Decides whether the committing round `wc` chains a successor, and if
    /// so allocates its op id and drains its batch from the queue.
    fn plan_chain(&mut self, wc: &WriteCoordinator) -> Option<(OpId, Vec<BatchEntry>)> {
        if self.config.write_mode != WriteMode::StaleMarking
            || self.config.pipeline_window <= 1
            || wc.chain_len + 1 >= self.config.pipeline_window
            || self.vol.write_queue.is_empty()
        {
            return None;
        }
        let take = self
            .config
            .max_write_batch
            .max(1)
            .min(self.vol.write_queue.len());
        let batch: Vec<BatchEntry> = self.vol.write_queue.drain(..take).collect();
        Some((self.next_op(), batch))
    }

    /// Opens round k+1 directly in the voting phase: its participants are
    /// round k's (they committed, so they hold handed-off locks and are at
    /// exactly `base_version`), and its prepares are already behind round
    /// k's decisions in the network. No permission phase runs. If a handoff
    /// was lost (lease expiry, crash), the participant's duplicate-prepare
    /// and version checks make it vote no and the round degrades to a
    /// normal abort-and-retry.
    #[allow(clippy::too_many_arguments)]
    fn begin_chained_round(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        op: OpId,
        batch: Vec<BatchEntry>,
        participants: &[NodeId],
        committed_optional: NodeSet,
        base_version: u64,
        stale: Vec<NodeId>,
        chain_len: u32,
    ) {
        self.stats.registry.inc(keys::CHAINED_ROUNDS);
        let new_version = base_version + batch.len() as u64;
        let stale_set = NodeSet::from_iter(stale.iter().copied());
        let good_required: Vec<NodeId> = participants
            .iter()
            .copied()
            .filter(|n| !stale_set.contains(*n))
            .collect();
        let optional: Vec<NodeId> = committed_optional.iter().collect();
        let mut good_list: Vec<NodeId> = good_required
            .iter()
            .chain(optional.iter())
            .copied()
            .collect();
        good_list.sort_unstable();
        let writes: Vec<PartialWrite> = batch.iter().map(|e| e.write.clone()).collect();
        let timer = ctx.set_timer(self.config.vote_timeout, Timer::Votes { op });
        ctx.trace(TraceEvent::PrepareIssued { op });
        for &node in good_required.iter().chain(optional.iter()) {
            ctx.send(
                node,
                Msg::Prepare {
                    op,
                    action: Action::DoUpdate {
                        writes: writes.clone(),
                        new_version,
                        stale: stale.clone(),
                        good: good_list.clone(),
                        base: None,
                    },
                    extra: optional.contains(&node),
                },
            );
        }
        for &node in &stale {
            ctx.send(
                node,
                Msg::Prepare {
                    op,
                    action: Action::MarkStale {
                        desired_version: new_version,
                    },
                    extra: false,
                },
            );
        }
        self.vol.writes.insert(
            op,
            WriteCoordinator {
                op,
                batch,
                chain_len,
                phase: WPhase::Voting {
                    participants: participants.to_vec(),
                    yes: NodeSet::new(),
                    optional,
                    optional_yes: NodeSet::new(),
                    new_version,
                    stale,
                    timer,
                },
                granted: BTreeMap::new(),
                refused: NodeSet::new(),
                failed: NodeSet::new(),
                polled: NodeSet::from_iter(participants.iter().copied()),
                heavy: false,
                collect_timer: None,
            },
        );
    }

    /// Vote timeout for a write op.
    pub(crate) fn write_vote_timeout(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        if self
            .vol
            .writes
            .get(&op)
            .is_some_and(|wc| matches!(wc.phase, WPhase::Voting { .. }))
        {
            self.abort_write_commit(ctx, op);
        }
    }

    /// Aborts an in-flight write 2PC and retries or fails the client op.
    fn abort_write_commit(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        let Some(wc) = self.vol.writes.remove(&op) else {
            return;
        };
        self.durable.decisions.insert(op, false);
        if let WPhase::Voting { participants, .. } = &wc.phase {
            for &p in participants {
                ctx.send(
                    p,
                    Msg::Decision {
                        op,
                        commit: false,
                        chain: None,
                    },
                );
            }
            let pset = NodeSet::from_iter(participants.iter().copied());
            for &n in wc.granted.keys().filter(|n| !pset.contains(**n)) {
                ctx.send(n, Msg::Release { op });
            }
        }
        self.retry_or_fail_write(ctx, wc, FailReason::CommitFailed);
    }

    /// Releases all granted locks and fails (or retries) the operation.
    fn finish_write_fail(&mut self, ctx: &mut NodeCtx<'_>, op: OpId, reason: FailReason) {
        let Some(mut wc) = self.vol.writes.remove(&op) else {
            return;
        };
        if let Some(t) = wc.collect_timer.take() {
            ctx.cancel_timer(t);
        }
        match &wc.phase {
            WPhase::FetchBase { timer, .. } => ctx.cancel_timer(*timer),
            WPhase::Voting { timer, .. } => ctx.cancel_timer(*timer),
            WPhase::Collect => {}
        }
        for &n in wc.granted.keys() {
            ctx.send(n, Msg::Release { op });
        }
        self.retry_or_fail_write(ctx, wc, reason);
    }

    /// Contention and commit races are retried with backoff; structural
    /// failures (no quorum, no current replica) are reported immediately,
    /// as the paper prescribes.
    fn retry_or_fail_write(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        wc: WriteCoordinator,
        reason: FailReason,
    ) {
        let retryable = matches!(reason, FailReason::Contention | FailReason::CommitFailed);
        if retryable
            && self.config.max_write_batch > 1
            && self.config.write_mode == WriteMode::StaleMarking
        {
            // Requeue the refused batch whole: disbanding it into
            // per-entry retry timers would relaunch that many competing
            // single-write rounds against the same replicas. One kick
            // timer (shortest surviving backoff) holds the queue, then
            // relaunches the batch — plus anything queued meanwhile — as
            // one round.
            let mut min_attempt = u32::MAX;
            for entry in wc.batch.into_iter().rev() {
                if entry.attempt < self.config.max_retries {
                    min_attempt = min_attempt.min(entry.attempt + 1);
                    self.vol.write_queue.push_front(BatchEntry {
                        attempt: entry.attempt + 1,
                        ..entry
                    });
                } else {
                    self.stats.registry.inc(keys::WRITES_FAILED);
                    ctx.output(ProtocolEvent::Failed {
                        id: entry.client_id,
                        reason,
                    });
                }
            }
            if min_attempt != u32::MAX {
                let delay = self.backoff(ctx, min_attempt);
                self.vol.write_queue_held = true;
                ctx.set_timer(delay, Timer::WriteQueueKick);
            } else {
                self.maybe_launch_queued(ctx);
            }
            return;
        }
        for entry in wc.batch {
            if retryable && entry.attempt < self.config.max_retries {
                let delay = self.backoff(ctx, entry.attempt + 1);
                ctx.set_timer(
                    delay,
                    Timer::RetryClient {
                        attempt: entry.attempt + 1,
                        request: ClientRequest::Write {
                            id: entry.client_id,
                            write: entry.write,
                        },
                    },
                );
            } else {
                self.stats.registry.inc(keys::WRITES_FAILED);
                ctx.output(ProtocolEvent::Failed {
                    id: entry.client_id,
                    reason,
                });
            }
        }
        // The failed round is gone; if writes queued behind it, give them
        // their own round now rather than stranding them.
        self.maybe_launch_queued(ctx);
    }

    /// The contention backoff for a requeued batch expired: release the
    /// queue and relaunch.
    pub(crate) fn on_write_queue_kick(&mut self, ctx: &mut NodeCtx<'_>) {
        self.vol.write_queue_held = false;
        self.maybe_launch_queued(ctx);
    }
}
