//! Dispatch of shared message/timer kinds to the owning coordinator: state
//! responses, votes, fetches, and timeouts are keyed only by `OpId`, so the
//! node looks the operation up in its coordinator tables.

use crate::msg::{Msg, OpId, StateTuple};
use crate::node::{NodeCtx, ReplicaNode};
use bytes::Bytes;
use coterie_quorum::NodeId;

impl ReplicaNode {
    /// Routes a `StateResp` to the write, read, or epoch coordinator that
    /// owns `op`. A grant for an operation that no longer exists is
    /// released immediately so the replica does not sit locked until the
    /// lease expires.
    pub(crate) fn on_state_resp(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        from: NodeId,
        op: OpId,
        granted: bool,
        state: StateTuple,
    ) {
        if self.vol.writes.contains_key(&op) {
            self.write_state_resp(ctx, op, granted, state);
        } else if self.vol.reads.contains_key(&op) {
            self.read_state_resp(ctx, op, granted, state);
        } else if self.vol.epochs.contains_key(&op) {
            self.epoch_state_resp(ctx, op, state);
        } else if granted {
            ctx.send(from, Msg::Release { op });
        }
    }

    /// Routes a 2PC vote.
    pub(crate) fn on_vote(&mut self, ctx: &mut NodeCtx<'_>, from: NodeId, op: OpId, yes: bool) {
        if self.vol.writes.contains_key(&op) {
            self.write_vote(ctx, op, from, yes);
        } else if self.vol.epochs.contains_key(&op) {
            self.epoch_vote(ctx, op, from, yes);
        }
        // A vote for a finished op: the coordinator already decided; the
        // participant learns the outcome via Decision or DecisionQuery.
    }

    /// Routes a permission-collection timeout.
    pub(crate) fn on_collect_timeout(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        if self.vol.writes.contains_key(&op) {
            self.write_collect_timeout(ctx, op);
        } else if self.vol.reads.contains_key(&op) {
            self.read_collect_timeout(ctx, op);
        } else if self.vol.epochs.contains_key(&op) {
            self.epoch_collect_timeout(ctx, op);
        }
    }

    /// Routes a 2PC vote timeout.
    pub(crate) fn on_vote_timeout(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        if self.vol.writes.contains_key(&op) {
            self.write_vote_timeout(ctx, op);
        } else if self.vol.epochs.contains_key(&op) {
            self.epoch_vote_timeout(ctx, op);
        }
    }

    /// Routes a fetch response (reads and write-all-current reconciliation).
    pub(crate) fn on_fetch_resp(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        _from: NodeId,
        op: OpId,
        version: u64,
        pages: Vec<Bytes>,
    ) {
        if self.vol.reads.contains_key(&op) {
            self.read_fetch_resp(ctx, op, version, pages);
        } else if self.vol.writes.contains_key(&op) {
            self.write_fetch_resp(ctx, op, version, pages);
        }
    }

    /// Routes a fetch `RPC.CallFailed`.
    pub(crate) fn on_fetch_failed(&mut self, ctx: &mut NodeCtx<'_>, op: OpId, _to: NodeId) {
        if self.vol.reads.contains_key(&op) {
            self.read_fetch_failed(ctx, op);
        } else if self.vol.writes.contains_key(&op) {
            self.write_fetch_failed(ctx, op);
        }
    }

    /// Routes a fetch timeout.
    pub(crate) fn on_fetch_timeout(&mut self, ctx: &mut NodeCtx<'_>, op: OpId) {
        if self.vol.reads.contains_key(&op) {
            self.read_fetch_timeout(ctx, op);
        } else if self.vol.writes.contains_key(&op) {
            self.write_fetch_failed(ctx, op);
        }
    }
}
