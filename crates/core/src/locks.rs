//! Per-replica locking.
//!
//! Each node that receives a permission request "obtains a lock for its
//! replica and responds with its state" (§4.1). The paper leaves deadlock
//! handling open ("For ways to handle deadlocks see for example \[2\]"); we
//! use *no-wait* locking: a request that cannot be granted immediately is
//! refused, and the coordinator aborts and retries with backoff. No-wait
//! systems cannot deadlock because no transaction ever holds one lock while
//! waiting for another.

use crate::msg::OpId;
use std::collections::BTreeSet;

/// The lock state of one replica.
#[derive(Clone, Debug, Default)]
pub struct ReplicaLock {
    exclusive: Option<OpId>,
    shared: BTreeSet<OpId>,
}

/// Result of a lock attempt.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockGrant {
    /// Lock acquired (or already held by the same operation).
    Granted,
    /// Refused: held incompatibly by other operations.
    Busy,
}

impl ReplicaLock {
    /// A free lock.
    pub fn new() -> Self {
        ReplicaLock::default()
    }

    /// Attempts to take the exclusive lock for `op`.
    pub fn try_exclusive(&mut self, op: OpId) -> LockGrant {
        if self.exclusive == Some(op) {
            return LockGrant::Granted;
        }
        if self.exclusive.is_none() && self.shared.is_empty() {
            self.exclusive = Some(op);
            LockGrant::Granted
        } else {
            LockGrant::Busy
        }
    }

    /// Attempts to take a shared lock for `op`.
    pub fn try_shared(&mut self, op: OpId) -> LockGrant {
        if self.shared.contains(&op) {
            return LockGrant::Granted;
        }
        if self.exclusive.is_none() {
            self.shared.insert(op);
            LockGrant::Granted
        } else {
            LockGrant::Busy
        }
    }

    /// Forces the exclusive lock for `op`, evicting any other holders.
    /// Used only during crash recovery to fence a prepared-but-undecided
    /// transaction: volatile lock state was lost, but the prepared action
    /// must keep the replica locked until the outcome is known.
    pub fn force_exclusive(&mut self, op: OpId) {
        self.exclusive = Some(op);
        self.shared.clear();
    }

    /// Releases whatever `op` holds. Unknown ops are a no-op (idempotent,
    /// so duplicate releases and releases after a lease expiry are safe).
    pub fn release(&mut self, op: OpId) {
        if self.exclusive == Some(op) {
            self.exclusive = None;
        }
        self.shared.remove(&op);
    }

    /// Hands the exclusive lock from `from` to `to` without an unlocked
    /// window in between (pipelined 2PC's decision-time chain, DESIGN.md
    /// §10). Returns false — leaving the lock untouched — unless `from` is
    /// the current exclusive holder, so a stale or reordered handoff can
    /// never steal a lock some other operation legitimately acquired.
    pub fn transfer_exclusive(&mut self, from: OpId, to: OpId) -> bool {
        if self.exclusive == Some(from) {
            self.exclusive = Some(to);
            true
        } else {
            false
        }
    }

    /// Whether `op` currently holds the exclusive lock.
    pub fn held_exclusively_by(&self, op: OpId) -> bool {
        self.exclusive == Some(op)
    }

    /// Whether `op` currently holds a shared lock.
    pub fn held_shared_by(&self, op: OpId) -> bool {
        self.shared.contains(&op)
    }

    /// Whether the replica is locked at all.
    pub fn is_locked(&self) -> bool {
        self.exclusive.is_some() || !self.shared.is_empty()
    }

    /// The operations currently holding the lock shared (ascending order).
    pub fn shared_holders(&self) -> impl Iterator<Item = OpId> + '_ {
        self.shared.iter().copied()
    }

    /// The current exclusive holder, if any.
    pub fn exclusive_holder(&self) -> Option<OpId> {
        self.exclusive
    }

    /// Clears all lock state (volatile; called on crash).
    pub fn clear(&mut self) {
        self.exclusive = None;
        self.shared.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coterie_quorum::NodeId;

    fn op(n: u32, s: u64) -> OpId {
        OpId {
            node: NodeId(n),
            seq: s,
        }
    }

    #[test]
    fn exclusive_excludes_everything() {
        let mut l = ReplicaLock::new();
        assert_eq!(l.try_exclusive(op(0, 1)), LockGrant::Granted);
        assert_eq!(l.try_exclusive(op(1, 1)), LockGrant::Busy);
        assert_eq!(l.try_shared(op(1, 1)), LockGrant::Busy);
        assert!(l.held_exclusively_by(op(0, 1)));
        assert!(l.is_locked());
    }

    #[test]
    fn shared_locks_coexist_but_block_writers() {
        let mut l = ReplicaLock::new();
        assert_eq!(l.try_shared(op(0, 1)), LockGrant::Granted);
        assert_eq!(l.try_shared(op(1, 1)), LockGrant::Granted);
        assert_eq!(l.try_exclusive(op(2, 1)), LockGrant::Busy);
        l.release(op(0, 1));
        assert_eq!(l.try_exclusive(op(2, 1)), LockGrant::Busy);
        l.release(op(1, 1));
        assert_eq!(l.try_exclusive(op(2, 1)), LockGrant::Granted);
    }

    #[test]
    fn reacquisition_is_idempotent() {
        let mut l = ReplicaLock::new();
        assert_eq!(l.try_exclusive(op(0, 1)), LockGrant::Granted);
        assert_eq!(l.try_exclusive(op(0, 1)), LockGrant::Granted);
        assert_eq!(l.try_shared(op(1, 1)), LockGrant::Busy);
        l.release(op(0, 1));
        assert_eq!(l.try_shared(op(1, 1)), LockGrant::Granted);
        assert_eq!(l.try_shared(op(1, 1)), LockGrant::Granted);
        assert!(l.held_shared_by(op(1, 1)));
    }

    #[test]
    fn release_is_idempotent_and_targeted() {
        let mut l = ReplicaLock::new();
        l.try_shared(op(0, 1));
        l.release(op(9, 9)); // unknown: no-op
        assert!(l.is_locked());
        l.release(op(0, 1));
        l.release(op(0, 1));
        assert!(!l.is_locked());
    }

    #[test]
    fn force_exclusive_evicts() {
        let mut l = ReplicaLock::new();
        l.try_shared(op(0, 1));
        l.try_shared(op(1, 1));
        l.force_exclusive(op(7, 7));
        assert!(l.held_exclusively_by(op(7, 7)));
        assert!(!l.held_shared_by(op(0, 1)));
        assert_eq!(l.try_shared(op(2, 2)), LockGrant::Busy);
    }

    #[test]
    fn transfer_moves_only_from_current_holder() {
        let mut l = ReplicaLock::new();
        l.try_exclusive(op(0, 1));
        assert!(l.transfer_exclusive(op(0, 1), op(0, 2)));
        assert!(l.held_exclusively_by(op(0, 2)));
        // Stale handoff naming the old holder: refused, state untouched.
        assert!(!l.transfer_exclusive(op(0, 1), op(0, 3)));
        assert!(l.held_exclusively_by(op(0, 2)));
        l.release(op(0, 2));
        assert!(!l.transfer_exclusive(op(0, 2), op(0, 4)));
        assert!(!l.is_locked());
    }

    #[test]
    fn clear_resets() {
        let mut l = ReplicaLock::new();
        l.try_exclusive(op(0, 1));
        l.clear();
        assert!(!l.is_locked());
        assert_eq!(l.try_shared(op(3, 3)), LockGrant::Granted);
    }
}
